"""Quickstart: generate a dataset and reproduce the paper's headline table.

Run:
    python examples/quickstart.py [scale]

Generates a synthetic M-Lab dataset (default 10% of paper volume), then
recomputes Table 1 — the city-level prewar vs wartime comparison with
Welch's t-tests — and a short national summary.
"""

import sys

from repro import DatasetGenerator, GeneratorConfig
from repro.analysis.city import city_welch_table
from repro.tables import format_table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.10
    print(f"Generating dataset at scale {scale} (1.0 = ~110k tests)...")
    dataset = DatasetGenerator(GeneratorConfig(scale=scale)).generate()
    print(
        f"  {dataset.ndt.n_rows} NDT download tests, "
        f"{dataset.traces.n_rows} traceroutes, "
        f"geo coverage {dataset.geodb.coverage:.1%}\n"
    )

    table1 = city_welch_table(dataset.ndt)
    print(
        format_table(
            table1,
            title="Table 1 — city-level metrics, prewar vs wartime (Welch's t-test)",
            float_fmts={
                "min_rtt_ms_p": ".1e",
                "tput_mbps_p": ".1e",
                "loss_rate_p": ".1e",
                "loss_rate_prewar": ".4f",
                "loss_rate_wartime": ".4f",
            },
            float_fmt=".2f",
        )
    )

    national = table1.to_dicts()[-1]
    rtt_change = national["min_rtt_ms_wartime"] / national["min_rtt_ms_prewar"] - 1
    loss_change = national["loss_rate_wartime"] / national["loss_rate_prewar"] - 1
    print(
        f"\nNational wartime change: MinRTT {rtt_change:+.0%}, "
        f"loss {loss_change:+.0%} — the paper's headline degradation."
    )


if __name__ == "__main__":
    main()
