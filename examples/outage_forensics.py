"""Date-level forensics: find the outages, then explain them (extension).

Run:
    python examples/outage_forensics.py [scale]

The paper eyeballs the March-10 Ukrtelecom/Triolan outage in Figure 2 and
leaves systematic date-level analysis to future work.  This example runs
that analysis end to end:

1. robust anomaly detection over the daily national series flags the
   outage days (test-count spike + throughput dip);
2. an event study around every dated war event quantifies each event's
   before/after impact with Welch's t-test;
3. the quantified Figure-9 correlation shows how strongly path changes
   track performance changes.
"""

import sys

from repro import DatasetGenerator, GeneratorConfig
from repro.analysis.events_impact import event_impact_table
from repro.analysis.national import national_daily
from repro.analysis.outages import detect_metric_anomalies, detect_outage_days
from repro.analysis.paths import path_performance_correlation
from repro.conflict import default_timeline
from repro.tables import col, format_table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    dataset = DatasetGenerator(GeneratorConfig(scale=scale)).generate()

    print("== Outage-shaped days (count spike AND throughput dip) ==")
    for date in detect_outage_days(dataset.ndt):
        print(f"  {date}  <-- the paper's March-10 national outage" if
              date == "2022-03-10" else f"  {date}")

    daily = national_daily(dataset.ndt, 2022)
    print("\n== All test-count anomalies (robust z >= 2.5) ==")
    for anomaly in detect_metric_anomalies(daily, "tests", threshold=2.5):
        print(
            f"  {anomaly.date}: {anomaly.direction} "
            f"(z={anomaly.zscore:+.1f}, {anomaly.value:.0f} tests)"
        )

    print("\n== Event study: +/-7 days around each war event ==")
    impact = event_impact_table(
        dataset.ndt, default_timeline(), dataset.topology.gazetteer
    )
    significant = impact.filter(col("significant") == True)  # noqa: E712
    print(
        format_table(
            significant,
            columns=["date", "event", "metric", "mean_before", "mean_after", "p_value"],
            float_fmts={"p_value": ".1e"},
            float_fmt=".2f",
            max_rows=20,
        )
    )

    print("\n== Quantified Figure 9: Spearman rho of d_paths vs performance ==")
    corr = path_performance_correlation(dataset.ndt, dataset.traces, min_tests=5)
    print(
        f"  d_paths vs d_tput: rho={corr['tput'].coefficient:+.3f} "
        f"(p={corr['tput'].p_value:.2e}, {corr['tput'].strength}) over "
        f"{corr['n']} persistent connections"
    )
    print(
        f"  d_paths vs d_loss: rho={corr['loss'].coefficient:+.3f} "
        f"(p={corr['loss'].p_value:.2e}, {corr['loss'].strength})"
    )
    print(
        "\nThe paper calls this a 'mild correlation' — most degradation "
        "comes from edge damage, not rerouting, which is what the ablation "
        "benches confirm."
    )


if __name__ == "__main__":
    main()
