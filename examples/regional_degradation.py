"""Regional analysis: does degradation track the military fronts?

Run:
    python examples/regional_degradation.py [scale]

Reproduces the paper's Section 4.2 finding (Figure 3): oblasts on the
Northern, Eastern and Southern fronts degrade far more than the largely
spared West.  Prints the ranked per-oblast loss change as a bar chart and
the zone-level averages, then the Figure 4 siege-city test-count series.
"""

import sys

from repro import DatasetGenerator, GeneratorConfig
from repro.analysis.city import siege_city_counts
from repro.analysis.national import invasion_day_ordinal
from repro.analysis.regional import oblast_changes, zone_average_changes
from repro.tables import format_table
from repro.viz import bar_chart, line_chart


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    dataset = DatasetGenerator(GeneratorConfig(scale=scale)).generate()

    changes = oblast_changes(dataset.ndt, dataset.topology.gazetteer)
    ranked = changes.sort_by("d_loss_pct", descending=True)
    print(
        bar_chart(
            [f"{r['oblast']} [{r['zone']}]" for r in ranked.iter_rows()],
            [r["d_loss_pct"] for r in ranked.iter_rows()],
            title="Loss-rate change per oblast, wartime vs prewar (%)",
        )
    )

    print()
    print(
        format_table(
            zone_average_changes(changes).sort_by("d_loss_pct", descending=True),
            title="Zone-level averages (active fronts vs the West)",
            float_fmt="+.1f",
        )
    )

    counts = siege_city_counts(dataset.ndt)
    marker = counts.column("day").to_list().index(invasion_day_ordinal())
    for city in ("Kharkiv", "Mariupol"):
        print()
        print(
            line_chart(
                counts.column(city).to_list(),
                title=f"Daily NDT test counts, {city} (':' marks Feb 24)",
                marker_index=marker,
                y_fmt=".0f",
            )
        )
    print(
        "\nMariupol's tests all but vanish after the March 1 encirclement; "
        "Kharkiv drops after the March 14 shelling — Figure 4's story."
    )


if __name__ == "__main__":
    main()
