"""What-if analysis: which findings survive under ablated war models?

Run:
    python examples/whatif_scenarios.py [scale]

Generates the dataset under several counterfactual configurations and
compares the paper's two core observables across them:

* national wartime degradation (MinRTT and loss vs prewar),
* path diversity growth (paths per connection, wartime vs prewar).

Expected outcome: NO_WAR flattens everything; NO_REROUTING keeps the metric
degradation but kills the path-diversity growth; UNIFORM_DAMAGE keeps the
national signal but destroys the regional correlation.
"""

import sys

from repro import DatasetGenerator, GeneratorConfig, Scenario, scenario_config
from repro.analysis.city import city_welch_table
from repro.analysis.paths import path_count_table
from repro.analysis.regional import oblast_changes, zone_average_changes
from repro.tables import Table, format_table


def zone_gap(dataset) -> float:
    """Mean loss change on active fronts minus the West (regional signal)."""
    changes = oblast_changes(dataset.ndt, dataset.topology.gazetteer)
    zones = {r["zone"]: r["d_loss_pct"] for r in zone_average_changes(changes).iter_rows()}
    active = (zones.get("north", 0) + zones.get("east", 0) + zones.get("south", 0)) / 3
    return active - zones.get("west", 0.0)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.08
    rows = []
    for scenario in (
        Scenario.PAPER,
        Scenario.NO_WAR,
        Scenario.NO_REROUTING,
        Scenario.UNIFORM_DAMAGE,
    ):
        config = scenario_config(scenario, GeneratorConfig(scale=scale))
        dataset = DatasetGenerator(config).generate()
        national = city_welch_table(dataset.ndt, cities=[]).to_dicts()[-1]
        paths = {r["period"]: r for r in path_count_table(dataset.traces).iter_rows()}
        rows.append(
            {
                "scenario": scenario.value,
                "rtt_ratio": national["min_rtt_ms_wartime"] / national["min_rtt_ms_prewar"],
                "loss_ratio": national["loss_rate_wartime"] / national["loss_rate_prewar"],
                "path_growth": paths["wartime"]["paths_per_conn"]
                - paths["prewar"]["paths_per_conn"],
                "zone_gap_pct": zone_gap(dataset),
            }
        )
        print(f"  ran {scenario.value}")
    print()
    print(
        format_table(
            Table.from_rows(rows),
            title=(
                "Which findings survive each ablation?\n"
                "(rtt/loss ratio ~1 = no degradation; path_growth ~0 = no "
                "rerouting; zone_gap ~0 = no regional correlation)"
            ),
            float_fmt=".2f",
        )
    )


if __name__ == "__main__":
    main()
