"""Routing analysis: path diversity, border shifts, the AS199995 case study.

Run:
    python examples/routing_resilience.py [scale]

Reproduces Section 5: Table 2 (paths per connection rise during the war),
Figure 5 (traffic enters Ukraine through Hurricane Electric instead of the
degrading carriers) and Figure 6 (AS199995's inbound mix flips as AS6663's
quality collapses).
"""

import sys

from repro import DatasetGenerator, GeneratorConfig
from repro.analysis.border import (
    border_crossing_counts,
    border_shift_matrix,
    border_totals,
)
from repro.analysis.casestudy import inbound_weekly
from repro.analysis.paths import path_count_table
from repro.tables import col, format_table
from repro.viz import heatmap, line_chart


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    dataset = DatasetGenerator(GeneratorConfig(scale=scale)).generate()
    registry = dataset.topology.registry

    print(
        format_table(
            path_count_table(dataset.traces),
            title="Table 2 — paths and tests per connection (top-1000 connections)",
            float_fmt=".3f",
        )
    )
    print(
        "\nPath diversity grows prewar->wartime while the 2021 baselines "
        "stay flat: rerouting under damage, i.e. resilience at work.\n"
    )

    crossings = border_crossing_counts(dataset.traces, registry)
    rows, cols, delta, absent = border_shift_matrix(crossings)
    print(heatmap(delta, rows, cols, absent=absent,
                  title="Figure 5 — change in tests per (border AS, Ukrainian AS)"))
    print()
    print(
        format_table(
            border_totals(crossings),
            title="Net border-AS change (Hurricane Electric gains, others lose)",
        )
    )

    weekly = inbound_weekly(dataset.ndt, dataset.traces, registry)
    for asn in (6939, 6663):
        series = weekly.filter(col("border_asn") == asn)
        if series.n_rows == 0:
            continue
        print()
        print(
            line_chart(
                series.column("share").to_list(),
                title=(
                    f"Figure 6 — weekly share of AS199995's inbound tests via "
                    f"AS{asn} ({registry.name_of(asn)})"
                ),
                y_fmt=".2f",
                height=8,
            )
        )


if __name__ == "__main__":
    main()
