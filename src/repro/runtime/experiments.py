"""The 18 named experiments, runnable individually with graceful degradation.

Each experiment maps a :class:`~repro.synth.generator.Dataset` to the text
section the paper's report prints for it.  :func:`run_experiments` executes
any subset through the pipeline runner with ``allow_failure=True``: one
experiment dying (with its traceback captured in the run report) never
stops the other seventeen.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro import obs
from repro.runtime.pipeline import PipelineRunner, RunReport, Stage
from repro.synth.generator import Dataset
from repro.tables.pretty import format_table
from repro.util.errors import PipelineError

__all__ = ["EXPERIMENT_NAMES", "experiment_registry", "run_experiments"]

ExperimentFn = Callable[[Dataset], str]


@obs.traced("analysis.churn")
def _churn(ds: Dataset) -> str:
    from repro.analysis.routing_churn import churn_summary, daily_route_churn

    table = daily_route_churn(ds)
    summary = churn_summary(table, ds)
    return (
        format_table(table, max_rows=30)
        + f"\nmean daily route changes: prewar "
        f"{summary['prewar_daily_changes']:.1f}, wartime "
        f"{summary['wartime_daily_changes']:.1f} (x{summary['ratio']:.1f})"
    )


@obs.traced("analysis.events")
def _events(ds: Dataset) -> str:
    from repro.analysis.events_impact import event_impact_table
    from repro.conflict import default_timeline

    return format_table(
        event_impact_table(ds.ndt, default_timeline(), ds.topology.gazetteer),
        float_fmts={"p_value": ".1e"},
        float_fmt=".3f",
    )


@obs.traced("analysis.outages")
def _outages(ds: Dataset) -> str:
    from repro.analysis.outages import detect_outage_days

    return f"outage-shaped days (2022): {detect_outage_days(ds.ndt)}"


@obs.traced("analysis.hopgeo")
def _hopgeo(ds: Dataset) -> str:
    from repro.analysis.hopgeo import gateway_city_agreement

    a = gateway_city_agreement(ds)
    return (
        f"rDNS vs geo-DB agreement: {a['agree']:.1%} over "
        f"{a['n_compared']:.0f} tests (geo missing {a['geo_missing']:.1%}, "
        f"PTR unusable {a['ptr_missing']:.1%})"
    )


def experiment_registry() -> Dict[str, ExperimentFn]:
    """Name → section function for all 18 experiments, in report order."""
    from repro.analysis import report as rpt

    return {
        "fig2": rpt._fig2,
        "table1": rpt._table1,
        "fig3": rpt._fig3_table4,
        "table4": rpt._fig3_table4,
        "fig4": rpt._fig4,
        "table2": rpt._table2_fig9,
        "fig9": rpt._table2_fig9,
        "table3": rpt._tables_3_5_6,
        "table5": rpt._tables_3_5_6,
        "table6": rpt._tables_3_5_6,
        "fig5": rpt._fig5,
        "fig6": rpt._fig6,
        "fig7": rpt._figs7_8,
        "fig8": rpt._figs7_8,
        "churn": _churn,
        "events": _events,
        "outages": _outages,
        "hopgeo": _hopgeo,
    }


EXPERIMENT_NAMES: Tuple[str, ...] = (
    "fig2", "table1", "fig3", "table4", "fig4", "table2", "fig9",
    "table3", "table5", "table6", "fig5", "fig6", "fig7", "fig8",
    "churn", "events", "outages", "hopgeo",
)


def run_experiments(
    dataset: Dataset,
    names: Optional[Sequence[str]] = None,
    runner: Optional[PipelineRunner] = None,
) -> Tuple[Dict[str, str], RunReport]:
    """Run the named experiments (default: all 18) with degradation.

    Returns the successful sections (name → text) and the run report in
    which every failed experiment carries its error and traceback.  Shared
    section functions (e.g. table3/5/6) are computed once and reused.
    """
    registry = experiment_registry()
    names = list(names) if names is not None else list(EXPERIMENT_NAMES)
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise PipelineError(
            f"unknown experiments {unknown}; available: {sorted(registry)}"
        )
    runner = runner or PipelineRunner()
    cache: Dict[ExperimentFn, str] = {}

    def stage_fn(fn: ExperimentFn) -> Callable:
        def run(_context) -> str:
            if fn not in cache:
                cache[fn] = fn(dataset)
            return cache[fn]

        return run

    stages = [
        Stage(name=n, fn=stage_fn(registry[n]), allow_failure=True) for n in names
    ]
    context, report = runner.run(stages, {})
    sections = {n: context[n] for n in names if n in context}
    return sections, report
