"""The staged pipeline executor: retries, checkpoints, and a run report.

A pipeline is a list of named :class:`Stage` objects executed in order over
a shared context dict.  Each stage gets:

* **seeded retry with exponential backoff** — transient failures (declared
  via ``retry_on``) are retried up to ``retries`` times with jittered
  exponential delays drawn from a deterministic per-stage RNG stream, so a
  flaky run is still a reproducible run;
* **checkpointing** — stages marked ``checkpoint=True`` persist their
  return value keyed by (config hash, seed); a resumed run loads the value
  instead of recomputing it;
* **timing and error capture** — every attempt's start offset and duration
  land in the :class:`RunReport` (and in :class:`StageFailure` for fatal
  stages), so retry latency is first-class data, not log archaeology;
* **graceful degradation** — stages marked ``allow_failure=True`` record
  their failure and let the rest of the pipeline run; fatal stages raise
  :class:`~repro.util.errors.StageFailure`.

Observability: when ``repro.obs`` is enabled, every stage runs inside a
``stage.<name>`` span carrying rows in/out, attempts, and status; retries
bump the ``pipeline.retries`` counter; log lines are attributed to the
stage via :func:`repro.obs.stage_scope`.  With lineage on, each stage's
declared ``inputs`` and its output value are content-fingerprinted into
the provenance DAG (:mod:`repro.obs.lineage`); with metrics on,
table-shaped stage values publish ``table.bytes.*`` / ``table.rows.*``
gauges (:mod:`repro.obs.memory`).  All of it is free when obs is off.
"""

from __future__ import annotations

import enum
import time
import traceback as _tb
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro import obs
from repro.faults.crashpoints import crash_point
from repro.obs.clock import monotonic
from repro.obs.memory import record_value_memory
from repro.runtime.checkpoint import CheckpointStore
from repro.util.errors import CheckpointCorruptError, PipelineError, StageFailure
from repro.util.rng import RngHub

__all__ = [
    "PipelineRunner",
    "RunReport",
    "Stage",
    "StageResult",
    "StageStatus",
    "value_row_count",
]

logger = obs.get_logger(__name__)


class StageStatus(enum.Enum):
    OK = "ok"
    CACHED = "cached"  # value came from a checkpoint (resume hit)
    FAILED = "failed"
    SKIPPED = "skipped"  # an upstream fatal failure prevented the attempt


@dataclass(frozen=True)
class Stage:
    """One named unit of pipeline work.

    ``fn`` receives the shared context dict and returns the stage value,
    which the runner stores under ``context[name]`` for later stages.
    ``inputs`` names the upstream stages this one reads from the context —
    declared, not inferred, so the lineage recorder gets exact provenance
    edges instead of guesses.
    """

    name: str
    fn: Callable[[Dict[str, Any]], Any]
    retries: int = 0
    retry_on: Tuple[Type[BaseException], ...] = ()
    checkpoint: bool = False
    allow_failure: bool = False
    inputs: Tuple[str, ...] = ()


@dataclass
class StageResult:
    """What happened to one stage: status, attempts, timing, rows, error.

    ``attempt_durations`` / ``attempt_started`` hold one entry per
    attempt (including the successful one): elapsed seconds and the start
    offset from the stage's first attempt.  ``rows_in`` / ``rows_out``
    are the table/dataset row counts flowing through the stage where the
    values expose them (``None`` otherwise — e.g. text sections).
    """

    name: str
    status: StageStatus
    attempts: int = 0
    duration_s: float = 0.0
    error: Optional[str] = None
    traceback: Optional[str] = None
    attempt_durations: List[float] = field(default_factory=list)
    attempt_started: List[float] = field(default_factory=list)
    rows_in: Optional[int] = None
    rows_out: Optional[int] = None

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)


@dataclass
class RunReport:
    """The full account of one pipeline run."""

    key: str
    results: List[StageResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(
            r.status in (StageStatus.OK, StageStatus.CACHED) for r in self.results
        )

    def failures(self) -> List[StageResult]:
        return [r for r in self.results if r.status is StageStatus.FAILED]

    def result(self, name: str) -> StageResult:
        for r in self.results:
            if r.name == name:
                return r
        raise PipelineError(f"no stage {name!r} in run report")

    def summary(self) -> str:
        lines = [f"run report (key {self.key or '-'}):"]
        for r in self.results:
            line = (
                f"  {r.name:<24s} {r.status.value:<7s} "
                f"attempts={r.attempts} {r.duration_s:7.2f}s"
            )
            if r.error:
                line += f"  {r.error.splitlines()[0]}"
            lines.append(line)
        n_failed = len(self.failures())
        lines.append(
            f"  {len(self.results)} stages, "
            f"{sum(1 for r in self.results if r.status is StageStatus.CACHED)} cached, "
            f"{n_failed} failed"
        )
        return "\n".join(lines)


def value_row_count(value: Any) -> Optional[int]:
    """Row count of a stage value, if it is table- or dataset-shaped.

    Tables expose ``n_rows``; datasets expose ``ndt``/``traces`` tables.
    Anything else (report sections, scalars) counts as ``None``.
    """
    n = getattr(value, "n_rows", None)
    if isinstance(n, int):
        return n
    ndt = getattr(value, "ndt", None)
    traces = getattr(value, "traces", None)
    if ndt is not None and traces is not None:
        n_ndt = getattr(ndt, "n_rows", None)
        n_traces = getattr(traces, "n_rows", None)
        if isinstance(n_ndt, int) and isinstance(n_traces, int):
            return n_ndt + n_traces
    return None


class PipelineRunner:
    """Executes stages in order over a context dict.

    Parameters
    ----------
    checkpoints / key:
        Where and under which key checkpointable stage values persist.
        With no store, checkpoint flags are ignored.
    resume:
        Load checkpointed values where present instead of recomputing.
    max_retries / backoff_base / backoff_cap:
        Defaults for stages that declare ``retry_on`` but no ``retries``.
        Backoff for attempt *k* is ``backoff_base * 2**(k-1)`` scaled by a
        jitter in [0.5, 1.5) drawn from a per-stage seeded stream.
    sleep / clock:
        Injectable for tests (no real sleeping in the suite).
    """

    def __init__(
        self,
        checkpoints: Optional[CheckpointStore] = None,
        key: str = "",
        resume: bool = False,
        max_retries: int = 2,
        backoff_base: float = 0.25,
        backoff_cap: float = 30.0,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = monotonic,
    ):
        if checkpoints is not None and not key:
            raise PipelineError("a checkpoint store needs a nonempty run key")
        self.checkpoints = checkpoints
        self.key = key
        self.resume = resume
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._hub = RngHub(seed)
        self._sleep = sleep
        self._clock = clock

    def backoff_delays(self, stage_name: str, attempts: int) -> List[float]:
        """The jittered exponential delays a stage would sleep between retries."""
        rng = self._hub.fresh(f"backoff:{stage_name}")
        delays = []
        for attempt in range(1, attempts + 1):
            base = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
            delays.append(base * (0.5 + rng.random()))
        return delays

    # -- execution ----------------------------------------------------------
    def run(
        self, stages: Sequence[Stage], context: Optional[Dict[str, Any]] = None
    ) -> Tuple[Dict[str, Any], RunReport]:
        """Run every stage; returns the final context and the run report."""
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise PipelineError(f"duplicate stage names: {dupes}")
        context = context if context is not None else {}
        report = RunReport(key=self.key)
        recorder = obs.active_lineage()
        if recorder is not None:
            recorder.set_run(config_key=self.key)
        failed_fatal: Optional[StageFailure] = None
        rows_flowing: Optional[int] = None
        for stage in stages:
            if failed_fatal is not None:
                report.results.append(
                    StageResult(name=stage.name, status=StageStatus.SKIPPED)
                )
                if recorder is not None:
                    recorder.record_stage(
                        stage.name,
                        inputs={n: None for n in stage.inputs},
                        status=StageStatus.SKIPPED.value,
                    )
                continue
            result = self._run_stage(stage, context)
            result.rows_in = rows_flowing
            if result.rows_out is not None:
                rows_flowing = result.rows_out
            report.results.append(result)
            if recorder is not None:
                recorder.record_stage(
                    stage.name,
                    value=context.get(stage.name),
                    inputs={n: context.get(n) for n in stage.inputs},
                    status=result.status.value,
                )
            record_value_memory(stage.name, context.get(stage.name))
            if result.status is StageStatus.FAILED and not stage.allow_failure:
                failed_fatal = StageFailure(
                    stage.name,
                    result.attempts,
                    context.pop("__last_error__"),
                    attempt_durations=result.attempt_durations,
                    attempt_started=result.attempt_started,
                )
        context["__report__"] = report
        if failed_fatal is not None:
            failed_fatal.report = report
            raise failed_fatal
        return context, report

    def _run_stage(self, stage: Stage, context: Dict[str, Any]) -> StageResult:
        with obs.span(f"stage.{stage.name}", kind="stage") as span, \
                obs.stage_scope(stage.name):
            result = self._run_stage_inner(stage, context)
            span.set(
                status=result.status.value,
                attempts=result.attempts,
                rows_out=result.rows_out,
            )
        return result

    def _run_stage_inner(self, stage: Stage, context: Dict[str, Any]) -> StageResult:
        start = self._clock()
        if (
            self.resume
            and self.checkpoints is not None
            and stage.checkpoint
            and self.checkpoints.has(self.key, stage.name)
        ):
            try:
                value = self.checkpoints.load(self.key, stage.name)
            except CheckpointCorruptError as exc:
                # Corruption is detected, quarantined, and *recovered from*:
                # the stage simply recomputes, exactly as on a cache miss.
                logger.warning(
                    "stage %s: checkpoint corrupt (%s); recomputing",
                    stage.name, exc,
                )
            else:
                context[stage.name] = value
                logger.info("stage %s: loaded from checkpoint", stage.name)
                return StageResult(
                    name=stage.name,
                    status=StageStatus.CACHED,
                    attempts=0,
                    duration_s=self._clock() - start,
                    rows_out=value_row_count(value),
                )

        max_attempts = 1 + (stage.retries if stage.retry_on else 0)
        logger.debug("stage %s: starting (attempt budget %d)", stage.name, max_attempts)
        delays = self.backoff_delays(stage.name, max_attempts - 1)
        last_exc: Optional[BaseException] = None
        attempt_durations: List[float] = []
        attempt_started: List[float] = []
        for attempt in range(1, max_attempts + 1):
            attempt_t0 = self._clock()
            attempt_started.append(attempt_t0 - start)
            try:
                value = stage.fn(context)
            except stage.retry_on as exc:
                attempt_durations.append(self._clock() - attempt_t0)
                last_exc = exc
                if attempt < max_attempts:
                    delay = delays[attempt - 1]
                    obs.counter("pipeline.retries").inc()
                    logger.warning(
                        "stage %s attempt %d/%d failed (%s: %s); retrying in %.2fs",
                        stage.name, attempt, max_attempts,
                        type(exc).__name__, exc, delay,
                    )
                    self._sleep(delay)
                    continue
            except Exception as exc:  # non-retryable: capture and stop
                attempt_durations.append(self._clock() - attempt_t0)
                last_exc = exc
            else:
                attempt_durations.append(self._clock() - attempt_t0)
                context[stage.name] = value
                if self.checkpoints is not None and stage.checkpoint:
                    self.checkpoints.save(self.key, stage.name, value)
                crash_point(f"stage.{stage.name}:done")
                logger.debug(
                    "stage %s: ok in %.3fs (attempt %d/%d)",
                    stage.name, self._clock() - start, attempt, max_attempts,
                )
                return StageResult(
                    name=stage.name,
                    status=StageStatus.OK,
                    attempts=attempt,
                    duration_s=self._clock() - start,
                    attempt_durations=attempt_durations,
                    attempt_started=attempt_started,
                    rows_out=value_row_count(value),
                )
            break
        assert last_exc is not None
        obs.counter("pipeline.stage_failures").inc()
        logger.error(
            "stage %s: failed after %d attempt(s): %s: %s",
            stage.name, attempt, type(last_exc).__name__, last_exc,
        )
        context["__last_error__"] = last_exc
        return StageResult(
            name=stage.name,
            status=StageStatus.FAILED,
            attempts=attempt,
            duration_s=self._clock() - start,
            error=f"{type(last_exc).__name__}: {last_exc}",
            traceback="".join(
                _tb.format_exception(type(last_exc), last_exc, last_exc.__traceback__)
            ),
            attempt_durations=attempt_durations,
            attempt_started=attempt_started,
        )
