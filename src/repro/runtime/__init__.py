"""Fault-tolerant pipeline runtime.

The staged executor (:mod:`repro.runtime.pipeline`) wraps
generate → inject → ingest → analyze as named stages with seeded retry and
exponential backoff, per-stage checkpointing keyed by (config hash, seed)
with resume, per-stage timing/error capture, and graceful degradation for
the 18 experiments.  :mod:`repro.runtime.ingest` is the quarantine gate;
:mod:`repro.runtime.run` is the end-to-end orchestration the CLI calls.
"""

from repro.runtime.checkpoint import CheckpointStore, config_key
from repro.runtime.experiments import (
    EXPERIMENT_NAMES,
    experiment_registry,
    run_experiments,
)
from repro.runtime.ingest import ndt_rules, sanitize_dataset, trace_rules
from repro.runtime.pipeline import (
    PipelineRunner,
    RunReport,
    Stage,
    StageResult,
    StageStatus,
)
from repro.runtime.run import (
    DEFAULT_CHECKPOINT_DIR,
    EXIT_ANALYSIS,
    EXIT_GENERATION,
    EXIT_OK,
    ReportRun,
    run_pipeline,
)

__all__ = [
    "DEFAULT_CHECKPOINT_DIR",
    "EXIT_ANALYSIS",
    "EXIT_GENERATION",
    "EXIT_OK",
    "EXPERIMENT_NAMES",
    "CheckpointStore",
    "PipelineRunner",
    "ReportRun",
    "RunReport",
    "Stage",
    "StageResult",
    "StageStatus",
    "config_key",
    "experiment_registry",
    "ndt_rules",
    "run_experiments",
    "run_pipeline",
    "sanitize_dataset",
    "trace_rules",
]
