"""End-to-end orchestration: generate → inject → ingest → analyze.

This is what ``repro report`` / ``repro experiment`` execute.  The generate
stage is checkpointed under a key derived from the GeneratorConfig, so a
run killed after generation can resume without regenerating; every
experiment runs with graceful degradation and the whole thing ends in a
:class:`ReportRun` whose ``render()`` is the CLI's output and whose
``exit_code`` distinguishes generation from analysis failures.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro import obs
from repro.faults.injector import FaultInjector, InjectionSummary
from repro.faults.profiles import FaultProfile
from repro.runtime.checkpoint import CheckpointStore, config_key
from repro.runtime.experiments import EXPERIMENT_NAMES, experiment_registry
from repro.runtime.ingest import sanitize_dataset
from repro.runtime.pipeline import PipelineRunner, RunReport, Stage, StageStatus
from repro.synth.generator import Dataset, DatasetGenerator, GeneratorConfig
from repro.tables.validate import GateResult

__all__ = [
    "DEFAULT_CHECKPOINT_DIR",
    "EXIT_ANALYSIS",
    "EXIT_GENERATION",
    "EXIT_OK",
    "ReportRun",
    "run_pipeline",
]

#: Exit codes the CLI maps failures onto (argparse keeps 2 for usage).
EXIT_OK = 0
EXIT_GENERATION = 3
EXIT_ANALYSIS = 4

DEFAULT_CHECKPOINT_DIR = os.path.join("results", ".checkpoints")

#: Stages that belong to data production rather than analysis.
GENERATION_STAGES = ("generate", "inject-faults", "ingest")


@dataclass
class ReportRun:
    """Everything one orchestrated run produced."""

    dataset: Optional[Dataset]
    sections: Dict[str, str]
    report: RunReport
    gates: Dict[str, GateResult] = field(default_factory=dict)
    injection: Optional[InjectionSummary] = None

    @property
    def exit_code(self) -> int:
        failed = {r.name for r in self.report.failures()}
        if failed & set(GENERATION_STAGES):
            return EXIT_GENERATION
        if failed:
            return EXIT_ANALYSIS
        return EXIT_OK

    def data_quality_section(self) -> str:
        lines = ["== Data quality =="]
        if self.injection is not None:
            lines.append(str(self.injection))
        if self.gates:
            for name, gate in self.gates.items():
                lines.append(str(gate.report))
        if self.injection is None and not self.gates:
            lines.append("(no ingest gate in this run)")
        return "\n".join(lines)

    def render(self, include_report: bool = True) -> str:
        parts: List[str] = []
        if self.dataset is not None:
            parts.append(
                f"REPRODUCTION REPORT — {self.dataset.ndt.n_rows} NDT tests, "
                f"{self.dataset.traces.n_rows} traceroutes "
                f"(seed {self.dataset.config.seed}, "
                f"scale {self.dataset.config.scale})"
            )
        seen = set()
        for name, text in self.sections.items():
            if text in seen:  # shared sections (table3/5/6) print once
                continue
            seen.add(text)
            parts.append(text)
        for failure in self.report.failures():
            parts.append(
                f"== {failure.name}: FAILED ==\n{failure.error}\n"
                f"(full traceback in the run report)"
            )
        parts.append(self.data_quality_section())
        if include_report:
            parts.append(self.report.summary())
        return ("\n\n" + "=" * 72 + "\n\n").join(parts)


def _build_stages(
    config: GeneratorConfig,
    profile: Optional[FaultProfile],
    strict: bool,
    experiments: Sequence[str],
    gates_out: Dict[str, GateResult],
    injection_out: List[InjectionSummary],
) -> List[Stage]:
    def generate(_ctx: Dict[str, Any]) -> Dataset:
        return DatasetGenerator(config).generate()

    def inject(ctx: Dict[str, Any]) -> Dataset:
        dirty, summary = FaultInjector(profile, seed=config.seed).inject_dataset(
            ctx["generate"]
        )
        injection_out.append(summary)
        obs.counter("faults.rows_injected").inc(summary.total)
        return dirty

    def ingest(ctx: Dict[str, Any]) -> Dataset:
        source = ctx.get("inject-faults", ctx["generate"])
        clean, gates = sanitize_dataset(source, strict=strict)
        gates_out.update(gates)
        return clean

    stages = [Stage(name="generate", fn=generate, checkpoint=True)]
    injecting = profile is not None and profile.total_rate > 0
    if injecting:
        stages.append(
            Stage(name="inject-faults", fn=inject, inputs=("generate",))
        )
    stages.append(
        Stage(
            name="ingest",
            fn=ingest,
            # ingest always evaluates ctx["generate"] (the .get default is
            # eager), so the generate edge must survive the injecting arm or
            # provenance.json drops it.
            inputs=("inject-faults", "generate") if injecting else ("generate",),
        )
    )

    registry = experiment_registry()
    cache: Dict[Any, str] = {}

    def experiment_fn(fn):
        def run(ctx: Dict[str, Any]) -> str:
            if fn not in cache:
                cache[fn] = fn(ctx["ingest"])
            return cache[fn]

        return run

    for name in experiments:
        stages.append(
            Stage(
                name=name,
                fn=experiment_fn(registry[name]),
                allow_failure=True,
                inputs=("ingest",),
            )
        )
    return stages


def run_pipeline(
    config: GeneratorConfig,
    profile: Optional[FaultProfile] = None,
    strict: bool = False,
    resume: bool = False,
    checkpoint_dir: Optional[str] = DEFAULT_CHECKPOINT_DIR,
    experiments: Optional[Sequence[str]] = None,
    runner: Optional[PipelineRunner] = None,
) -> ReportRun:
    """Run the full pipeline; never raises for *experiment* failures.

    Generation-side failures (generate / inject / ingest) do raise
    :class:`~repro.util.errors.StageFailure` — without data there is
    nothing to degrade to.  The caller maps that onto ``EXIT_GENERATION``.
    """
    experiments = list(experiments) if experiments is not None else list(
        EXPERIMENT_NAMES
    )
    registry = experiment_registry()
    unknown = [n for n in experiments if n not in registry]
    if unknown:
        from repro.util.errors import PipelineError

        raise PipelineError(
            f"unknown experiments {unknown}; available: {sorted(registry)}"
        )

    gates: Dict[str, GateResult] = {}
    injections: List[InjectionSummary] = []
    stages = _build_stages(config, profile, strict, experiments, gates, injections)

    if runner is None:
        store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
        runner = PipelineRunner(
            checkpoints=store,
            key=config_key(config) if store else "",
            resume=resume,
            seed=config.seed,
        )
    try:
        context, report = runner.run(stages, {})
    except Exception as exc:
        # Attach whatever partial state exists so the CLI can still print
        # a run report before exiting nonzero.
        report = getattr(exc, "report", None)
        if report is not None:
            exc.partial_run = ReportRun(
                dataset=None,
                sections={},
                report=report,
                gates=gates,
                injection=injections[0] if injections else None,
            )
        raise
    sections = {n: context[n] for n in experiments if n in context}
    return ReportRun(
        dataset=context.get("ingest"),
        sections=sections,
        report=report,
        gates=gates,
        injection=injections[0] if injections else None,
    )
