"""Dataset-level ingest gate: quarantine dirty NDT/traceroute rows.

The rules encode what the paper's pipeline silently relied on: metrics are
positive finite numbers, loss is a fraction, timestamps fall inside the
study windows, test UUIDs are unique, and a scamper record's hop count
matches its hop list.  Clean generator output passes untouched; tables
dirtied like real M-Lab extracts get split into a clean table and a
quarantine side table that accounts for every dropped row.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from repro import obs
from repro.synth.generator import Dataset, study_periods
from repro.tables.validate import (
    GateResult,
    Rule,
    in_range,
    matches_length,
    positive,
    unique,
    validate_table,
    within,
)

__all__ = ["ndt_rules", "sanitize_dataset", "trace_rules"]


def _study_windows() -> List[Tuple[int, int]]:
    return [
        (p.start.ordinal, p.end.ordinal) for p in study_periods().values()
    ]


def ndt_rules() -> List[Rule]:
    """Validity rules for the NDT download table."""
    return [
        positive("tput_mbps"),
        positive("min_rtt_ms"),
        in_range("loss_rate", 0.0, 1.0),
        within("day", _study_windows()),
        unique("test_id"),
    ]


def trace_rules() -> List[Rule]:
    """Validity rules for the traceroute table."""
    return [
        matches_length("n_hops", "path"),
        within("day", _study_windows()),
        unique("test_id"),
    ]


def sanitize_dataset(
    dataset: Dataset, strict: bool = False
) -> Tuple[Dataset, Dict[str, GateResult]]:
    """Run both tables through the validation gate.

    Returns the dataset rebuilt around the clean tables, plus the per-table
    :class:`GateResult` (clean/quarantine/report).  Strict mode raises
    :class:`~repro.util.errors.ValidationFailure` on the first dirty table.
    """
    gates = {
        "ndt": validate_table(dataset.ndt, ndt_rules(), name="ndt", strict=strict),
        "traces": validate_table(
            dataset.traces, trace_rules(), name="traces", strict=strict
        ),
    }
    for name, gate in gates.items():
        obs.counter(f"ingest.{name}.rows_quarantined").inc(
            gate.report.n_quarantined
        )
        obs.counter(f"ingest.{name}.rows_clean").inc(gate.clean.n_rows)
    obs.counter("ingest.rows_quarantined").inc(
        sum(g.report.n_quarantined for g in gates.values())
    )
    clean = replace(
        dataset, ndt=gates["ndt"].clean, traces=gates["traces"].clean
    )
    return clean, gates
