"""Per-stage checkpointing keyed by (config hash, seed).

A checkpoint key is derived from the *content* of the run configuration,
not from CLI spelling: two invocations with the same GeneratorConfig (and
any extra knobs that change the data, e.g. the fault profile) share
checkpoints; changing any knob — seed, scale, an ablation flag — silently
gets a fresh key.  Values are pickled; the store keeps hit/miss counters
so resume behaviour is assertable in tests.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
from typing import Any, Mapping, Optional

from repro import obs
from repro.util.errors import PipelineError

__all__ = ["CheckpointStore", "config_key"]


def config_key(config: Any, extra: Optional[Mapping[str, Any]] = None) -> str:
    """A stable hex key for a run configuration (plus extra knobs).

    ``config`` may be a dataclass (e.g. GeneratorConfig) or any mapping.
    The key covers every field, so it changes whenever the seed, the scale,
    or an ablation flag does.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = {
            "__class__": type(config).__name__,
            **dataclasses.asdict(config),
        }
    elif isinstance(config, Mapping):
        payload = dict(config)
    else:
        raise PipelineError(
            f"config_key needs a dataclass or mapping, got {type(config).__name__}"
        )
    if extra:
        payload.update({f"extra:{k}": v for k, v in extra.items()})
    text = repr(sorted(payload.items()))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class CheckpointStore:
    """Pickle-per-stage storage under ``root/<key>/<stage>.pkl``."""

    def __init__(self, root: str):
        self.root = root
        self.hits = 0
        self.misses = 0

    def _path(self, key: str, stage: str) -> str:
        safe = stage.replace(os.sep, "_")
        return os.path.join(self.root, key, f"{safe}.pkl")

    def has(self, key: str, stage: str) -> bool:
        return os.path.exists(self._path(key, stage))

    def load(self, key: str, stage: str) -> Any:
        """Load a checkpointed value; counts a hit. Raises if absent/corrupt."""
        path = self._path(key, stage)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            obs.counter("checkpoint.misses").inc()
            raise PipelineError(f"no checkpoint for stage {stage!r} at {path}") from None
        except (pickle.UnpicklingError, EOFError, AttributeError) as exc:
            self.misses += 1
            obs.counter("checkpoint.misses").inc()
            raise PipelineError(
                f"corrupt checkpoint for stage {stage!r} at {path}: {exc}"
            ) from exc
        self.hits += 1
        obs.counter("checkpoint.hits").inc()
        return value

    def save(self, key: str, stage: str, value: Any) -> str:
        """Atomically persist a stage value; returns the checkpoint path."""
        path = self._path(key, stage)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError) as exc:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise PipelineError(f"cannot checkpoint stage {stage!r}: {exc}") from exc
        obs.counter("checkpoint.saves").inc()
        return path

    def drop(self, key: str, stage: Optional[str] = None) -> None:
        """Remove one stage's checkpoint, or every stage under the key."""
        if stage is not None:
            path = self._path(key, stage)
            if os.path.exists(path):
                os.unlink(path)
            return
        key_dir = os.path.join(self.root, key)
        if os.path.isdir(key_dir):
            for name in os.listdir(key_dir):
                os.unlink(os.path.join(key_dir, name))
            os.rmdir(key_dir)
