"""Per-stage checkpointing keyed by (config hash, seed).

A checkpoint key is derived from the *content* of the run configuration,
not from CLI spelling: two invocations with the same GeneratorConfig (and
any extra knobs that change the data, e.g. the fault profile) share
checkpoints; changing any knob — seed, scale, an ablation flag — silently
gets a fresh key.  Values are pickled; the store keeps hit/miss counters
so resume behaviour is assertable in tests.

Durability (``docs/ROBUSTNESS.md``): values are committed through
:mod:`repro.storage` as framed, checksummed **generations** —
``<stage>.g0001``, ``.g0002``, ... — with atomic write→fsync→rename and
the newest ``keep`` generations retained.  A truncated or bit-rotten
generation is *detected*, quarantined, and skipped in favour of the
previous one; only when every generation is corrupt does :meth:`load`
raise a typed :class:`~repro.util.errors.CheckpointCorruptError`, which
the pipeline's resume path treats as "recompute the stage", never as a
crash.  Legacy bare-pickle ``<stage>.pkl`` files from older runs are
still read (and verified as well as a raw pickle can be).
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import pickle
from typing import Any, Mapping, Optional

from repro import obs, storage
from repro.util.errors import (
    ArtifactCorruptError,
    CheckpointCorruptError,
    PipelineError,
    StorageError,
)

__all__ = ["CHECKPOINT_JSON_KIND", "CHECKPOINT_KIND", "CheckpointStore", "config_key"]

#: Container kind stamped into every checkpoint frame.
CHECKPOINT_KIND = "checkpoint/pickle"

#: Frame kind for JSON-codec checkpoints (``codec="json"``).
CHECKPOINT_JSON_KIND = "checkpoint/json"

#: How many generations of each stage checkpoint survive by default.
DEFAULT_KEEP = 3


def config_key(config: Any, extra: Optional[Mapping[str, Any]] = None) -> str:
    """A stable hex key for a run configuration (plus extra knobs).

    ``config`` may be a dataclass (e.g. GeneratorConfig) or any mapping.
    The key covers every field, so it changes whenever the seed, the scale,
    or an ablation flag does.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = {
            "__class__": type(config).__name__,
            **dataclasses.asdict(config),
        }
    elif isinstance(config, Mapping):
        payload = dict(config)
    else:
        raise PipelineError(
            f"config_key needs a dataclass or mapping, got {type(config).__name__}"
        )
    if extra:
        payload.update({f"extra:{k}": v for k, v in extra.items()})
    text = repr(sorted(payload.items()))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class CheckpointStore:
    """Generation-kept, checksummed storage under ``root/<key>/<stage>.g*``.

    ``codec`` picks the payload encoding: ``"pickle"`` (the default —
    arbitrary Python values) or ``"json"`` — canonical JSON
    (sorted keys, compact separators), used by the live daemon so its
    window-state checkpoints are byte-stable and greppable.  JSON stores
    never fall back to legacy ``.pkl`` files.
    """

    def __init__(self, root: str, keep: int = DEFAULT_KEEP, codec: str = "pickle"):
        if codec not in ("pickle", "json"):
            raise PipelineError(f"unknown checkpoint codec {codec!r}")
        self.root = root
        self.keep = keep
        self.codec = codec
        self.hits = 0
        self.misses = 0

    def _base(self, key: str, stage: str) -> str:
        safe = stage.replace(os.sep, "_")
        return os.path.join(self.root, key, safe)

    def _legacy_path(self, key: str, stage: str) -> str:
        return f"{self._base(key, stage)}.pkl"

    def _generations(self, key: str, stage: str) -> storage.GenerationStore:
        kind = CHECKPOINT_KIND if self.codec == "pickle" else CHECKPOINT_JSON_KIND
        return storage.GenerationStore(
            self._base(key, stage),
            kind,
            keep=self.keep,
            label=f"checkpoint.{stage}",
        )

    def has(self, key: str, stage: str) -> bool:
        """Whether any checkpoint file (of any generation) exists.

        Existence is deliberately cheap and unverified; :meth:`load` does
        the integrity work and decides what is actually usable.
        """
        if len(self._generations(key, stage)):
            return True
        return storage.get_fs().exists(self._legacy_path(key, stage))

    def _decode(self, payload: bytes, stage: str, path: str) -> Any:
        try:
            if self.codec == "json":
                return json.loads(payload.decode("utf-8"))
            return pickle.loads(payload)
        except Exception as exc:  # pickle raises wildly varied types
            raise CheckpointCorruptError(
                path, f"checkpoint for stage {stage!r} does not decode: {exc}"
            ) from exc

    def _encode(self, value: Any, stage: str) -> bytes:
        try:
            if self.codec == "json":
                text = json.dumps(
                    value, sort_keys=True, separators=(",", ":"), allow_nan=False
                )
                return text.encode("utf-8")
            buf = io.BytesIO()
            pickle.dump(value, buf, protocol=pickle.HIGHEST_PROTOCOL)
            return buf.getvalue()
        except (pickle.PicklingError, TypeError, AttributeError, ValueError) as exc:
            raise PipelineError(f"cannot checkpoint stage {stage!r}: {exc}") from exc

    def load(self, key: str, stage: str) -> Any:
        """Load the newest intact generation; counts a hit.

        Raises :class:`PipelineError` when no checkpoint exists at all and
        :class:`CheckpointCorruptError` when files exist but every one is
        corrupt — a typed signal the pipeline maps to "recompute", never a
        raw deserialization error.
        """
        gens = self._generations(key, stage)
        try:
            loaded = gens.load_latest_intact()
        except ArtifactCorruptError as exc:
            self.misses += 1
            obs.counter("checkpoint.misses").inc()
            obs.counter("checkpoint.corrupt").inc()
            raise CheckpointCorruptError(
                exc.path,
                f"corrupt checkpoint for stage {stage!r}: {exc.reason}",
                quarantined_to=exc.quarantined_to,
            ) from exc
        if loaded is not None:
            payload, _gen = loaded
            value = self._decode(payload, stage, gens.base)
            self.hits += 1
            obs.counter("checkpoint.hits").inc()
            return value

        legacy = self._legacy_path(key, stage)
        fs = storage.get_fs()
        if self.codec == "pickle" and fs.exists(legacy):
            try:
                payload = storage.read_bytes(legacy)
                value = pickle.loads(payload)
            except Exception as exc:
                self.misses += 1
                obs.counter("checkpoint.misses").inc()
                obs.counter("checkpoint.corrupt").inc()
                moved = storage.quarantine_file(legacy, "legacy pickle unreadable")
                raise CheckpointCorruptError(
                    legacy,
                    f"corrupt checkpoint for stage {stage!r}: {exc}",
                    quarantined_to=moved,
                ) from exc
            self.hits += 1
            obs.counter("checkpoint.hits").inc()
            return value

        self.misses += 1
        obs.counter("checkpoint.misses").inc()
        raise PipelineError(
            f"no checkpoint for stage {stage!r} at {gens.base}.g*"
        )

    def save(self, key: str, stage: str, value: Any) -> str:
        """Durably persist a new generation; returns the checkpoint path.

        The commit is atomic (temp file, fsync, rename, directory fsync)
        and checksummed, so a crash at any byte leaves either the previous
        generation or a detectably-partial temp file — never a torn
        checkpoint a resume would trust.
        """
        payload = self._encode(value, stage)
        try:
            path = self._generations(key, stage).commit(payload)
        except StorageError as exc:
            raise PipelineError(f"cannot checkpoint stage {stage!r}: {exc}") from exc
        obs.counter("checkpoint.saves").inc()
        return path

    def drop(self, key: str, stage: Optional[str] = None) -> None:
        """Remove one stage's checkpoint, or every stage under the key."""
        fs = storage.get_fs()
        if stage is not None:
            self._generations(key, stage).drop()
            legacy = self._legacy_path(key, stage)
            if fs.exists(legacy):
                fs.remove(legacy)
            return
        key_dir = os.path.join(self.root, key)
        if os.path.isdir(key_dir):
            for name in fs.listdir(key_dir):
                fs.remove(os.path.join(key_dir, name))
            os.rmdir(key_dir)
