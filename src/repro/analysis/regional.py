"""Figure 3 and Table 4: oblast-level metrics and their wartime changes.

Tests are grouped by the geo-DB oblast label (rows without a label are
excluded, as in the paper); each oblast's prewar and wartime aggregates and
the percentage changes between them are reported.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.common import clean_ndt, period_predicate
from repro.geo.gazetteer import Gazetteer
from repro.stats.descriptive import percent_change
from repro.tables.expr import col
from repro.tables.schema import Cols, DType
from repro.tables.table import Table
from repro.util.errors import AnalysisError

__all__ = ["oblast_changes", "oblast_summary"]

_AGG_SPEC = {
    Cols.TPUT: (Cols.TPUT, "mean"),
    Cols.MIN_RTT: (Cols.MIN_RTT, "mean"),
    Cols.LOSS_RATE: (Cols.LOSS_RATE, "mean"),
    "count": ("test_id", "count"),
}


def _period_oblast_agg(ndt: Table, period: str) -> Table:
    """Per-oblast aggregates of one study period's geo-labeled tests.

    Runs as one lazy chain: the optimizer fuses the period and label
    filters into the aggregation, so the filtered intermediate is never
    materialized, and the shared plan cache lets ``oblast_summary`` and
    ``oblast_changes`` reuse each other's aggregates over the same input.
    """
    agg = (
        ndt.lazy()
        .filter(period_predicate(period))
        .filter(col("oblast").notnull())
        .group_by("oblast")
        .aggregate(_AGG_SPEC)
    ).collect()
    if agg.n_rows == 0:
        raise AnalysisError("no geo-labeled tests")
    return agg


def oblast_summary(ndt: Table) -> Table:
    """Table 4: raw per-oblast metrics for prewar and wartime.

    Output columns: ``oblast``, ``period``, ``tput_mbps``, ``min_rtt_ms``,
    ``loss_rate``, ``count`` — sorted by prewar count descending like the
    paper's table.
    """
    ndt = clean_ndt(ndt, "oblast_summary")
    parts = []
    for period in ("prewar", "wartime"):
        agg = _period_oblast_agg(ndt, period)
        agg = agg.with_column(Cols.PERIOD, [period] * agg.n_rows, DType.STR)
        parts.append(agg)
    from repro.tables.table import concat

    merged = concat(parts)
    prewar_counts: Dict[str, int] = dict(
        zip(
            parts[0].column("oblast").to_list(),
            parts[0].column("count").to_list(),
        )
    )
    oblasts = merged.column("oblast").to_list()
    period_names = merged.column(Cols.PERIOD).to_list()
    order = sorted(
        range(merged.n_rows),
        key=lambda i: (
            -prewar_counts.get(oblasts[i], 0),
            oblasts[i],
            period_names[i],
        ),
    )
    return merged.take(np.asarray(order))


def oblast_changes(ndt: Table, gazetteer: Gazetteer) -> Table:
    """Figure 3: percentage change of each metric per oblast, with its zone.

    Output columns: ``oblast``, ``zone``, ``d_count_pct``, ``d_rtt_pct``,
    ``d_tput_pct``, ``d_loss_pct``.  Oblasts missing from either period are
    skipped (tiny oblasts may produce no labeled wartime tests).
    """
    ndt = clean_ndt(ndt, "oblast_changes")
    pre = {r["oblast"]: r for r in _period_oblast_agg(ndt, "prewar").to_dicts()}
    war = {r["oblast"]: r for r in _period_oblast_agg(ndt, "wartime").to_dicts()}
    rows = []
    for oblast in sorted(set(pre) & set(war)):
        p, w = pre[oblast], war[oblast]
        rows.append(
            {
                "oblast": oblast,
                "zone": gazetteer.oblast(oblast).zone.value,
                "prewar_count": int(p["count"]),
                "d_count_pct": percent_change(p["count"], w["count"]),
                "d_rtt_pct": percent_change(p[Cols.MIN_RTT], w[Cols.MIN_RTT]),
                "d_tput_pct": percent_change(p[Cols.TPUT], w[Cols.TPUT]),
                "d_loss_pct": percent_change(p[Cols.LOSS_RATE], w[Cols.LOSS_RATE]),
            }
        )
    if not rows:
        raise AnalysisError("no oblast present in both periods")
    return Table.from_rows(rows)


def zone_average_changes(changes: Table) -> Table:
    """Test-count-weighted mean change per conflict zone (Figure 3's reading).

    The paper's headline: oblasts in the militarily active North and
    Southeast degrade most.  Weighting by prewar test counts keeps
    small-sample oblasts (whose percent changes are dominated by noise)
    from swamping the zone signal.
    """
    buckets = {}
    for zone, prewar_count, d_rtt, d_tput, d_loss in zip(
        changes.column("zone").to_list(),
        changes.column("prewar_count").to_list(),
        changes.column("d_rtt_pct").to_list(),
        changes.column("d_tput_pct").to_list(),
        changes.column("d_loss_pct").to_list(),
    ):
        entry = buckets.setdefault(
            zone, {"w": 0.0, "rtt": 0.0, "tput": 0.0, "loss": 0.0, "n": 0}
        )
        w = float(prewar_count)
        entry["w"] += w
        entry["rtt"] += w * d_rtt
        entry["tput"] += w * d_tput
        entry["loss"] += w * d_loss
        entry["n"] += 1
    rows = [
        {
            "zone": zone,
            "d_rtt_pct": e["rtt"] / e["w"],
            "d_tput_pct": e["tput"] / e["w"],
            "d_loss_pct": e["loss"] / e["w"],
            "n_oblasts": e["n"],
        }
        for zone, e in sorted(buckets.items())
    ]
    return Table.from_rows(rows)
