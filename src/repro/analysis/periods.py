"""The paper's four 54-day analysis windows.

Re-exported from the generator module (one definition, two consumers): the
generator uses them to schedule arrivals, the analyses to slice tables.
"""

from repro.synth.generator import study_periods

__all__ = ["PERIOD_NAMES", "study_periods"]

#: Canonical presentation order (Table 2's rows).
PERIOD_NAMES = ["baseline_janfeb", "baseline_febapr", "prewar", "wartime"]
