"""The paper's analysis pipeline, recomputed from generated tables.

One module per paper artifact:

====================  ==========================================
Module                Paper artifact
====================  ==========================================
``national``          Figure 2 (daily national metric series)
``regional``          Figure 3 + Table 4 (oblast level)
``city``              Table 1 + Figure 4 (city level)
``paths``             Table 2 + Figure 9 (path diversity)
``asn_metrics``       Tables 3, 5, 6 (AS level)
``border``            Figure 5 (border-AS heatmap)
``casestudy``         Figure 6 (AS 199995 / Hurricane Electric)
``distros``           Figures 7-8 (metric distributions)
``report``            everything, as text
====================  ==========================================

Extension modules (the paper's future-work items): ``outages`` (date-level
anomaly detection), ``events_impact`` (event study), ``routing_churn``
(BGP-collector view), ``uncertainty`` (bootstrap cross-check of Table 1),
``protocol`` (CCA-mix validity), ``hopgeo`` (rDNS geolocation cross-check).

Every function here consumes only the generated NDT/traceroute tables (plus
the IP→AS trie and AS registry, the analogues of routeviews/whois data);
none reads the calibration targets.
"""

from repro.analysis.common import (
    METRICS,
    client_as_column,
    parse_as_path,
    slice_period,
    slice_year,
    with_periods,
)
from repro.analysis.periods import PERIOD_NAMES, study_periods

__all__ = [
    "METRICS",
    "PERIOD_NAMES",
    "client_as_column",
    "parse_as_path",
    "slice_period",
    "slice_year",
    "study_periods",
    "with_periods",
]
