"""Figures 7-8: distributions of each metric, prewar vs wartime.

The paper's Appendix B histograms justify (and caveat) the Welch t-test:
minimum RTT is roughly normal with a spike near zero, throughput and loss
are right-skewed.  This module produces the binned histograms and summary
skew statistics.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.analysis.common import clean_ndt, slice_period
from repro.tables.schema import Cols, DType
from repro.tables.table import Table
from repro.util.errors import AnalysisError

__all__ = ["metric_histogram", "skewness"]

#: Plot ranges mirroring the paper's figures.
_RANGES: Dict[str, Tuple[float, float]] = {
    Cols.MIN_RTT: (0.0, 100.0),
    Cols.TPUT: (0.0, 200.0),
    Cols.LOSS_RATE: (0.0, 0.20),
}


def metric_histogram(
    ndt: Table, metric: str, period: str, bins: int = 30
) -> Table:
    """Histogram of one metric in one period.

    Output columns: ``bin_low``, ``bin_high``, ``count``, ``fraction``.
    Values beyond the paper's plot range are clipped into the last bin.
    """
    if metric not in _RANGES:
        raise AnalysisError(f"unknown metric {metric!r}; choose from {sorted(_RANGES)}")
    if bins < 1:
        raise AnalysisError("bins must be >= 1")
    rows = slice_period(clean_ndt(ndt, "metric_histogram"), period)
    if rows.n_rows == 0:
        raise AnalysisError(f"no tests in period {period!r}")
    values = rows.column(metric).values.astype(np.float64)
    lo, hi = _RANGES[metric]
    clipped = np.clip(values, lo, hi)
    counts, edges = np.histogram(clipped, bins=bins, range=(lo, hi))
    return Table.from_dict(
        {
            "bin_low": edges[:-1],
            "bin_high": edges[1:],
            "count": counts.astype(np.int64),
            "fraction": counts / counts.sum(),
        },
        dtypes={
            "bin_low": DType.FLOAT,
            "bin_high": DType.FLOAT,
            "count": DType.INT,
            "fraction": DType.FLOAT,
        },
    )


def skewness(ndt: Table, metric: str, period: str) -> float:
    """Sample skewness (Fisher-Pearson) of one metric in one period."""
    rows = slice_period(clean_ndt(ndt, "skewness"), period)
    values = rows.column(metric).values.astype(np.float64)
    values = values[~np.isnan(values)]
    if len(values) < 3:
        raise AnalysisError("skewness needs at least 3 values")
    centered = values - values.mean()
    std = values.std()
    if std == 0:
        return 0.0
    return float(np.mean(centered**3) / std**3)
