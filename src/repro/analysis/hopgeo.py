"""Hostname-based geolocation cross-check (extension).

The paper leans on MaxMind's self-reported >68% city-level accuracy and
argues mislabels would only *weaken* its findings.  A classic independent
check is rDNS parsing (undns/DRoP): the last-mile gateway's hostname
usually names the metro it serves.  This module resolves each test's
gateway hop to a hostname-derived city and measures agreement with the
geo-DB label — quantifying the label noise the paper could only bound.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.analysis.common import clean_ndt, clean_traces
from repro.netbase.hostnames import HostnameScheme
from repro.netbase.ipaddr import IPv4Address
from repro.synth.generator import Dataset
from repro.tables import kernels
from repro.tables.join import join
from repro.tables.table import Table
from repro.util.errors import AnalysisError

__all__ = ["default_hostname_scheme", "gateway_city_agreement"]


def default_hostname_scheme(dataset: Dataset, **kwargs) -> HostnameScheme:
    """A scheme over the dataset's topology (eyeballs get their coverage)."""
    topo = dataset.topology
    cities_of_asn = {
        asn: topo.cities_of(asn) for asn in topo.eyeball_asns()
    }
    return HostnameScheme(topo.registry, cities_of_asn, **kwargs)


def _gateway_router_index(dataset: Dataset, path_text: str, client_asn: int) -> Optional[int]:
    """The router index of the gateway hop (second-to-last hop of the trace)."""
    hops = path_text.split("|")
    if len(hops) < 3:
        return None
    try:
        gateway = IPv4Address.parse(hops[-2])
    except Exception:
        return None  # unparsable hop — treat as no usable hostname signal
    iplayer = dataset.topology.iplayer
    if iplayer.as_of_ip(gateway) != client_asn:
        return None
    prefix = iplayer.infrastructure_prefix(client_asn)
    if not prefix.contains(gateway):
        return None
    return gateway.value - prefix.network.value - 1


def gateway_city_agreement(
    dataset: Dataset, scheme: Optional[HostnameScheme] = None
) -> Dict[str, float]:
    """Compare geo-DB city labels against gateway-hostname cities.

    Returns counts/fractions over all tests: ``n_compared`` (both signals
    available), ``agree`` fraction, ``geo_missing`` fraction (no geo-DB
    label), ``ptr_missing`` fraction (no usable hostname).
    """
    if scheme is None:
        scheme = default_hostname_scheme(dataset)
    ndt = clean_ndt(dataset.ndt, "gateway_city_agreement")
    traces = clean_traces(dataset.traces, "gateway_city_agreement")
    merged = join(
        ndt.select(["test_id", "city", "asn"]),
        traces.select(["test_id", "path"]),
        on="test_id",
    )
    if merged.n_rows == 0:
        raise AnalysisError("no joined tests")
    n = merged.n_rows
    cities = merged.column("city").values
    asns = merged.column("asn").values
    paths = merged.column("path").values
    # The hostname city depends only on (path, asn): resolve it once per
    # distinct pair and broadcast to rows through the group ids.
    fact = kernels.factorize([merged.column("path"), merged.column("asn")])
    group_city = np.empty(fact.n_groups, dtype=object)
    for g in range(fact.n_groups):
        i = int(fact.first_idx[g])
        index = _gateway_router_index(dataset, paths[i], int(asns[i]))
        if index is not None:
            group_city[g] = scheme.parse_city(scheme.hostname(int(asns[i]), index))
    hostname_cities = group_city[fact.gids]
    ptr_null = np.fromiter(
        (c is None for c in group_city), dtype=bool, count=fact.n_groups
    )[fact.gids]
    geo_null = merged.column("city").isnull()
    both = ~ptr_null & ~geo_null
    ptr_missing = int(ptr_null.sum())
    geo_missing = int(geo_null.sum())
    compared = int(both.sum())
    agreed = int(np.sum(hostname_cities[both] == cities[both]))
    if compared == 0:
        raise AnalysisError("no test had both a geo label and a usable hostname")
    return {
        "n_tests": float(n),
        "n_compared": float(compared),
        "agree": agreed / compared,
        "geo_missing": geo_missing / n,
        "ptr_missing": ptr_missing / n,
    }
