"""Bootstrap uncertainty for the city-level comparison (extension).

The paper's Appendix B concedes that its metric samples are not normal,
which is a caveat for Welch's t-test.  This module cross-checks Table 1
with a distribution-free percentile bootstrap on the wartime−prewar mean
difference: if a metric's 95% CI excludes zero, the change is "bootstrap
significant" regardless of distribution shape.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.city import PAPER_CITIES
from repro.analysis.common import slice_period
from repro.stats.bootstrap import bootstrap_mean_diff
from repro.stats.welch import welch_t_test
from repro.tables.expr import col
from repro.tables.table import Table
from repro.util.errors import AnalysisError
from repro.tables.schema import Cols

__all__ = ["city_bootstrap_table"]

_METRICS = (Cols.MIN_RTT, Cols.TPUT, Cols.LOSS_RATE)


def city_bootstrap_table(
    ndt: Table,
    rng: np.random.Generator,
    cities: Sequence[str] = tuple(PAPER_CITIES),
    n_resamples: int = 500,
    alpha: float = 0.05,
) -> Table:
    """Table 1 re-assessed with bootstrap CIs next to Welch verdicts.

    Output: one row per (city, metric) with the mean difference, its
    bootstrap CI, and both methods' significance calls plus whether they
    agree.
    """
    if n_resamples < 50:
        raise AnalysisError(f"n_resamples must be >= 50, got {n_resamples}")
    rows: List[dict] = []
    targets = [(c, c) for c in cities] + [("National", None)]
    for label, city in targets:
        pre = slice_period(ndt, "prewar")
        war = slice_period(ndt, "wartime")
        if city is not None:
            pre = pre.filter(col("city") == city)
            war = war.filter(col("city") == city)
        for metric in _METRICS:
            row: dict = {"city": label, "metric": metric}
            if pre.n_rows < 2 or war.n_rows < 2:
                row.update(
                    mean_diff=float("nan"), ci_low=float("nan"),
                    ci_high=float("nan"), bootstrap_sig=False,
                    welch_sig=False, agree=True,
                )
                rows.append(row)
                continue
            pre_vals = pre.column(metric).values
            war_vals = war.column(metric).values
            boot = bootstrap_mean_diff(
                pre_vals, war_vals, rng, n_resamples=n_resamples
            )
            welch = welch_t_test(pre_vals, war_vals)
            row.update(
                mean_diff=boot.estimate,
                ci_low=boot.low,
                ci_high=boot.high,
                bootstrap_sig=boot.excludes_zero(),
                welch_sig=welch.significant(alpha),
                agree=boot.excludes_zero() == welch.significant(alpha),
            )
            rows.append(row)
    return Table.from_rows(rows)


def agreement_rate(bootstrap_table: Table) -> float:
    """Fraction of (city, metric) cells where bootstrap and Welch agree."""
    flags = bootstrap_table.column("agree").to_list()
    if not flags:
        raise AnalysisError("empty bootstrap table")
    return sum(bool(f) for f in flags) / len(flags)
