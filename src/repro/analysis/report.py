"""Full-report assembly: every table and figure of the paper as text."""

from __future__ import annotations

from typing import List

import numpy as np

from repro import obs
from repro.analysis.asn_metrics import (
    PAPER_TOP10_ASNS,
    as_change_table,
    as_detail_table,
    as_pvalue_table,
    baseline_fluctuations,
)
from repro.analysis.border import border_crossing_counts, border_shift_matrix, border_totals
from repro.analysis.casestudy import inbound_weekly
from repro.analysis.city import city_welch_table, siege_city_counts
from repro.analysis.common import client_as_column
from repro.analysis.distros import metric_histogram
from repro.analysis.national import invasion_day_ordinal, national_daily
from repro.analysis.paths import path_count_table, path_performance
from repro.analysis.regional import oblast_changes, oblast_summary, zone_average_changes
from repro.synth.generator import Dataset
from repro.tables.expr import col
from repro.tables.pretty import format_table
from repro.viz.asciichart import line_chart
from repro.viz.bars import bar_chart
from repro.viz.heatmap import heatmap
from repro.tables.schema import Cols

__all__ = ["full_report"]


@obs.traced("analysis.fig2")
def _fig2(dataset: Dataset) -> str:
    parts: List[str] = ["== Figure 2: daily national means (2022; ':' marks Feb 24) =="]
    daily = national_daily(dataset.ndt, 2022)
    marker = daily.column("day").to_list().index(invasion_day_ordinal())
    for metric, fmt in (
        ("tests", ".0f"),
        (Cols.MIN_RTT, ".1f"),
        (Cols.TPUT, ".1f"),
        (Cols.LOSS_RATE, ".3f"),
    ):
        parts.append(
            line_chart(
                daily.column(metric).to_list(),
                title=f"-- {metric} --",
                marker_index=marker,
                y_fmt=fmt,
            )
        )
    baseline = national_daily(dataset.ndt, 2021)
    parts.append("-- 2021 baseline loss_rate (no corresponding change) --")
    parts.append(line_chart(baseline.column(Cols.LOSS_RATE).to_list(), y_fmt=".3f"))
    return "\n".join(parts)


@obs.traced("analysis.fig3_table4")
def _fig3_table4(dataset: Dataset) -> str:
    changes = oblast_changes(dataset.ndt, dataset.topology.gazetteer)
    ranked = changes.sort_by("d_loss_pct", descending=True)
    parts = [
        "== Figure 3: per-oblast loss-rate change (wartime vs prewar) ==",
        bar_chart(
            [
                f"{oblast} [{zone}]"
                for oblast, zone in zip(
                    ranked.column("oblast").to_list(),
                    ranked.column("zone").to_list(),
                )
            ],
            ranked.column("d_loss_pct").to_list(),
        ),
        "-- zone averages --",
        format_table(zone_average_changes(changes), float_fmt="+.1f"),
        "== Table 4: raw oblast metrics ==",
        format_table(
            oblast_summary(dataset.ndt),
            float_fmts={Cols.LOSS_RATE: ".4f"},
            float_fmt=".2f",
        ),
    ]
    return "\n".join(parts)


@obs.traced("analysis.table1")
def _table1(dataset: Dataset) -> str:
    table = city_welch_table(dataset.ndt)
    return "\n".join(
        [
            "== Table 1: city-level prewar vs wartime (Welch's t-test) ==",
            format_table(
                table,
                float_fmts={
                    "min_rtt_ms_p": ".1e",
                    "tput_mbps_p": ".1e",
                    "loss_rate_p": ".1e",
                    "loss_rate_prewar": ".4f",
                    "loss_rate_wartime": ".4f",
                },
                float_fmt=".2f",
            ),
        ]
    )


@obs.traced("analysis.fig4")
def _fig4(dataset: Dataset) -> str:
    counts = siege_city_counts(dataset.ndt)
    marker = counts.column("day").to_list().index(invasion_day_ordinal())
    parts = ["== Figure 4: daily test counts, besieged cities =="]
    for city in ("Kharkiv", "Mariupol"):
        parts.append(
            line_chart(
                counts.column(city).to_list(),
                title=f"-- {city} --",
                marker_index=marker,
                y_fmt=".0f",
            )
        )
    return "\n".join(parts)


@obs.traced("analysis.table2_fig9")
def _table2_fig9(dataset: Dataset) -> str:
    parts = [
        "== Table 2: paths and tests per connection (top-1000) ==",
        format_table(path_count_table(dataset.traces), float_fmt=".3f"),
    ]
    try:
        perf = path_performance(dataset.ndt, dataset.traces)
        parts += [
            "== Figure 9: performance change vs change in paths used ==",
            format_table(
                perf, float_fmts={"p_tput": ".1e", "p_loss": ".1e", "d_loss": ".4f"},
                float_fmt=".2f",
            ),
        ]
    except Exception as exc:  # small datasets may lack persistent connections
        parts.append(f"(Figure 9 skipped: {exc})")
    return "\n".join(parts)


@obs.traced("analysis.tables_3_5_6")
def _tables_3_5_6(dataset: Dataset) -> str:
    ndt = client_as_column(dataset.ndt, dataset.topology.iplayer)
    registry = dataset.topology.registry
    asns = list(PAPER_TOP10_ASNS)
    baseline = baseline_fluctuations(ndt)
    change = as_change_table(ndt, asns, registry, baseline)
    detail = as_detail_table(ndt, asns)
    pvals = as_pvalue_table(ndt, asns, registry)
    baseline_row = (
        f"baseline fluctuations: d_count {baseline.d_count_pct:+.2f}%  "
        f"d_tput {baseline.d_tput_pct:+.2f}%  d_rtt {baseline.d_rtt_pct:+.2f}%  "
        f"loss x{baseline.loss_ratio:.2f}"
    )
    return "\n".join(
        [
            "== Table 3: top-10 AS changes (sig = Welch p<0.05, exceeds = beyond 2021 fluctuation) ==",
            format_table(change, float_fmt="+.2f"),
            baseline_row,
            "== Table 5: AS-level details ==",
            format_table(
                detail,
                float_fmts={
                    "loss_rate_mean": ".4f",
                    "loss_rate_median": ".4f",
                    "loss_rate_std": ".4f",
                },
                float_fmt=".3f",
            ),
            "== Table 6: AS-level p-values ==",
            format_table(
                pvals,
                float_fmts={
                    "p_tput_mbps": ".3e",
                    "p_min_rtt_ms": ".3e",
                    "p_loss_rate": ".3e",
                },
            ),
        ]
    )


@obs.traced("analysis.fig5")
def _fig5(dataset: Dataset) -> str:
    counts = border_crossing_counts(dataset.traces, dataset.topology.registry)
    rows, cols, delta, absent = border_shift_matrix(counts)
    return "\n".join(
        [
            "== Figure 5: border-AS x Ukrainian-AS change in test counts ==",
            heatmap(delta, rows, cols, absent=absent),
            "-- net change per border AS --",
            format_table(border_totals(counts)),
        ]
    )


@obs.traced("analysis.fig6")
def _fig6(dataset: Dataset) -> str:
    weekly = inbound_weekly(
        dataset.ndt, dataset.traces, dataset.topology.registry
    )
    parts = ["== Figure 6: inbound traffic of AS199995 by border AS =="]
    parts.append(
        format_table(
            weekly,
            float_fmts={"share": ".2f", "median_loss": ".4f"},
            float_fmt=".2f",
        )
    )
    he = weekly.filter(col("border_asn") == 6939)
    degraded = weekly.filter(col("border_asn") == 6663)
    if he.n_rows and degraded.n_rows:
        parts.append("-- AS6939 (Hurricane Electric) weekly share --")
        parts.append(line_chart(he.column("share").to_list(), y_fmt=".2f", height=8))
        parts.append("-- AS6663 weekly median loss --")
        parts.append(
            line_chart(degraded.column("median_loss").to_list(), y_fmt=".3f", height=8)
        )
    return "\n".join(parts)


@obs.traced("analysis.figs7_8")
def _figs7_8(dataset: Dataset) -> str:
    parts = ["== Figures 7-8: metric distributions =="]
    for period in ("prewar", "wartime"):
        for metric in (Cols.MIN_RTT, Cols.TPUT, Cols.LOSS_RATE):
            hist = metric_histogram(dataset.ndt, metric, period, bins=12)
            labels = [
                f"{low:.2f}-{high:.2f}"
                for low, high in zip(
                    hist.column("bin_low").to_list(),
                    hist.column("bin_high").to_list(),
                )
            ]
            parts.append(
                bar_chart(
                    labels,
                    [f * 100 for f in hist.column("fraction").to_list()],
                    title=f"-- {metric}, {period} (% of tests) --",
                    value_fmt=".1f",
                )
            )
    return "\n".join(parts)


@obs.traced("analysis.extensions")
def _extensions(dataset: Dataset) -> str:
    from repro.analysis.events_impact import event_impact_table
    from repro.analysis.outages import detect_outage_days
    from repro.analysis.paths import path_performance_correlation
    from repro.analysis.protocol import cca_mix_stable, protocol_mix_table
    from repro.conflict import default_timeline

    parts = ["== Extensions (the paper's future-work items) =="]
    try:
        days = detect_outage_days(dataset.ndt)
        parts.append(f"outage-shaped days (count spike + tput dip): {days or 'none'}")
    except Exception as exc:
        parts.append(f"(outage detection skipped: {exc})")
    try:
        impact = event_impact_table(
            dataset.ndt, default_timeline(), dataset.topology.gazetteer
        )
        significant = impact.filter(col("significant") == True)  # noqa: E712
        parts.append("-- significant event impacts (+/-7d Welch) --")
        parts.append(
            format_table(
                significant,
                columns=["date", "event", "metric", "mean_before", "mean_after",
                         "p_value"],
                float_fmts={"p_value": ".1e"},
                float_fmt=".3f",
                max_rows=15,
            )
        )
    except Exception as exc:
        parts.append(f"(event study skipped: {exc})")
    try:
        corr = path_performance_correlation(dataset.ndt, dataset.traces)
        parts.append(
            f"rarefied Figure-9 correlation over {corr['n']} connections: "
            f"d_paths~d_tput rho={corr['tput'].coefficient:+.3f} "
            f"({corr['tput'].strength}), d_paths~d_loss "
            f"rho={corr['loss'].coefficient:+.3f} ({corr['loss'].strength})"
        )
    except Exception as exc:
        parts.append(f"(path correlation skipped: {exc})")
    try:
        stable = cca_mix_stable(dataset.ndt)
        mix = protocol_mix_table(dataset.ndt)
        bbr = {
            period: share
            for period, cca, share in zip(
                mix.column(Cols.PERIOD).to_list(),
                mix.column("cca").to_list(),
                mix.column("share").to_list(),
            )
            if cca == "bbr"
        }
        parts.append(
            f"CCA mix stable across the invasion: {stable} "
            f"(BBR share prewar {bbr.get('prewar', float('nan')):.2f}, "
            f"wartime {bbr.get('wartime', float('nan')):.2f}) — the paper's "
            "Section-3 validity condition."
        )
    except Exception as exc:
        parts.append(f"(protocol mix skipped: {exc})")
    return "\n".join(parts)


@obs.traced("analysis.full_report")
def full_report(dataset: Dataset) -> str:
    """Every reproduced table and figure, as one text document."""
    sections = [
        f"REPRODUCTION REPORT — {dataset.ndt.n_rows} NDT tests, "
        f"{dataset.traces.n_rows} traceroutes "
        f"(seed {dataset.config.seed}, scale {dataset.config.scale})",
        _fig2(dataset),
        _table1(dataset),
        _fig3_table4(dataset),
        _fig4(dataset),
        _table2_fig9(dataset),
        _tables_3_5_6(dataset),
        _fig5(dataset),
        _fig6(dataset),
        _figs7_8(dataset),
        _extensions(dataset),
    ]
    return ("\n\n" + "=" * 72 + "\n\n").join(sections)
