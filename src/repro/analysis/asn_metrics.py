"""Tables 3, 5 and 6: AS-level metric changes.

Each test is attributed to its client's AS by longest-prefix matching the
client address (the routeviews-style lookup).  The top-10 ASes by 2022 test
count are compared prewar vs wartime (Table 5: moments; Table 6: Welch
p-values; Table 3: percentage/ratio changes annotated with significance and
with whether they exceed the worst fluctuation seen across the 2021
baseline's top-10 ASes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.common import clean_ndt, require_columns, slice_period
from repro.netbase.asn import ASRegistry
from repro.stats.descriptive import percent_change, ratio_change
from repro.stats.welch import welch_t_test
from repro.tables.expr import col
from repro.tables.schema import Cols, DType
from repro.tables.table import Table
from repro.util.errors import AnalysisError

__all__ = [
    "BaselineFluctuation",
    "PAPER_TOP10_ASNS",
    "as_change_table",
    "as_detail_table",
    "as_pvalue_table",
    "baseline_fluctuations",
    "top_ases",
]

_METRICS = (Cols.TPUT, Cols.MIN_RTT, Cols.LOSS_RATE)

#: The ten ASes the paper's Tables 3/5/6 report (its "top-10 most frequently
#: occurring" over 852k traceroutes — a far larger population than one
#: simulated run, so reproduction benches compare these named rows rather
#: than re-deriving the ranking).
PAPER_TOP10_ASNS = (15895, 3255, 25229, 35297, 21488, 21497, 6876, 50581, 39608, 13307)


def _clean_with_asn(ndt_with_asn: Table, where: str) -> Table:
    """The common NDT guard, plus the AS attribution column."""
    require_columns(ndt_with_asn, (Cols.CLIENT_ASN,), where)
    return clean_ndt(ndt_with_asn, where)


def top_ases(ndt_with_asn: Table, periods: Sequence[str], n: int = 10) -> List[int]:
    """The ``n`` ASes with the most tests across the given periods."""
    if n < 1:
        raise AnalysisError("n must be >= 1")
    ndt_with_asn = _clean_with_asn(ndt_with_asn, "top_ases")
    counts: Dict[int, int] = {}
    for period in periods:
        sliced = slice_period(ndt_with_asn, period)
        asns = sliced.column(Cols.CLIENT_ASN).values
        uniq, n_tests = np.unique(asns[asns >= 0], return_counts=True)
        for asn, c in zip(uniq.tolist(), n_tests.tolist()):
            counts[asn] = counts.get(asn, 0) + c
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return [asn for asn, _count in ranked[:n]]


def _as_slice(ndt_with_asn: Table, asn: int, period: str) -> Table:
    return slice_period(ndt_with_asn, period).filter(col(Cols.CLIENT_ASN) == asn)


def as_detail_table(
    ndt_with_asn: Table, asns: Sequence[int], periods: Sequence[str] = ("prewar", "wartime")
) -> Table:
    """Table 5: mean/median/std of each metric per AS and period, plus counts."""
    ndt_with_asn = _clean_with_asn(ndt_with_asn, "as_detail_table")
    rows = []
    for asn in asns:
        for period in periods:
            sliced = _as_slice(ndt_with_asn, asn, period)
            row: dict = {"asn": asn, Cols.PERIOD: period, "count": sliced.n_rows}
            for metric in _METRICS:
                if sliced.n_rows:
                    values = sliced.column(metric).values
                    row[f"{metric}_mean"] = float(np.mean(values))
                    row[f"{metric}_median"] = float(np.median(values))
                    row[f"{metric}_std"] = (
                        float(np.std(values, ddof=1)) if sliced.n_rows > 1 else float("nan")
                    )
                else:
                    row[f"{metric}_mean"] = float("nan")
                    row[f"{metric}_median"] = float("nan")
                    row[f"{metric}_std"] = float("nan")
            rows.append(row)
    if not rows:
        raise AnalysisError("no ASes given")
    return Table.from_rows(rows)


def as_pvalue_table(ndt_with_asn: Table, asns: Sequence[int], registry: ASRegistry) -> Table:
    """Table 6: Welch p-values per AS for each metric (prewar vs wartime)."""
    ndt_with_asn = _clean_with_asn(ndt_with_asn, "as_pvalue_table")
    rows = []
    for asn in asns:
        pre = _as_slice(ndt_with_asn, asn, "prewar")
        war = _as_slice(ndt_with_asn, asn, "wartime")
        row: dict = {"asn": asn, "name": registry.name_of(asn)}
        for metric in _METRICS:
            if pre.n_rows >= 2 and war.n_rows >= 2:
                row[f"p_{metric}"] = welch_t_test(
                    pre.column(metric).values, war.column(metric).values
                ).p_value
            else:
                row[f"p_{metric}"] = float("nan")
        rows.append(row)
    if not rows:
        raise AnalysisError("no ASes given")
    return Table.from_rows(rows)


@dataclass(frozen=True)
class BaselineFluctuation:
    """Worst 'natural' change per metric across the 2021 baseline top-10.

    Matches Table 3's final row: the most negative count/throughput change,
    the largest RTT increase, and the largest loss ratio observed between
    the two baseline halves.
    """

    d_count_pct: float
    d_tput_pct: float
    d_rtt_pct: float
    loss_ratio: float


def baseline_fluctuations(ndt_with_asn: Table, n: int = 10) -> BaselineFluctuation:
    """Compute the worst baseline changes over 2021's top-``n`` ASes."""
    ndt_with_asn = _clean_with_asn(ndt_with_asn, "baseline_fluctuations")
    asns = top_ases(ndt_with_asn, ("baseline_janfeb", "baseline_febapr"), n)
    if not asns:
        raise AnalysisError("no ASes in the baseline periods")
    d_counts, d_tputs, d_rtts, loss_ratios = [], [], [], []
    for asn in asns:
        first = _as_slice(ndt_with_asn, asn, "baseline_janfeb")
        second = _as_slice(ndt_with_asn, asn, "baseline_febapr")
        if first.n_rows < 2 or second.n_rows < 2:
            continue
        d_counts.append(percent_change(first.n_rows, second.n_rows))
        d_tputs.append(
            percent_change(first[Cols.TPUT].mean(), second[Cols.TPUT].mean())
        )
        d_rtts.append(
            percent_change(first[Cols.MIN_RTT].mean(), second[Cols.MIN_RTT].mean())
        )
        loss_ratios.append(
            ratio_change(first[Cols.LOSS_RATE].mean(), second[Cols.LOSS_RATE].mean())
        )
    if not d_counts:
        raise AnalysisError("baseline periods too sparse for fluctuation estimates")
    return BaselineFluctuation(
        d_count_pct=min(d_counts),
        d_tput_pct=min(d_tputs),
        d_rtt_pct=max(d_rtts),
        loss_ratio=max(loss_ratios),
    )


def as_change_table(
    ndt_with_asn: Table,
    asns: Sequence[int],
    registry: ASRegistry,
    baseline: BaselineFluctuation,
    alpha: float = 0.05,
) -> Table:
    """Table 3: per-AS changes with significance and baseline-exceedance.

    Output columns: ``asn``, ``name``, ``d_count_pct``, ``d_tput_pct``
    (+ ``_sig``/``_exceeds``), ``d_rtt_pct`` (+ flags), ``loss_ratio``
    (+ flags).
    """
    ndt_with_asn = _clean_with_asn(ndt_with_asn, "as_change_table")
    rows = []
    for asn in asns:
        pre = _as_slice(ndt_with_asn, asn, "prewar")
        war = _as_slice(ndt_with_asn, asn, "wartime")
        if pre.n_rows < 2 or war.n_rows < 2:
            continue
        tput = welch_t_test(pre[Cols.TPUT].values, war[Cols.TPUT].values)
        rtt = welch_t_test(pre[Cols.MIN_RTT].values, war[Cols.MIN_RTT].values)
        loss = welch_t_test(pre[Cols.LOSS_RATE].values, war[Cols.LOSS_RATE].values)
        d_tput = percent_change(tput.mean1, tput.mean2)
        d_rtt = percent_change(rtt.mean1, rtt.mean2)
        loss_ratio = ratio_change(loss.mean1, loss.mean2)
        rows.append(
            {
                "asn": asn,
                "name": registry.name_of(asn),
                "d_count_pct": percent_change(pre.n_rows, war.n_rows),
                "d_tput_pct": d_tput,
                "d_tput_sig": tput.significant(alpha),
                "d_tput_exceeds": d_tput < baseline.d_tput_pct,
                "d_rtt_pct": d_rtt,
                "d_rtt_sig": rtt.significant(alpha),
                "d_rtt_exceeds": d_rtt > baseline.d_rtt_pct,
                "loss_ratio": loss_ratio,
                "loss_sig": loss.significant(alpha),
                "loss_exceeds": loss_ratio > baseline.loss_ratio,
            }
        )
    if not rows:
        raise AnalysisError("no AS had enough tests in both periods")
    return Table.from_rows(rows)
