"""Figure 5: how traffic enters Ukraine, prewar vs wartime.

For every 2022 traceroute, the first adjacency whose left AS is foreign and
right AS is Ukrainian is the *border crossing*.  Counting tests per
(border AS, Ukrainian AS) pair in each period and differencing produces the
paper's heatmap — where the shift toward Hurricane Electric and away from
Cogent shows up.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.common import clean_traces, parse_as_path, slice_period
from repro.netbase.asn import ASRegistry
from repro.tables.schema import DType
from repro.tables.table import Table
from repro.util.errors import AnalysisError

__all__ = ["border_crossing_counts", "border_shift_matrix", "border_totals"]


def _crossing(
    as_path: Tuple[int, ...], registry: ASRegistry
) -> Optional[Tuple[int, int]]:
    """First (foreign, Ukrainian) adjacency, or None."""
    for left, right in zip(as_path, as_path[1:]):
        left_as = registry.maybe_get(left)
        right_as = registry.maybe_get(right)
        if left_as is None or right_as is None:
            return None
        if not left_as.is_ukrainian and right_as.is_ukrainian:
            return (left, right)
    return None


def border_crossing_counts(traces: Table, registry: ASRegistry) -> Table:
    """Tests per (border AS, Ukrainian AS) pair, prewar vs wartime.

    Output columns: ``border_asn``, ``border_name``, ``ua_asn``,
    ``ua_name``, ``prewar``, ``wartime``, ``delta``.
    """
    traces = clean_traces(traces, "border_crossing_counts")
    counts: Dict[Tuple[int, int], Dict[str, int]] = {}
    for period in ("prewar", "wartime"):
        sliced = slice_period(traces, period)
        # Crossings depend only on the AS path: count tests per distinct
        # path over the dictionary codes, resolve each pool entry once.
        as_col = sliced.column("as_path")
        codes = as_col.codes
        per_path = np.bincount(codes[codes >= 0], minlength=len(as_col.pool))
        for ci in np.nonzero(per_path)[0]:
            crossing = _crossing(parse_as_path(as_col.pool[ci]), registry)
            if crossing is None:
                continue
            entry = counts.setdefault(crossing, {"prewar": 0, "wartime": 0})
            entry[period] += int(per_path[ci])
    if not counts:
        raise AnalysisError("no border crossings found in the traces")
    rows = []
    for (border, ua), entry in sorted(counts.items()):
        rows.append(
            {
                "border_asn": border,
                "border_name": registry.name_of(border),
                "ua_asn": ua,
                "ua_name": registry.name_of(ua),
                "prewar": entry["prewar"],
                "wartime": entry["wartime"],
                "delta": entry["wartime"] - entry["prewar"],
            }
        )
    return Table.from_rows(
        rows,
        dtypes={
            "border_asn": DType.INT,
            "border_name": DType.STR,
            "ua_asn": DType.INT,
            "ua_name": DType.STR,
            "prewar": DType.INT,
            "wartime": DType.INT,
            "delta": DType.INT,
        },
    )


def border_shift_matrix(
    crossing_counts: Table,
) -> Tuple[List[str], List[str], List[List[float]], List[List[bool]]]:
    """Figure 5's heatmap ingredients.

    Returns ``(border_labels, ua_labels, delta_matrix, absent_mask)`` where
    ``absent_mask`` marks pairs with no route in either period (the paper's
    black squares).
    """
    borders = sorted(set(crossing_counts.column("border_asn").to_list()))
    uas = sorted(set(crossing_counts.column("ua_asn").to_list()))
    b_index = {b: i for i, b in enumerate(borders)}
    u_index = {u: j for j, u in enumerate(uas)}
    delta = [[0.0 for _ in uas] for _ in borders]
    present = [[False for _ in uas] for _ in borders]
    names_b = {}
    names_u = {}
    for b_asn, b_name, u_asn, u_name, pre, war, d in zip(
        crossing_counts.column("border_asn").to_list(),
        crossing_counts.column("border_name").to_list(),
        crossing_counts.column("ua_asn").to_list(),
        crossing_counts.column("ua_name").to_list(),
        crossing_counts.column("prewar").to_list(),
        crossing_counts.column("wartime").to_list(),
        crossing_counts.column("delta").to_list(),
    ):
        i, j = b_index[b_asn], u_index[u_asn]
        delta[i][j] = float(d)
        present[i][j] = pre + war > 0
        names_b[b_asn] = b_name
        names_u[u_asn] = u_name
    border_labels = [f"{names_b[b]} ({b})" for b in borders]
    ua_labels = [f"{names_u[u]} ({u})" for u in uas]
    absent = [[not cell for cell in row] for row in present]
    return border_labels, ua_labels, delta, absent


def border_totals(crossing_counts: Table) -> Table:
    """Net change per border AS (who gained, who lost) — Figure 5's summary."""
    return (
        crossing_counts.group_by(["border_asn", "border_name"])
        .aggregate(
            {
                "prewar": ("prewar", "sum"),
                "wartime": ("wartime", "sum"),
                "delta": ("delta", "sum"),
            }
        )
        .sort_by("delta", descending=True)
    )
