"""Control-plane churn analysis (extension): what a BGP collector would see.

The paper's Section 5 infers routing change from traceroutes.  RIPE-style
collectors see it directly as update volume.  This module replays the
simulation's route selection over the study window and compares daily
route-change counts prewar vs wartime — the expectation, if the paper's
rerouting story is right, is a clear wartime churn increase over a flat
prewar level.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

import numpy as np

from repro.conflict.damage import LinkOutageSchedule
from repro.synth.generator import Dataset
from repro.tables.schema import DType
from repro.tables.table import Table
from repro.topology.bgp import RouteSelector, StickyRouter
from repro.topology.quality import LinkQualityModel
from repro.topology.rib import compute_churn
from repro.conflict.damage import EdgeDamageModel, LinkDamageProcess
from repro.util.rng import RngHub
from repro.util.timeutil import DayGrid

__all__ = ["daily_route_churn"]


def daily_route_churn(dataset: Dataset) -> Table:
    """Daily route-change counts across all (eyeball, site) pairs in 2022.

    Rebuilds the same routing stack the generator used (same seed, same
    damage processes) and replays it day by day.  Output columns: ``date``,
    ``day``, ``changes``, ``withdrawals``.
    """
    topo = dataset.topology
    cfg = dataset.config
    hub = RngHub(cfg.seed)
    intensity = dataset.intensity
    edge = EdgeDamageModel(intensity, hub.stream("edge-damage"))
    reroute_on = cfg.war_enabled and cfg.rerouting_enabled
    quality = LinkQualityModel(
        edge if reroute_on else None,
        topo.degradation_schedules if reroute_on else [],
    )
    selector = RouteSelector(topo.graph, lambda link, day: quality.quality(link, day))
    router = StickyRouter(selector, seed=cfg.seed, epoch_days=cfg.bgp_epoch_days)

    wartime = dataset.periods["wartime"]
    war_grid = DayGrid(wartime.start, wartime.end)
    if reroute_on:
        outages = LinkDamageProcess(intensity).simulate(
            topo.war_sensitive_links(), war_grid, hub.stream("outages")
        )
    else:
        outages = LinkOutageSchedule(grid=war_grid, _states={})

    down_by_day: Dict[int, FrozenSet] = {}
    for day in war_grid.days():
        down_by_day[day.ordinal] = frozenset(
            key
            for key in topo.war_sensitive_links()
            if not outages.is_up(key, day)
        )

    pairs = [
        (eyeball, site)
        for eyeball in sorted(topo.eyeball_asns())
        for site in sorted(topo.mlab_sites)
    ]
    grid = DayGrid(dataset.periods["prewar"].start, wartime.end)
    churn = compute_churn(router, pairs, grid, down_by_day)
    days = grid.days()[1:]
    return Table.from_dict(
        {
            "date": [d.iso() for d in days],
            "day": [d.ordinal for d in days],
            "changes": churn.changes,
            "withdrawals": churn.withdrawals,
        },
        dtypes={
            "date": DType.STR,
            "day": DType.INT,
            "changes": DType.INT,
            "withdrawals": DType.INT,
        },
    )


def churn_summary(churn_table: Table, dataset: Dataset) -> Dict[str, float]:
    """Mean daily changes prewar vs wartime (+ the ratio)."""
    invasion = dataset.periods["wartime"].start.ordinal
    days = np.asarray(churn_table.column("day").to_list())
    changes = np.asarray(churn_table.column("changes").to_list(), dtype=np.float64)
    pre = changes[days < invasion]
    war = changes[days >= invasion]
    pre_mean = float(pre.mean()) if len(pre) else float("nan")
    war_mean = float(war.mean()) if len(war) else float("nan")
    return {
        "prewar_daily_changes": pre_mean,
        "wartime_daily_changes": war_mean,
        "ratio": war_mean / pre_mean if pre_mean > 0 else float("inf"),
    }
