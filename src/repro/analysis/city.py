"""Table 1 and Figure 4: city-level comparisons and siege-city test counts.

Table 1 compares Kyiv, Kharkiv, Mariupol, Lviv and the national aggregate
between prewar and wartime with Welch's t-test per metric; Figure 4 plots
daily download-test counts for the besieged cities.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.common import clean_ndt, period_predicate, slice_year
from repro.stats.timeseries import daily_aggregate
from repro.stats.welch import welch_t_test
from repro.tables.expr import col
from repro.tables.schema import Cols, DType
from repro.tables.table import Table
from repro.util.errors import AnalysisError
from repro.util.timeutil import DayGrid

__all__ = ["city_welch_table", "siege_city_counts", "PAPER_CITIES"]

#: The cities the paper singles out, plus the national aggregate row.
PAPER_CITIES = ["Kyiv", "Kharkiv", "Mariupol", "Lviv"]


def _period_city_rows(ndt: Table, period: str, city: Optional[str]) -> Table:
    """One period's tests for one city (or all of them for National).

    A lazy chain: the period and city filters fuse into a single mask
    pass, and repeated targets over the same input hit the plan cache.
    """
    plan = ndt.lazy().filter(period_predicate(period))
    if city is not None:
        plan = plan.filter(col("city") == city)
    return plan.collect()


def city_welch_table(
    ndt: Table, cities: Sequence[str] = tuple(PAPER_CITIES), alpha: float = 0.05
) -> Table:
    """Table 1: per-city prewar/wartime means with Welch p-values.

    Output columns: ``city``, ``n_prewar``, ``n_wartime``, then for each
    metric its prewar mean, wartime mean, p-value and significance flag.
    The final row is the national aggregate (labelled ``"National"``).
    """
    ndt = clean_ndt(ndt, "city_welch_table")
    rows: List[dict] = []
    targets = [(c, c) for c in cities] + [("National", None)]
    for label, city in targets:
        pre = _period_city_rows(ndt, "prewar", city)
        war = _period_city_rows(ndt, "wartime", city)
        row: dict = {"city": label, "n_prewar": pre.n_rows, "n_wartime": war.n_rows}
        for metric in (Cols.MIN_RTT, Cols.TPUT, Cols.LOSS_RATE):
            pre_vals = pre.column(metric).values if pre.n_rows else np.array([])
            war_vals = war.column(metric).values if war.n_rows else np.array([])
            row[f"{metric}_prewar"] = (
                float(np.mean(pre_vals)) if len(pre_vals) else float("nan")
            )
            row[f"{metric}_wartime"] = (
                float(np.mean(war_vals)) if len(war_vals) else float("nan")
            )
            if len(pre_vals) >= 2 and len(war_vals) >= 2:
                result = welch_t_test(pre_vals, war_vals)
                row[f"{metric}_p"] = result.p_value
                row[f"{metric}_sig"] = result.significant(alpha)
            else:
                row[f"{metric}_p"] = float("nan")
                row[f"{metric}_sig"] = False
        rows.append(row)
    return Table.from_rows(rows)


def siege_city_counts(
    ndt: Table, cities: Sequence[str] = ("Kharkiv", "Mariupol"), year: int = 2022
) -> Table:
    """Figure 4: daily download-test counts for the besieged cities.

    Output: one row per day with ``date``, ``day`` and a count column per
    city.
    """
    if not cities:
        raise AnalysisError("need at least one city")
    rows = slice_year(clean_ndt(ndt, "siege_city_counts"), year)
    grid = DayGrid(f"{year}-01-01", f"{year}-04-18")
    data: dict = {
        "date": [d.iso() for d in grid.days()],
        "day": [d.ordinal for d in grid.days()],
    }
    dtypes = {"date": DType.STR, "day": DType.INT}
    for city in cities:
        city_days = (
            rows.lazy()
            .filter(col("city") == city)
            .select(["day"])
            .collect()
        )
        days = city_days.column("day").values
        data[city] = daily_aggregate(days, days * 0.0, grid, agg="count")
        dtypes[city] = DType.FLOAT
    return Table.from_dict(data, dtypes)
