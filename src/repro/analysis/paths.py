"""Table 2 and Figure 9: per-connection path diversity and its performance cost.

A *connection* is a (client IP, server IP) pair; a *path* is the traceroute
IP-address sequence serving it.  Table 2 reports, for the 1000 connections
with the most tests in each period, the average number of distinct paths
and of tests per connection.  Figure 9 (Appendix D) buckets persistent
connections by how many *more* paths they used during wartime and shows the
corresponding throughput drop and loss increase.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.analysis.common import clean_ndt, clean_traces, slice_period
from repro.analysis.periods import PERIOD_NAMES
from repro.stats.welch import welch_t_test
from repro.tables import kernels
from repro.tables.join import join
from repro.tables.schema import Cols, DType
from repro.tables.table import Table
from repro.util.errors import AnalysisError

__all__ = [
    "connection_stats",
    "path_count_table",
    "path_performance",
    "path_performance_correlation",
]

ConnKey = Tuple[str, str]


def connection_stats(traces: Table) -> Dict[ConnKey, Dict[str, int]]:
    """Per-connection test and distinct-path counts for a slice of traces.

    Vectorized over group ids; the result dict lists connections in first
    appearance order, matching the old per-row accumulation.
    """
    client_col = traces.column("client_ip")
    server_col = traces.column("server_ip")
    fact = kernels.factorize([client_col, server_col])
    tests = kernels.group_count(fact)
    n_paths = kernels.group_nunique(fact, traces.column("path"))
    client = client_col.values
    server = server_col.values
    stats: Dict[ConnKey, Dict[str, int]] = {}
    for g in np.argsort(fact.first_idx):
        i = fact.first_idx[g]
        stats[(client[i], server[i])] = {
            "tests": int(tests[g]),
            "paths": int(n_paths[g]),
        }
    return stats


def path_count_table(traces: Table, top_k: int = 1000) -> Table:
    """Table 2: average paths/connection and tests/connection per period.

    For each study period, the ``top_k`` connections by test count are
    selected and their path/test counts averaged.  Output columns:
    ``period``, ``n_connections``, ``paths_per_conn``, ``tests_per_conn``.
    """
    if top_k < 1:
        raise AnalysisError("top_k must be >= 1")
    traces = clean_traces(traces, "path_count_table")
    rows = []
    for period in PERIOD_NAMES:
        sliced = slice_period(traces, period)
        if sliced.n_rows == 0:
            raise AnalysisError(f"no traceroutes in period {period!r}")
        stats = connection_stats(sliced)
        busiest = sorted(stats.values(), key=lambda e: -e["tests"])[:top_k]
        rows.append(
            {
                Cols.PERIOD: period,
                "n_connections": len(busiest),
                "paths_per_conn": float(np.mean([e["paths"] for e in busiest])),
                "tests_per_conn": float(np.mean([e["tests"] for e in busiest])),
            }
        )
    return Table.from_rows(rows)


def _expected_distinct(path_counts: Sequence[int], depth: int) -> float:
    """Expected distinct paths when subsampling ``depth`` tests (rarefaction).

    Standard species-rarefaction estimator: with ``c_i`` tests on path
    ``i`` out of ``T`` total, the chance path ``i`` appears in a random
    ``depth``-subset is ``1 - C(T-c_i, depth)/C(T, depth)``.
    """
    total = sum(path_counts)
    if depth >= total:
        return float(len(path_counts))
    if depth < 1:
        raise AnalysisError(f"rarefaction depth must be >= 1, got {depth}")

    def log_comb(n: int, k: int) -> float:
        if k < 0 or k > n:
            return float("-inf")
        return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)

    log_denominator = log_comb(total, depth)
    expected = 0.0
    for c in path_counts:
        expected += 1.0 - math.exp(log_comb(total - c, depth) - log_denominator)
    return expected


def _seq_sum(run: np.ndarray) -> float:
    """Strict left-to-right float accumulation (pairwise-free).

    Per-connection runs are a handful of tests each, so the interpreter
    cost is negligible; what matters is reproducing the pre-vectorization
    ``total += v`` loop exactly.
    """
    total = 0.0
    for v in run:
        total += v
    return total


def _period_connection_stats(sliced: Table) -> Dict[ConnKey, dict]:
    """Per-connection stats for one period slice, vectorized.

    Returns ``{(client_ip, server_ip): {"tests", "tput", "loss", "paths"}}``
    where ``paths`` maps each distinct traceroute path to its test count.
    Connections appear in first-occurrence order and the tput/loss sums
    accumulate left to right within each run (``_seq_sum``, not numpy's
    pairwise summation), so the floats match the old ``+=`` loop bit for
    bit — Figure 9's recorded deltas and p-values depend on it.
    """
    client_col = sliced.column("client_ip")
    server_col = sliced.column("server_ip")
    fact = kernels.factorize([client_col, server_col])
    order, starts = kernels.group_sorter(fact)
    tests = kernels.group_count(fact)
    tput_sum = kernels.segment_reduce(
        sliced.column(Cols.TPUT).values, order, starts, _seq_sum
    )
    loss_sum = kernels.segment_reduce(
        sliced.column(Cols.LOSS_RATE).values, order, starts, _seq_sum
    )
    client = client_col.values
    server = server_col.values
    out: Dict[ConnKey, dict] = {}
    for g in np.argsort(fact.first_idx):
        i = fact.first_idx[g]
        out[(client[i], server[i])] = {
            "tests": int(tests[g]),
            "tput": float(tput_sum[g]),
            "loss": float(loss_sum[g]),
            "paths": {},
        }
    # per-(connection, path) test counts, in path first-appearance order
    path_col = sliced.column("path")
    fact3 = kernels.factorize([client_col, server_col, path_col])
    counts3 = kernels.group_count(fact3)
    paths = path_col.values
    for g in np.argsort(fact3.first_idx):
        i = fact3.first_idx[g]
        out[(client[i], server[i])]["paths"][paths[i]] = int(counts3[g])
    return out


def _per_connection_deltas(
    ndt: Table, traces: Table, min_tests: int, rarefy: bool = False
) -> Dict[str, list]:
    """Per-connection (Δpaths, Δtput, Δloss) for persistent connections.

    With ``rarefy=True``, the path-count difference compares *expected*
    distinct paths at equal sampling depth (the smaller period's test
    count) — removing the more-tests-see-more-paths artifact that would
    otherwise confound the correlation.
    """
    ndt = clean_ndt(ndt, "path_performance_correlation")
    traces = clean_traces(traces, "path_performance_correlation")
    merged = join(
        traces.select(["test_id", "client_ip", "server_ip", "path", "day"]),
        ndt.select(["test_id", Cols.TPUT, Cols.LOSS_RATE]),
        on="test_id",
    )
    per_conn: Dict[ConnKey, Dict[str, dict]] = {}
    for period in ("prewar", "wartime"):
        for key, stats in _period_connection_stats(
            slice_period(merged, period)
        ).items():
            per_conn.setdefault(key, {})[period] = stats
    deltas: Dict[str, list] = {"d_paths": [], "d_tput": [], "d_loss": []}
    for entry in per_conn.values():
        if "prewar" not in entry or "wartime" not in entry:
            continue
        pre, war = entry["prewar"], entry["wartime"]
        if pre["tests"] < min_tests or war["tests"] < min_tests:
            continue
        if rarefy:
            depth = min(pre["tests"], war["tests"])
            d_paths = _expected_distinct(
                list(war["paths"].values()), depth
            ) - _expected_distinct(list(pre["paths"].values()), depth)
        else:
            d_paths = len(war["paths"]) - len(pre["paths"])
        deltas["d_paths"].append(d_paths)
        deltas["d_tput"].append(
            war["tput"] / war["tests"] - pre["tput"] / pre["tests"]
        )
        deltas["d_loss"].append(
            war["loss"] / war["tests"] - pre["loss"] / pre["tests"]
        )
    return deltas


def path_performance_correlation(
    ndt: Table, traces: Table, min_tests: int = 5
) -> Dict[str, object]:
    """Quantified Figure 9: rank correlation of Δpaths with Δtput / Δloss.

    Extension of the paper's Appendix-D reading ("mild correlation"):
    Spearman's rho over persistent connections, expected mildly negative
    for throughput and mildly positive for loss.  Path counts are
    rarefied to equal sampling depth per connection so test-volume shifts
    do not masquerade as path-diversity changes.  Returns
    ``{"tput": CorrelationResult, "loss": CorrelationResult, "n": int}``.
    """
    from repro.stats.correlation import spearman

    deltas = _per_connection_deltas(ndt, traces, min_tests, rarefy=True)
    if len(deltas["d_paths"]) < 3:
        raise AnalysisError(
            "too few persistent connections for a correlation; lower min_tests"
        )
    return {
        "tput": spearman(deltas["d_paths"], deltas["d_tput"]),
        "loss": spearman(deltas["d_paths"], deltas["d_loss"]),
        "n": len(deltas["d_paths"]),
    }


def path_performance(
    ndt: Table, traces: Table, min_tests: int = 10
) -> Table:
    """Figure 9: performance change bucketed by change in paths used.

    Considers connections with at least ``min_tests`` tests in *both* the
    prewar and wartime periods (the paper's persistence filter).  For each
    bucket of Δpaths (wartime paths − prewar paths) reports the mean change
    in throughput and loss across its connections, with Welch p-values
    against the Δpaths == 0 bucket.

    Output columns: ``d_paths``, ``n_connections``, ``d_tput_mbps``,
    ``d_loss``, ``p_tput``, ``p_loss``.
    """
    ndt = clean_ndt(ndt, "path_performance")
    traces = clean_traces(traces, "path_performance")
    merged = join(
        traces.select(["test_id", "client_ip", "server_ip", "path", "day"]),
        ndt.select(["test_id", Cols.TPUT, Cols.LOSS_RATE]),
        on="test_id",
    )
    per_conn: Dict[ConnKey, Dict[str, dict]] = {}
    for period in ("prewar", "wartime"):
        for key, stats in _period_connection_stats(
            slice_period(merged, period)
        ).items():
            per_conn.setdefault(key, {})[period] = stats

    buckets: Dict[int, Dict[str, list]] = {}
    for entry in per_conn.values():
        if "prewar" not in entry or "wartime" not in entry:
            continue
        pre, war = entry["prewar"], entry["wartime"]
        if pre["tests"] < min_tests or war["tests"] < min_tests:
            continue
        d_paths = len(war["paths"]) - len(pre["paths"])
        bucket = buckets.setdefault(d_paths, {"d_tput": [], "d_loss": []})
        bucket["d_tput"].append(war["tput"] / war["tests"] - pre["tput"] / pre["tests"])
        bucket["d_loss"].append(war["loss"] / war["tests"] - pre["loss"] / pre["tests"])

    if not buckets:
        raise AnalysisError(
            f"no connection had >= {min_tests} tests in both periods; "
            "generate a larger dataset or lower min_tests"
        )
    reference = buckets.get(0)
    rows = []
    for d_paths in sorted(buckets):
        bucket = buckets[d_paths]
        row = {
            "d_paths": d_paths,
            "n_connections": len(bucket["d_tput"]),
            "d_tput_mbps": float(np.mean(bucket["d_tput"])),
            "d_loss": float(np.mean(bucket["d_loss"])),
            "p_tput": float("nan"),
            "p_loss": float("nan"),
        }
        if (
            reference is not None
            and d_paths != 0
            and len(bucket["d_tput"]) >= 2
            and len(reference["d_tput"]) >= 2
        ):
            row["p_tput"] = welch_t_test(reference["d_tput"], bucket["d_tput"]).p_value
            row["p_loss"] = welch_t_test(reference["d_loss"], bucket["d_loss"]).p_value
        rows.append(row)
    return Table.from_rows(
        rows,
        dtypes={
            "d_paths": DType.INT,
            "n_connections": DType.INT,
            "d_tput_mbps": DType.FLOAT,
            "d_loss": DType.FLOAT,
            "p_tput": DType.FLOAT,
            "p_loss": DType.FLOAT,
        },
    )
