"""Event-study analysis around the war timeline (extension).

The paper investigates "potential causal events corresponding to dates
where we observe significant metric changes" but "largely leave[s]
date-level analysis to future work".  This module is that analysis: for
each dated war event, compare the affected population's metrics in a short
window before vs after the event with Welch's t-test.

Scope resolution per event:

* events with ``cities`` compare tests geo-labeled to those cities;
* zone-scoped events compare tests from cities in those zones;
* the national OUTAGE event compares all tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.common import clean_ndt, require_columns
from repro.conflict.events import EventKind, WarEvent
from repro.geo.gazetteer import Gazetteer
from repro.stats.welch import welch_t_test
from repro.tables.expr import col
from repro.tables.table import Table
from repro.util.errors import AnalysisError
from repro.util.timeutil import Day
from repro.tables.schema import Cols

__all__ = ["event_impact_table"]

_METRICS = (Cols.MIN_RTT, Cols.TPUT, Cols.LOSS_RATE)


def _scope_cities(event: WarEvent, gazetteer: Gazetteer) -> Optional[List[str]]:
    """Cities an event applies to (None = national scope)."""
    if event.cities:
        return sorted(event.cities)
    zones = event.zones
    if not zones or len(zones) >= 5:
        return None
    return sorted(
        c.name
        for c in gazetteer.cities()
        if gazetteer.oblast(c.oblast).zone in zones
    )


def event_impact_table(
    ndt: Table,
    events: Sequence[WarEvent],
    gazetteer: Gazetteer,
    window_days: int = 7,
    alpha: float = 0.05,
) -> Table:
    """Before/after comparison for each event.

    Output: one row per (event, metric) with the windowed means, Welch
    p-value, significance flag and sample sizes.  Events whose windows
    contain too few tests on either side are reported with NaN p-values.
    """
    if window_days < 2:
        raise AnalysisError(f"window_days must be >= 2, got {window_days}")
    require_columns(ndt, ("city",), "event_impact_table")
    ndt = clean_ndt(ndt, "event_impact_table")
    rows = []
    for event in events:
        cities = _scope_cities(event, gazetteer)
        scoped = ndt
        if cities is not None:
            scoped = ndt.filter(col("city").isin(cities))
        if event.kind is EventKind.OUTAGE:
            # A one-day outage would wash out of a week-long window: compare
            # the event day itself against the surrounding days.
            before = scoped.filter(
                col("day").between(
                    event.day.plus(-window_days).ordinal, event.day.plus(-1).ordinal
                )
            )
            after = scoped.filter(col("day") == event.day.ordinal)
        else:
            before = scoped.filter(
                col("day").between(
                    event.day.plus(-window_days).ordinal, event.day.plus(-1).ordinal
                )
            )
            after = scoped.filter(
                col("day").between(
                    event.day.ordinal, event.day.plus(window_days - 1).ordinal
                )
            )
        for metric in _METRICS:
            row = {
                "date": event.day.iso(),
                "event": event.name,
                "scope": "national" if cities is None else ",".join(cities),
                "metric": metric,
                "n_before": before.n_rows,
                "n_after": after.n_rows,
                "mean_before": float("nan"),
                "mean_after": float("nan"),
                "p_value": float("nan"),
                "significant": False,
            }
            if before.n_rows >= 2 and after.n_rows >= 2:
                b = before.column(metric).values
                a = after.column(metric).values
                row["mean_before"] = float(np.mean(b))
                row["mean_after"] = float(np.mean(a))
                try:
                    result = welch_t_test(b, a)
                except ValueError:
                    pass  # degenerate windows keep NaN p-values
                else:
                    row["p_value"] = result.p_value
                    row["significant"] = result.significant(alpha)
            rows.append(row)
    if not rows:
        raise AnalysisError("no events given")
    return Table.from_rows(rows)
