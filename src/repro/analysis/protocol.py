"""Protocol-mix validity checks (paper §3's measurement-stability argument).

The paper asserts NDT's "congestion control algorithm was stable in the
period from 2021-2022 we studied", so performance changes cannot be
protocol artifacts.  These functions verify the same property on generated
data and quantify how each CCA population moved — the check a careful
reviewer would run.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.common import clean_ndt, require_columns, slice_period
from repro.analysis.periods import PERIOD_NAMES
from repro.tables import kernels
from repro.tables.expr import col
from repro.tables.table import Table
from repro.util.errors import AnalysisError
from repro.tables.schema import Cols

__all__ = ["cca_mix_stable", "metric_by_cca", "protocol_mix_table"]


def protocol_mix_table(ndt: Table) -> Table:
    """Share of each (protocol, CCA) combination per study period."""
    require_columns(ndt, ("protocol", "cca"), "protocol_mix_table")
    ndt = clean_ndt(ndt, "protocol_mix_table")
    rows = []
    for period in PERIOD_NAMES:
        sliced = slice_period(ndt, period)
        if sliced.n_rows == 0:
            raise AnalysisError(f"no tests in period {period!r}")
        # factorize orders groups by (protocol, cca) ascending — the same
        # order as sorting the combo dict the old loop built
        fact = kernels.factorize(
            [sliced.column("protocol"), sliced.column("cca")]
        )
        counts = kernels.group_count(fact)
        protocols = sliced.column("protocol").values
        ccas = sliced.column("cca").values
        for g in range(fact.n_groups):
            i = fact.first_idx[g]
            count = int(counts[g])
            rows.append(
                {
                    Cols.PERIOD: period,
                    "protocol": protocols[i],
                    "cca": ccas[i],
                    "tests": count,
                    "share": count / sliced.n_rows,
                }
            )
    return Table.from_rows(rows)


def cca_mix_stable(ndt: Table, tolerance: float = 0.05) -> bool:
    """Whether the BBR share moved less than ``tolerance`` prewar→wartime.

    This is the paper's validity condition: if the CCA mix had jumped at
    the invasion, metric changes could be protocol artifacts.
    """
    mix = protocol_mix_table(ndt)
    shares = {}
    for period, cca, share in zip(
        mix.column(Cols.PERIOD).to_list(),
        mix.column("cca").to_list(),
        mix.column("share").to_list(),
    ):
        if cca == "bbr":
            shares[period] = share
    if "prewar" not in shares or "wartime" not in shares:
        raise AnalysisError("missing BBR share in a study period")
    return abs(shares["wartime"] - shares["prewar"]) < tolerance


def metric_by_cca(ndt: Table, metric: str, period: str) -> Table:
    """Mean of one metric per CCA within a period (with counts)."""
    require_columns(ndt, ("cca", metric), "metric_by_cca")
    sliced = slice_period(clean_ndt(ndt, "metric_by_cca"), period)
    out = sliced.group_by("cca").aggregate(
        {"mean": (metric, "mean"), "tests": (metric, "count")}
    )
    return out
