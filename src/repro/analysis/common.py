"""Shared helpers for the analysis modules."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.analysis.periods import study_periods
from repro.netbase.ipaddr import IPv4Address
from repro.obs.memory import record_table_memory
from repro.tables.column import Column
from repro.tables.expr import col
from repro.tables.schema import Cols, DType
from repro.tables.table import Table
from repro.topology.iplayer import IpLayer
from repro.util.errors import AnalysisError
from repro.util.timeutil import Period

__all__ = [
    "METRICS",
    "clean_ndt",
    "clean_traces",
    "client_as_column",
    "parse_as_path",
    "period_predicate",
    "require_columns",
    "slice_period",
    "slice_year",
    "with_periods",
    "year_predicate",
]

#: The three NDT metrics with their table columns and degradation direction.
#: ``worse`` is the comparison that means degradation (RTT/loss grow, tput falls).
METRICS = {
    Cols.MIN_RTT: {"label": "MinRTT (ms)", "worse": "increase"},
    Cols.TPUT: {"label": "MeanTput (Mbps)", "worse": "decrease"},
    Cols.LOSS_RATE: {"label": "LossRate", "worse": "increase"},
}


def require_columns(table: Table, names, where: str) -> None:
    """Raise a typed AnalysisError (not KeyError) for missing columns."""
    missing = [n for n in names if n not in table]
    if missing:
        raise AnalysisError(
            f"{where}: table lacks columns {missing}; has {table.column_names}"
        )


def _window_mask(days: np.ndarray) -> np.ndarray:
    ok = np.zeros(len(days), dtype=bool)
    for p in study_periods().values():
        ok |= (days >= p.start.ordinal) & (days <= p.end.ordinal)
    return ok


def _first_occurrence_mask(values: np.ndarray) -> np.ndarray:
    """True at the first appearance of each value (duplicate-UUID dedup)."""
    _, first_index = np.unique(values, return_index=True)
    keep = np.zeros(len(values), dtype=bool)
    keep[first_index] = True
    return keep


def clean_ndt(ndt: Table, where: str = "analysis") -> Table:
    """Drop NDT rows no analysis can use; raise AnalysisError if none remain.

    Real extracts carry NULL/negative metrics and clock-skewed timestamps.
    Every analysis entry point funnels its input through this guard so dirty
    rows are dropped up front — never propagated as silent NaN and never
    crashed on with an untyped IndexError/KeyError.  Clean tables pass
    through unchanged (same rows, same order), so results on clean data are
    identical with or without the guard.
    """
    require_columns(
        ndt, ("test_id", "day", Cols.TPUT, Cols.MIN_RTT, Cols.LOSS_RATE), where
    )
    tput = ndt.column(Cols.TPUT).values
    rtt = ndt.column(Cols.MIN_RTT).values
    loss = ndt.column(Cols.LOSS_RATE).values
    days = ndt.column("day").values
    keep = (
        np.isfinite(tput) & (tput > 0)
        & np.isfinite(rtt) & (rtt > 0)
        & np.isfinite(loss) & (loss >= 0.0) & (loss <= 1.0)
        & _window_mask(days)
        & _first_occurrence_mask(ndt.column("test_id").values)
    )
    if keep.all():
        return ndt
    out = ndt.filter(keep)
    if out.n_rows == 0:
        raise AnalysisError(f"{where}: no usable NDT rows after dropping dirty data")
    return out


def clean_traces(traces: Table, where: str = "analysis") -> Table:
    """Drop traceroute rows with truncated/impossible records.

    A usable trace has a non-empty hop list whose length matches ``n_hops``
    (truncated scamper output leaves them inconsistent), a non-empty AS
    path, and a timestamp inside a study window.
    """
    require_columns(traces, ("test_id", "day", "path", "as_path", "n_hops"), where)
    path_col = traces.column("path")
    as_col = traces.column("as_path")
    n_hops = traces.column("n_hops").values
    days = traces.column("day").values
    # hop counts and emptiness are computed once per distinct string in the
    # dictionary pool, then broadcast through the codes (None -> last slot)
    pool_len = np.zeros(len(path_col.pool) + 1, dtype=np.int64)
    for i, p in enumerate(path_col.pool):
        pool_len[i] = len(p.split("|")) if p else 0
    lengths = pool_len[path_col.codes]
    pool_has = np.zeros(len(as_col.pool) + 1, dtype=bool)
    for i, a in enumerate(as_col.pool):
        pool_has[i] = bool(a)
    has_as = pool_has[as_col.codes]
    keep = (
        (lengths > 0) & (lengths == n_hops) & has_as & _window_mask(days)
        & _first_occurrence_mask(traces.column("test_id").values)
    )
    if keep.all():
        return traces
    out = traces.filter(keep)
    if out.n_rows == 0:
        raise AnalysisError(f"{where}: no usable traceroute rows after cleaning")
    return out


def period_predicate(period_name: str):
    """The day-window predicate of one named study period.

    Shared by the eager :func:`slice_period` and the lazy analysis chains,
    so both paths filter on structurally identical expressions (which is
    also what lets the plan cache recognize repeated period slices).
    """
    periods = study_periods()
    if period_name not in periods:
        raise AnalysisError(
            f"unknown period {period_name!r}; choose from {sorted(periods)}"
        )
    p: Period = periods[period_name]
    return col("day").between(p.start.ordinal, p.end.ordinal)


def year_predicate(year: int):
    """Predicate selecting one calendar year (column ``year``)."""
    return col("year") == year


def slice_period(table: Table, period_name: str) -> Table:
    """Rows of a table (NDT or traceroute) within one named study window."""
    return table.filter(period_predicate(period_name))


def slice_year(table: Table, year: int) -> Table:
    """Rows belonging to one calendar year (column ``year``)."""
    return table.filter(year_predicate(year))


def with_periods(table: Table) -> Table:
    """Add a ``period`` column naming the study window of each row."""
    periods = study_periods()
    days = table.column("day").values
    pool = sorted(periods)
    code_of = {name: i for i, name in enumerate(pool)}
    codes = np.full(len(days), -1, dtype=np.int32)
    for name, p in periods.items():
        mask = (days >= p.start.ordinal) & (days <= p.end.ordinal)
        codes[mask] = code_of[name]
    if (codes < 0).any():
        raise AnalysisError("some rows fall outside every study period")
    period_col = Column.from_codes(
        Cols.PERIOD, codes, np.array(pool, dtype=object)
    )
    return table.with_column(Cols.PERIOD, period_col)


def client_as_column(ndt: Table, iplayer: IpLayer) -> Table:
    """Attribute each test to its client's AS via IP→AS longest-prefix match.

    This is the paper's routeviews-style attribution — the analysis derives
    the AS from the address, it does not trust generator metadata.
    """
    ip_col = ndt.column("client_ip")
    # longest-prefix match once per distinct client IP, broadcast via codes
    lut = np.empty(len(ip_col.pool) + 1, dtype=np.int64)
    for i, ip_text in enumerate(ip_col.pool):
        asn = iplayer.as_of_ip(IPv4Address.parse(ip_text))
        lut[i] = -1 if asn is None else asn
    lut[-1] = -1
    asns = lut[ip_col.codes]
    out = ndt.with_column(Cols.CLIENT_ASN, Column(Cols.CLIENT_ASN, asns, DType.INT))
    record_table_memory("analysis.ndt_with_asn", out)
    return out


def parse_as_path(text: str) -> Tuple[int, ...]:
    """Parse a pipe-joined AS path column value back into ASNs."""
    if not text:
        raise AnalysisError("empty AS path")
    try:
        return tuple(int(part) for part in text.split("|"))
    except ValueError as exc:
        raise AnalysisError(f"malformed AS path {text!r}") from exc


def unique_as_paths(traces: Table) -> List[Tuple[int, ...]]:
    """Distinct AS-level paths in a traceroute table."""
    return [
        parse_as_path(t)
        for t in traces.column("as_path").unique()
        if t is not None
    ]
