"""Shared helpers for the analysis modules."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.analysis.periods import study_periods
from repro.netbase.ipaddr import IPv4Address
from repro.tables.column import Column
from repro.tables.expr import col
from repro.tables.schema import DType
from repro.tables.table import Table
from repro.topology.iplayer import IpLayer
from repro.util.errors import AnalysisError
from repro.util.timeutil import Period

__all__ = [
    "METRICS",
    "client_as_column",
    "parse_as_path",
    "slice_period",
    "slice_year",
    "with_periods",
]

#: The three NDT metrics with their table columns and degradation direction.
#: ``worse`` is the comparison that means degradation (RTT/loss grow, tput falls).
METRICS = {
    "min_rtt_ms": {"label": "MinRTT (ms)", "worse": "increase"},
    "tput_mbps": {"label": "MeanTput (Mbps)", "worse": "decrease"},
    "loss_rate": {"label": "LossRate", "worse": "increase"},
}


def slice_period(table: Table, period_name: str) -> Table:
    """Rows of a table (NDT or traceroute) within one named study window."""
    periods = study_periods()
    if period_name not in periods:
        raise AnalysisError(
            f"unknown period {period_name!r}; choose from {sorted(periods)}"
        )
    p: Period = periods[period_name]
    return table.filter(col("day").between(p.start.ordinal, p.end.ordinal))


def slice_year(table: Table, year: int) -> Table:
    """Rows belonging to one calendar year (column ``year``)."""
    return table.filter(col("year") == year)


def with_periods(table: Table) -> Table:
    """Add a ``period`` column naming the study window of each row."""
    periods = study_periods()
    days = table.column("day").values
    names = np.empty(len(days), dtype=object)
    for name, p in periods.items():
        mask = (days >= p.start.ordinal) & (days <= p.end.ordinal)
        names[mask] = name
    if any(n is None for n in names):
        raise AnalysisError("some rows fall outside every study period")
    return table.with_column("period", names, DType.STR)


def client_as_column(ndt: Table, iplayer: IpLayer) -> Table:
    """Attribute each test to its client's AS via IP→AS longest-prefix match.

    This is the paper's routeviews-style attribution — the analysis derives
    the AS from the address, it does not trust generator metadata.
    """
    asns = []
    for ip_text in ndt.column("client_ip").values:
        asn = iplayer.as_of_ip(IPv4Address.parse(ip_text))
        asns.append(-1 if asn is None else asn)
    return ndt.with_column("client_asn", Column("client_asn", asns, DType.INT))


def parse_as_path(text: str) -> Tuple[int, ...]:
    """Parse a pipe-joined AS path column value back into ASNs."""
    if not text:
        raise AnalysisError("empty AS path")
    try:
        return tuple(int(part) for part in text.split("|"))
    except ValueError as exc:
        raise AnalysisError(f"malformed AS path {text!r}") from exc


def unique_as_paths(traces: Table) -> List[Tuple[int, ...]]:
    """Distinct AS-level paths in a traceroute table."""
    return [parse_as_path(t) for t in sorted(set(traces.column("as_path").to_list()))]
