"""Figure 2: daily national means of each NDT metric, 2022 vs 2021 baseline.

For each metric the paper plots the daily mean over all NDT download tests
from Ukraine, with the invasion marked.  The same series for 2021 shows the
changes are absent in the baseline.
"""

from __future__ import annotations

from repro.analysis.common import clean_ndt, year_predicate
from repro.tables.schema import Cols, DType
from repro.tables.table import Table
from repro.stats.timeseries import daily_aggregate
from repro.util.errors import AnalysisError
from repro.util.timeutil import Day, DayGrid

__all__ = ["national_daily"]


def national_daily(ndt: Table, year: int) -> Table:
    """Daily test count and mean metrics for one year's study window.

    Returns a table with one row per calendar day from Jan 1 to Apr 18 of
    ``year``: ``date``, ``day``, ``tests``, ``min_rtt_ms``, ``tput_mbps``,
    ``loss_rate``.  Days without tests hold NaN metric means (and 0 tests),
    mirroring gaps in the paper's plots.
    """
    # One lazy chain: the year filter and the projection onto the four
    # columns the daily series read are pushed together, so only those
    # columns are materialized for the sliced year.
    rows = (
        clean_ndt(ndt, "national_daily")
        .lazy()
        .filter(year_predicate(year))
        .select(["day", Cols.MIN_RTT, Cols.TPUT, Cols.LOSS_RATE])
        .collect()
    )
    if rows.n_rows == 0:
        raise AnalysisError(f"no tests in year {year}")
    grid = DayGrid(f"{year}-01-01", f"{year}-04-18")
    days = rows.column("day").values
    out = {
        "date": [d.iso() for d in grid.days()],
        "day": [d.ordinal for d in grid.days()],
        "tests": daily_aggregate(days, days * 0.0, grid, agg="count"),
        Cols.MIN_RTT: daily_aggregate(
            days, rows.column(Cols.MIN_RTT).values, grid, agg="mean"
        ),
        Cols.TPUT: daily_aggregate(
            days, rows.column(Cols.TPUT).values, grid, agg="mean"
        ),
        Cols.LOSS_RATE: daily_aggregate(
            days, rows.column(Cols.LOSS_RATE).values, grid, agg="mean"
        ),
    }
    table = Table.from_dict(
        out,
        dtypes={
            "date": DType.STR,
            "day": DType.INT,
            "tests": DType.FLOAT,
            Cols.MIN_RTT: DType.FLOAT,
            Cols.TPUT: DType.FLOAT,
            Cols.LOSS_RATE: DType.FLOAT,
        },
    )
    return table


def invasion_day_ordinal() -> int:
    """The ordinal of Feb 24, 2022 (the dotted line in Figure 2)."""
    return Day.of("2022-02-24").ordinal
