"""Day-level anomaly detection on the national series (extension).

The paper spots the March-10 Ukrtelecom/Triolan outage by eye ("a 50%
decrease with a corresponding spike in test counts near March 10") and
leaves systematic "date-level analysis to future work".  This module does
that future work: a robust z-score detector over the daily national series
that flags outage-shaped days — simultaneous test-count spike and
throughput dip — and generic single-metric anomalies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.analysis.common import require_columns
from repro.analysis.national import national_daily
from repro.tables.table import Table
from repro.util.errors import AnalysisError
from repro.util.timeutil import Day
from repro.tables.schema import Cols

__all__ = ["Anomaly", "detect_metric_anomalies", "detect_outage_days", "robust_zscores"]


@dataclass(frozen=True)
class Anomaly:
    """One flagged day."""

    date: str
    metric: str
    value: float
    zscore: float
    direction: str  # "spike" | "dip"


def robust_zscores(series: Sequence[float], window: int = 15) -> np.ndarray:
    """Rolling-median/MAD z-scores (robust to the war's level shifts).

    Each day is scored against the median and MAD of the surrounding
    ``window`` days (exclusive of itself), so a step change in level (the
    invasion) does not light up every following day.
    """
    if window < 5:
        raise AnalysisError(f"window must be >= 5, got {window}")
    arr = np.asarray(series, dtype=np.float64)
    n = len(arr)
    scores = np.zeros(n)
    half = window // 2
    for i in range(n):
        lo, hi = max(0, i - half), min(n, i + half + 1)
        neighborhood = np.delete(arr[lo:hi], i - lo)
        neighborhood = neighborhood[~np.isnan(neighborhood)]
        if len(neighborhood) < 4 or np.isnan(arr[i]):
            scores[i] = 0.0
            continue
        median = np.median(neighborhood)
        mad = np.median(np.abs(neighborhood - median))
        scale = 1.4826 * mad  # MAD -> sigma under normality
        if scale == 0:
            scores[i] = 0.0
        else:
            scores[i] = (arr[i] - median) / scale
    return scores


def detect_metric_anomalies(
    daily: Table, metric: str, threshold: float = 3.5, window: int = 15
) -> List[Anomaly]:
    """Days where one metric's robust z-score exceeds ``threshold``."""
    require_columns(daily, ("date", metric), "detect_metric_anomalies")
    values = np.asarray(daily.column(metric).to_list(), dtype=np.float64)
    dates = daily.column("date").to_list()
    scores = robust_zscores(values, window=window)
    out = []
    for date, value, score in zip(dates, values, scores):
        if abs(score) >= threshold:
            out.append(
                Anomaly(
                    date=date,
                    metric=metric,
                    value=float(value),
                    zscore=float(score),
                    direction="spike" if score > 0 else "dip",
                )
            )
    return out


def detect_outage_days(
    ndt: Table,
    year: int = 2022,
    count_threshold: float = 2.0,
    tput_threshold: float = 2.0,
) -> List[str]:
    """Days with the outage signature: test-count spike AND throughput dip.

    The paper's March-10 reading — users noticing the outage re-test en
    masse while the working paths deliver less — is exactly this joint
    condition; requiring both keeps ordinary busy days and ordinary slow
    days out.
    """
    daily = national_daily(ndt, year)
    count_scores = robust_zscores(
        np.asarray(daily.column("tests").to_list(), dtype=np.float64)
    )
    tput_scores = robust_zscores(
        np.asarray(daily.column(Cols.TPUT).to_list(), dtype=np.float64)
    )
    dates = daily.column("date").to_list()
    return [
        date
        for date, cs, ts in zip(dates, count_scores, tput_scores)
        if cs >= count_threshold and ts <= -tput_threshold
    ]
