"""Figure 6: the AS 199995 case study.

Three foreign border ASes feed Ukrainian AS 199995.  The paper shows that
as one of them (AS 6663) degrades — its weekly median loss and RTT rise —
the share of tests entering through it collapses and Hurricane Electric
(AS 6939) takes over.  This module recomputes the three panels: weekly
inbound share per border AS, weekly median loss, and weekly median RTT of
the tests entering through each.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.common import clean_ndt, clean_traces, parse_as_path
from repro.netbase.asn import ASRegistry
from repro.tables.expr import col
from repro.tables.join import join
from repro.tables.schema import Cols, DType
from repro.tables.table import Table
from repro.util.errors import AnalysisError
from repro.util.timeutil import Day

__all__ = ["inbound_weekly"]


def _entry_border(path: Tuple[int, ...], ua_asn: int, registry: ASRegistry) -> Optional[int]:
    """The foreign AS immediately before ``ua_asn`` on the path, if any."""
    for left, right in zip(path, path[1:]):
        if right != ua_asn:
            continue
        left_as = registry.maybe_get(left)
        if left_as is not None and not left_as.is_ukrainian:
            return left
    return None


def inbound_weekly(
    ndt: Table,
    traces: Table,
    registry: ASRegistry,
    ua_asn: int = 199995,
    year: int = 2022,
) -> Table:
    """Weekly inbound composition and performance for one Ukrainian AS.

    Output: one row per (ISO week, border AS) with columns ``week``
    (Monday's ISO date), ``border_asn``, ``border_name``, ``tests``,
    ``share`` (of that week's tests entering ``ua_asn``), ``median_loss``,
    ``median_rtt_ms``.
    """
    ndt = clean_ndt(ndt, "inbound_weekly")
    traces = clean_traces(traces, "inbound_weekly")
    merged = join(
        traces.select(["test_id", "as_path", "day", "year"]),
        ndt.select(["test_id", Cols.LOSS_RATE, Cols.MIN_RTT]),
        on="test_id",
    ).filter(col("year") == year)
    if merged.n_rows == 0:
        raise AnalysisError(f"no joined tests in {year}")

    # Resolve each distinct AS path once (over the dictionary pool), then
    # broadcast to rows through the codes.
    as_col = merged.column("as_path")
    border_lut = np.full(len(as_col.pool) + 1, -1, dtype=np.int64)
    for ci, text in enumerate(as_col.pool):
        border = _entry_border(parse_as_path(text), ua_asn, registry)
        if border is not None:
            border_lut[ci] = border
    borders = border_lut[as_col.codes]

    # Week starts once per distinct day.
    days = merged.column("day").values.astype(np.int64)
    uniq_days, day_inv = np.unique(days, return_inverse=True)
    monday_of = np.array(
        [Day(int(d)).week_start().ordinal for d in uniq_days], dtype=np.int64
    )
    mondays = monday_of[day_inv]

    keep = borders >= 0
    if not keep.any():
        raise AnalysisError(f"no tests enter AS{ua_asn} in {year}")
    borders = borders[keep]
    mondays = mondays[keep]
    loss = merged.column(Cols.LOSS_RATE).values[keep]
    rtt = merged.column(Cols.MIN_RTT).values[keep]

    # Group by (week, border AS): one stable lexsort, then run boundaries.
    order = np.lexsort((borders, mondays))
    m_sorted = mondays[order]
    b_sorted = borders[order]
    boundary = np.empty(len(order), dtype=bool)
    boundary[0] = True
    boundary[1:] = (m_sorted[1:] != m_sorted[:-1]) | (b_sorted[1:] != b_sorted[:-1])
    starts = np.nonzero(boundary)[0]
    ends = np.append(starts[1:], len(order))
    week_totals: Dict[int, int] = {}
    for s, e in zip(starts, ends):
        monday = int(m_sorted[s])
        week_totals[monday] = week_totals.get(monday, 0) + int(e - s)

    rows: List[dict] = []
    for s, e in zip(starts, ends):
        monday = int(m_sorted[s])
        border = int(b_sorted[s])
        n = int(e - s)
        seg = order[s:e]
        rows.append(
            {
                "week": Day(monday).iso(),
                "border_asn": border,
                "border_name": registry.name_of(border),
                "tests": n,
                "share": n / week_totals[monday],
                "median_loss": float(np.median(loss[seg])),
                "median_rtt_ms": float(np.median(rtt[seg])),
            }
        )
    return Table.from_rows(
        rows,
        dtypes={
            "week": DType.STR,
            "border_asn": DType.INT,
            "border_name": DType.STR,
            "tests": DType.INT,
            "share": DType.FLOAT,
            "median_loss": DType.FLOAT,
            "median_rtt_ms": DType.FLOAT,
        },
    )
