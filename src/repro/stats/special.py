"""Special functions needed for t-test p-values.

Only the regularized incomplete beta function is required (the Student-t CDF
reduces to it).  The implementation is the standard continued-fraction
evaluation (modified Lentz), accurate to ~1e-12 over the parameter ranges a
t-test produces.
"""

from __future__ import annotations

import math

from repro.util.errors import NumericsError

__all__ = ["log_beta", "regularized_incomplete_beta"]

_MAX_ITER = 500
_EPS = 3e-14
_FPMIN = 1e-300


def log_beta(a: float, b: float) -> float:
    """log B(a, b) = lgamma(a) + lgamma(b) - lgamma(a + b)."""
    if a <= 0 or b <= 0:
        raise ValueError(f"log_beta requires a, b > 0; got a={a}, b={b}")
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Numerical Recipes betacf)."""
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _FPMIN:
        d = _FPMIN
    d = 1.0 / d
    h = d
    for m in range(1, _MAX_ITER + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _FPMIN:
            d = _FPMIN
        c = 1.0 + aa / c
        if abs(c) < _FPMIN:
            c = _FPMIN
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _FPMIN:
            d = _FPMIN
        c = 1.0 + aa / c
        if abs(c) < _FPMIN:
            c = _FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            return h
    raise NumericsError(
        f"incomplete beta continued fraction did not converge (a={a}, b={b}, x={x})"
    )


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """I_x(a, b): the regularized incomplete beta function.

    Satisfies I_0 = 0, I_1 = 1, I_x(a,b) = 1 - I_{1-x}(b,a).
    """
    if a <= 0 or b <= 0:
        raise ValueError(f"requires a, b > 0; got a={a}, b={b}")
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1]; got {x}")
    if x == 0.0:
        return 0.0
    if x >= 1.0:  # validated to [0, 1]; >= keeps the boundary exact
        return 1.0
    ln_front = (
        a * math.log(x) + b * math.log1p(-x) - log_beta(a, b)
    )
    front = math.exp(ln_front)
    # Use the continued fraction directly when it converges fast, i.e. when
    # x < (a + 1) / (a + b + 2); otherwise use the symmetry relation.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b
