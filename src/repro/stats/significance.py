"""Significance annotation helpers (the paper's '*' and underline markup).

Table 1 marks Welch-significant changes with ``*``; Table 3 additionally
underlines changes exceeding the worst 2021 baseline fluctuation.  These
helpers produce that markup for text reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stats.welch import WelchResult

__all__ = ["SignificanceResult", "significance_label", "exceeds_baseline"]


@dataclass(frozen=True)
class SignificanceResult:
    """A change annotated with its statistical assessment."""

    value: float
    p_value: float
    significant: bool
    exceeds_baseline: bool = False

    def markup(self, fmt: str = "+.2f", suffix: str = "%") -> str:
        """Render like the paper: underline → wrapped in _ _, star appended."""
        text = f"{format(self.value, fmt)}{suffix}"
        if self.exceeds_baseline:
            text = f"_{text}_"
        if self.significant:
            text = f"{text}*"
        return text


def significance_label(result: WelchResult, alpha: float = 0.05) -> str:
    """The paper's footnote convention: '*' if p < alpha, '' otherwise."""
    return "*" if result.significant(alpha) else ""


def exceeds_baseline(change: float, baseline_worst: float, direction: str) -> bool:
    """Whether a change exceeds the worst baseline fluctuation (Table 3).

    Parameters
    ----------
    direction:
        ``"increase"`` — degradation shows as growth (RTT, loss):
        exceeds when ``change > baseline_worst``.
        ``"decrease"`` — degradation shows as decline (throughput, counts):
        exceeds when ``change < baseline_worst``.
    """
    if direction == "increase":
        return change > baseline_worst
    if direction == "decrease":
        return change < baseline_worst
    raise ValueError(f"direction must be 'increase' or 'decrease', got {direction!r}")
