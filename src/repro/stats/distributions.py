"""Samplers parameterized by observable moments.

The calibration tables give per-city/AS *means and standard deviations* of
throughput, RTT and loss (Tables 1, 4, 5).  The generator needs samplers that
hit those moments while staying in each metric's natural support: throughput
and RTT are positive and right-skewed (paper Figs 7-8), loss is a fraction.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.util.errors import NumericsError
from repro.util.validation import check_fraction, check_positive

__all__ = [
    "lognormal_params_from_moments",
    "sample_beta_loss",
    "sample_lognormal_mean_std",
    "sample_truncated_normal",
]


def lognormal_params_from_moments(mean: float, std: float) -> Tuple[float, float]:
    """(mu, sigma) of the underlying normal for a lognormal with given moments.

    Solves E[X] = exp(mu + sigma^2/2), Var[X] = (exp(sigma^2)-1) E[X]^2.
    """
    check_positive("mean", mean)
    check_positive("std", std)
    sigma2 = math.log1p((std / mean) ** 2)
    mu = math.log(mean) - sigma2 / 2.0
    return mu, math.sqrt(sigma2)


def sample_lognormal_mean_std(
    rng: np.random.Generator, mean: float, std: float, size: int
) -> np.ndarray:
    """Lognormal draws whose population mean/std equal ``mean``/``std``.

    The natural shape for throughput and RTT samples (positive, skewed —
    matching the paper's Figures 7-8 distributions).
    """
    mu, sigma = lognormal_params_from_moments(mean, std)
    return rng.lognormal(mean=mu, sigma=sigma, size=size)


def sample_truncated_normal(
    rng: np.random.Generator,
    mean: float,
    std: float,
    low: float,
    size: int,
    max_tries: int = 100,
) -> np.ndarray:
    """Normal draws resampled until all lie at or above ``low``.

    Used where a metric is roughly symmetric but physically bounded below
    (e.g. per-hop latencies).  Raises ``NumericsError`` if the truncation
    region is so improbable that resampling keeps failing.
    """
    check_positive("std", std)
    out = rng.normal(mean, std, size)
    for _ in range(max_tries):
        bad = out < low
        if not bad.any():
            return out
        out[bad] = rng.normal(mean, std, int(bad.sum()))
    raise NumericsError(
        f"truncated normal (mean={mean}, std={std}, low={low}) did not fill "
        f"after {max_tries} rounds"
    )


def sample_beta_loss(
    rng: np.random.Generator, mean: float, concentration: float, size: int
) -> np.ndarray:
    """Beta-distributed loss-rate draws with the given mean.

    ``concentration`` (= alpha + beta) controls spread; small values give the
    heavy right skew visible in the paper's loss distributions.
    """
    check_fraction("mean", mean)
    check_positive("concentration", concentration)
    if mean == 0.0:
        return np.zeros(size)
    if mean >= 1.0:  # validated to [0, 1]; >= keeps the boundary exact
        return np.ones(size)
    alpha = mean * concentration
    beta = (1.0 - mean) * concentration
    return rng.beta(alpha, beta, size)
