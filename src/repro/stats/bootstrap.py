"""Bootstrap confidence intervals (used to sanity-check t-test conclusions).

Appendix B notes that the metric samples are not exactly normal; percentile
bootstrap CIs on the mean difference give a distribution-free cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.util.validation import check_fraction, check_positive

__all__ = ["BootstrapResult", "bootstrap_ci", "bootstrap_mean_diff"]


@dataclass(frozen=True)
class BootstrapResult:
    """A percentile bootstrap interval for a statistic."""

    estimate: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def excludes_zero(self) -> bool:
        """True when the CI does not contain zero (≈ significant difference)."""
        return self.low > 0.0 or self.high < 0.0


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    rng: np.random.Generator,
    n_resamples: int = 1000,
    confidence: float = 0.95,
) -> BootstrapResult:
    """Percentile bootstrap CI for ``statistic`` over one sample."""
    check_fraction("confidence", confidence)
    check_positive("n_resamples", n_resamples)
    arr = np.asarray(values, dtype=np.float64)
    arr = arr[~np.isnan(arr)]
    if len(arr) < 2:
        raise ValueError("bootstrap needs at least 2 finite values")
    est = float(statistic(arr))
    stats = np.empty(n_resamples)
    for i in range(n_resamples):
        stats[i] = statistic(rng.choice(arr, size=len(arr), replace=True))
    alpha = (1.0 - confidence) / 2.0
    low, high = np.percentile(stats, [100 * alpha, 100 * (1 - alpha)])
    return BootstrapResult(est, float(low), float(high), confidence, n_resamples)


def bootstrap_mean_diff(
    sample1: Sequence[float],
    sample2: Sequence[float],
    rng: np.random.Generator,
    n_resamples: int = 1000,
    confidence: float = 0.95,
) -> BootstrapResult:
    """Percentile bootstrap CI for mean(sample2) - mean(sample1)."""
    check_fraction("confidence", confidence)
    x = np.asarray(sample1, dtype=np.float64)
    y = np.asarray(sample2, dtype=np.float64)
    x = x[~np.isnan(x)]
    y = y[~np.isnan(y)]
    if len(x) < 2 or len(y) < 2:
        raise ValueError("bootstrap_mean_diff needs >= 2 finite values per sample")
    est = float(np.mean(y) - np.mean(x))
    stats = np.empty(n_resamples)
    for i in range(n_resamples):
        bx = rng.choice(x, size=len(x), replace=True)
        by = rng.choice(y, size=len(y), replace=True)
        stats[i] = np.mean(by) - np.mean(bx)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.percentile(stats, [100 * alpha, 100 * (1 - alpha)])
    return BootstrapResult(est, float(low), float(high), confidence, n_resamples)
