"""Daily / weekly aggregation of per-test rows onto a day grid.

Figure 2 plots daily means of each metric; Figure 6 uses weekly medians.
These helpers turn a (day_ordinal, value) pair of columns into aligned
series over a :class:`~repro.util.timeutil.DayGrid`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.util.timeutil import Day, DayGrid

__all__ = ["daily_aggregate", "rolling_mean", "weekly_aggregate"]

_AGGS = {
    "mean": np.mean,
    "median": np.median,
    "sum": np.sum,
    "count": len,
}


def daily_aggregate(
    day_ordinals: Sequence[int],
    values: Sequence[float],
    grid: DayGrid,
    agg: str = "mean",
) -> np.ndarray:
    """Aggregate ``values`` per day onto ``grid``.

    Days with no data yield NaN (for mean/median/sum) or 0 (for count),
    matching how the paper's daily plots show gaps vs. zero test counts.
    """
    if agg not in _AGGS:
        raise ValueError(f"unknown agg {agg!r}; choose from {sorted(_AGGS)}")
    days = np.asarray(day_ordinals, dtype=np.int64)
    vals = np.asarray(values, dtype=np.float64)
    if len(days) != len(vals):
        raise ValueError(f"length mismatch: {len(days)} days vs {len(vals)} values")
    start = grid.start.ordinal
    n = len(grid)
    fill = 0.0 if agg == "count" else np.nan
    out = np.full(n, fill, dtype=np.float64)
    idx = days - start
    in_range = (idx >= 0) & (idx < n)
    idx, vals = idx[in_range], vals[in_range]
    if agg == "count":
        np.add.at(out, idx, 1.0)
        return out
    if agg == "sum":
        has = np.zeros(n, dtype=bool)
        has[idx] = True
        sums = np.zeros(n)
        np.add.at(sums, idx, vals)
        out[has] = sums[has]
        return out
    # mean / median need per-day buckets
    order = np.argsort(idx, kind="stable")
    idx_sorted, vals_sorted = idx[order], vals[order]
    boundaries = np.searchsorted(idx_sorted, np.arange(n + 1))
    fn = _AGGS[agg]
    for d in range(n):
        lo, hi = boundaries[d], boundaries[d + 1]
        if hi > lo:
            out[d] = fn(vals_sorted[lo:hi])
    return out


def weekly_aggregate(
    day_ordinals: Sequence[int],
    values: Sequence[float],
    agg: str = "median",
) -> Dict[Day, float]:
    """Aggregate values by ISO week (keyed by the week's Monday).

    Used for Figure 6's weekly median loss/RTT series.
    """
    if agg not in _AGGS:
        raise ValueError(f"unknown agg {agg!r}; choose from {sorted(_AGGS)}")
    days = np.asarray(day_ordinals, dtype=np.int64)
    vals = np.asarray(values, dtype=np.float64)
    if len(days) != len(vals):
        raise ValueError(f"length mismatch: {len(days)} days vs {len(vals)} values")
    buckets: Dict[Day, List[float]] = {}
    for ordinal, value in zip(days.tolist(), vals.tolist()):
        monday = Day(int(ordinal)).week_start()
        buckets.setdefault(monday, []).append(value)
    fn = _AGGS[agg]
    return {monday: float(fn(np.asarray(v))) for monday, v in sorted(buckets.items())}


def rolling_mean(series: Sequence[float], window: int) -> np.ndarray:
    """Trailing rolling mean ignoring NaNs; the first window-1 use what exists.

    Smooths the daily series the way the paper's figures visually do.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    arr = np.asarray(series, dtype=np.float64)
    out = np.full(len(arr), np.nan)
    for i in range(len(arr)):
        lo = max(0, i - window + 1)
        chunk = arr[lo : i + 1]
        finite = chunk[~np.isnan(chunk)]
        if len(finite):
            out[i] = finite.mean()
    return out
