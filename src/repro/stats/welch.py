"""Welch's unequal-variance t-test (the paper's significance test).

The paper (Appendix B) uses Welch's t-test because prewar/wartime samples
have unequal variances.  This module implements the statistic, the
Welch–Satterthwaite degrees of freedom, and two-sided p-values via a
from-scratch Student-t survival function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stats.special import regularized_incomplete_beta

__all__ = [
    "WelchResult",
    "student_t_cdf",
    "student_t_sf",
    "welch_df",
    "welch_t_from_moments",
    "welch_t_test",
]


def student_t_cdf(t: float, df: float) -> float:
    """P(T <= t) for Student's t with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError(f"df must be positive, got {df}")
    if math.isnan(t):
        return float("nan")
    if math.isinf(t):
        return 1.0 if t > 0 else 0.0
    x = df / (df + t * t)
    half_tail = 0.5 * regularized_incomplete_beta(df / 2.0, 0.5, x)
    return 1.0 - half_tail if t > 0 else half_tail


def student_t_sf(t: float, df: float) -> float:
    """Survival function P(T > t); more accurate than 1 - cdf in the tail."""
    if df <= 0:
        raise ValueError(f"df must be positive, got {df}")
    if math.isnan(t):
        return float("nan")
    if math.isinf(t):
        return 0.0 if t > 0 else 1.0
    x = df / (df + t * t)
    half_tail = 0.5 * regularized_incomplete_beta(df / 2.0, 0.5, x)
    return half_tail if t > 0 else 1.0 - half_tail


def welch_df(var1: float, n1: int, var2: float, n2: int) -> float:
    """Welch–Satterthwaite effective degrees of freedom."""
    if n1 < 2 or n2 < 2:
        raise ValueError(f"each sample needs n >= 2; got n1={n1}, n2={n2}")
    a = var1 / n1
    b = var2 / n2
    if a + b == 0.0:
        raise ValueError("both samples have zero variance; t-test undefined")
    num = (a + b) ** 2
    den = a * a / (n1 - 1) + b * b / (n2 - 1)
    if den == 0.0:
        # Subnormal variances can underflow when squared; fall back to the
        # conservative lower bound on Welch's df.
        return float(min(n1, n2) - 1)
    return num / den


@dataclass(frozen=True)
class WelchResult:
    """Outcome of a Welch's t-test."""

    statistic: float
    p_value: float
    df: float
    n1: int
    n2: int
    mean1: float
    mean2: float

    def significant(self, alpha: float = 0.05) -> bool:
        """True when p < alpha (the paper uses alpha = 0.05)."""
        return self.p_value < alpha

    @property
    def mean_delta(self) -> float:
        """mean2 - mean1 (wartime minus prewar in the paper's usage)."""
        return self.mean2 - self.mean1


def welch_t_from_moments(
    n1: int,
    mean1: float,
    var1: float,
    n2: int,
    mean2: float,
    var2: float,
) -> WelchResult:
    """Two-sided Welch's t-test from summary moments.

    The streaming detector (:mod:`repro.obs.live`) never holds raw
    samples — only exact counts, means, and sample variances per window —
    so the test runs on those summaries directly.  Same statistic, df,
    and p-value formulas as :func:`welch_t_test`; raises ``ValueError``
    under the same undefined conditions (n < 2 or both variances zero).
    """
    if n1 < 2 or n2 < 2:
        raise ValueError(
            f"welch_t_from_moments needs n >= 2 per sample; got {n1} and {n2}"
        )
    df = welch_df(var1, n1, var2, n2)
    se = math.sqrt(var1 / n1 + var2 / n2)
    t = (mean1 - mean2) / se
    p = 2.0 * student_t_sf(abs(t), df)
    p = min(1.0, max(0.0, p))
    return WelchResult(
        statistic=t, p_value=p, df=df, n1=n1, n2=n2, mean1=mean1, mean2=mean2
    )


def welch_t_test(sample1: Sequence[float], sample2: Sequence[float]) -> WelchResult:
    """Two-sided Welch's t-test between two independent samples.

    NaN values are dropped (NDT rows occasionally miss a metric).  Raises
    ``ValueError`` when either sample has fewer than two finite values or
    both variances are zero, matching the conditions under which the test is
    undefined.
    """
    x = np.asarray(sample1, dtype=np.float64)
    y = np.asarray(sample2, dtype=np.float64)
    x = x[~np.isnan(x)]
    y = y[~np.isnan(y)]
    n1, n2 = len(x), len(y)
    if n1 < 2 or n2 < 2:
        raise ValueError(
            f"welch_t_test needs >= 2 finite values per sample; got {n1} and {n2}"
        )
    m1, m2 = float(np.mean(x)), float(np.mean(y))
    v1, v2 = float(np.var(x, ddof=1)), float(np.var(y, ddof=1))
    df = welch_df(v1, n1, v2, n2)
    se = math.sqrt(v1 / n1 + v2 / n2)
    t = (m1 - m2) / se
    p = 2.0 * student_t_sf(abs(t), df)
    p = min(1.0, max(0.0, p))
    return WelchResult(
        statistic=t, p_value=p, df=df, n1=n1, n2=n2, mean1=m1, mean2=m2
    )
