"""Effect sizes (Cohen's d and Cliff's delta) for the Table-1 comparisons.

Significance at the paper's sample sizes is nearly guaranteed for any real
change; effect sizes say whether a change is *large*.  Cohen's d uses the
pooled standard deviation; Cliff's delta is its rank-based counterpart,
robust to the heavy tails these metrics have.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["EffectSize", "cliffs_delta", "cohens_d"]


@dataclass(frozen=True)
class EffectSize:
    """An effect-size estimate with its conventional magnitude label."""

    value: float
    kind: str  # "cohens_d" | "cliffs_delta"

    @property
    def magnitude(self) -> str:
        v = abs(self.value)
        if self.kind == "cohens_d":
            if v < 0.2:
                return "negligible"
            if v < 0.5:
                return "small"
            if v < 0.8:
                return "medium"
            return "large"
        # Cliff's delta conventions (Romano et al.)
        if v < 0.147:
            return "negligible"
        if v < 0.33:
            return "small"
        if v < 0.474:
            return "medium"
        return "large"


def _clean(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    arr = arr[~np.isnan(arr)]
    if len(arr) < 2:
        raise ValueError("effect size needs >= 2 finite values per sample")
    return arr


def cohens_d(sample1: Sequence[float], sample2: Sequence[float]) -> EffectSize:
    """Cohen's d of sample2 relative to sample1 (pooled SD)."""
    x, y = _clean(sample1), _clean(sample2)
    n1, n2 = len(x), len(y)
    v1, v2 = x.var(ddof=1), y.var(ddof=1)
    pooled = ((n1 - 1) * v1 + (n2 - 1) * v2) / (n1 + n2 - 2)
    if pooled == 0:
        raise ValueError("both samples constant; Cohen's d undefined")
    return EffectSize((y.mean() - x.mean()) / math.sqrt(pooled), "cohens_d")


def cliffs_delta(sample1: Sequence[float], sample2: Sequence[float]) -> EffectSize:
    """Cliff's delta: P(y > x) - P(y < x), computed via sorted ranks.

    O((n+m) log(n+m)) using searchsorted rather than the naive O(n*m)
    pairwise comparison.
    """
    x, y = _clean(sample1), _clean(sample2)
    xs = np.sort(x)
    # For each y, count x strictly below and strictly above.
    below = np.searchsorted(xs, y, side="left")  # x < y count
    above = len(xs) - np.searchsorted(xs, y, side="right")  # x > y count
    delta = float((below.sum() - above.sum()) / (len(x) * len(y)))
    return EffectSize(delta, "cliffs_delta")
