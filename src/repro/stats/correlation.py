"""Correlation coefficients (from scratch; scipy is only a test oracle).

The paper reports a "mild correlation" between path-diversity increases and
performance degradation (Appendix D) without quantifying it; the extended
Figure-9 analysis here quantifies it with Pearson's r and Spearman's rho,
each with a two-sided t-approximation p-value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stats.welch import student_t_sf

__all__ = ["CorrelationResult", "pearson", "spearman"]


@dataclass(frozen=True)
class CorrelationResult:
    """A correlation estimate with its significance."""

    coefficient: float
    p_value: float
    n: int

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha

    @property
    def strength(self) -> str:
        """Qualitative reading: none / mild / moderate / strong."""
        r = abs(self.coefficient)
        if r < 0.1:
            return "none"
        if r < 0.3:
            return "mild"
        if r < 0.6:
            return "moderate"
        return "strong"


def _validate(x: Sequence[float], y: Sequence[float]) -> tuple:
    ax = np.asarray(x, dtype=np.float64)
    ay = np.asarray(y, dtype=np.float64)
    if len(ax) != len(ay):
        raise ValueError(f"length mismatch: {len(ax)} vs {len(ay)}")
    keep = ~(np.isnan(ax) | np.isnan(ay))
    ax, ay = ax[keep], ay[keep]
    if len(ax) < 3:
        raise ValueError("correlation needs at least 3 paired finite values")
    return ax, ay


def _p_from_r(r: float, n: int) -> float:
    """Two-sided p-value via the t-distribution with n-2 df."""
    if abs(r) >= 1.0:
        return 0.0
    t = abs(r) * math.sqrt((n - 2) / (1.0 - r * r))
    return min(1.0, 2.0 * student_t_sf(t, n - 2))


def pearson(x: Sequence[float], y: Sequence[float]) -> CorrelationResult:
    """Pearson's product-moment correlation with a t-test p-value."""
    ax, ay = _validate(x, y)
    sx, sy = ax.std(), ay.std()
    if sx == 0.0 or sy == 0.0:
        raise ValueError("correlation undefined for a constant sample")
    r = float(np.mean((ax - ax.mean()) * (ay - ay.mean())) / (sx * sy))
    r = max(-1.0, min(1.0, r))
    return CorrelationResult(r, _p_from_r(r, len(ax)), len(ax))


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean of their rank positions)."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and values[order[j + 1]] == values[order[i]]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


def spearman(x: Sequence[float], y: Sequence[float]) -> CorrelationResult:
    """Spearman's rank correlation (Pearson over average ranks)."""
    ax, ay = _validate(x, y)
    rx, ry = _ranks(ax), _ranks(ay)
    if rx.std() == 0.0 or ry.std() == 0.0:
        raise ValueError("correlation undefined for a constant sample")
    return pearson(rx, ry)
