"""Statistics implemented from scratch (scipy is used only as a test oracle).

The paper's significance machinery is Welch's unequal-variance t-test
(:mod:`repro.stats.welch`), justified in its Appendix B.  The remaining
modules provide the descriptive statistics, samplers, bootstrap and
time-series aggregation that the synthetic generator and analyses use.
"""

from repro.stats.bootstrap import bootstrap_ci, bootstrap_mean_diff
from repro.stats.correlation import CorrelationResult, pearson, spearman
from repro.stats.effectsize import EffectSize, cliffs_delta, cohens_d
from repro.stats.descriptive import Summary, percent_change, ratio_change, summarize
from repro.stats.distributions import (
    lognormal_params_from_moments,
    sample_beta_loss,
    sample_lognormal_mean_std,
    sample_truncated_normal,
)
from repro.stats.significance import SignificanceResult, significance_label
from repro.stats.special import log_beta, regularized_incomplete_beta
from repro.stats.timeseries import daily_aggregate, rolling_mean, weekly_aggregate
from repro.stats.welch import (
    WelchResult,
    student_t_cdf,
    student_t_sf,
    welch_df,
    welch_t_test,
)

__all__ = [
    "CorrelationResult",
    "EffectSize",
    "SignificanceResult",
    "Summary",
    "WelchResult",
    "bootstrap_ci",
    "bootstrap_mean_diff",
    "cliffs_delta",
    "cohens_d",
    "daily_aggregate",
    "log_beta",
    "lognormal_params_from_moments",
    "pearson",
    "percent_change",
    "ratio_change",
    "spearman",
    "regularized_incomplete_beta",
    "rolling_mean",
    "sample_beta_loss",
    "sample_lognormal_mean_std",
    "sample_truncated_normal",
    "significance_label",
    "student_t_cdf",
    "student_t_sf",
    "summarize",
    "weekly_aggregate",
    "welch_df",
    "welch_t_test",
]
