"""Descriptive statistics and the paper's change metrics.

Table 3 reports percentage changes for counts/throughput/RTT and a
multiplicative factor for loss; :func:`percent_change` and
:func:`ratio_change` implement those two presentations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Summary", "percent_change", "ratio_change", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of one metric sample."""

    n: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    p25: float
    p75: float

    def iqr(self) -> float:
        """Interquartile range."""
        return self.p75 - self.p25


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a sample, dropping NaN values.

    Raises ``ValueError`` on an effectively empty sample.
    """
    arr = np.asarray(values, dtype=np.float64)
    arr = arr[~np.isnan(arr)]
    if len(arr) == 0:
        raise ValueError("cannot summarize an empty (or all-NaN) sample")
    std = float(np.std(arr, ddof=1)) if len(arr) >= 2 else float("nan")
    return Summary(
        n=len(arr),
        mean=float(np.mean(arr)),
        median=float(np.median(arr)),
        std=std,
        minimum=float(np.min(arr)),
        maximum=float(np.max(arr)),
        p25=float(np.percentile(arr, 25)),
        p75=float(np.percentile(arr, 75)),
    )


def percent_change(before: float, after: float) -> float:
    """(after - before) / before, as a percentage.

    Used for the ΔCounts / ΔTPut / ΔRTT columns of Table 3 and the
    oblast-level changes of Figure 3.
    """
    if not math.isfinite(before) or before == 0.0:
        raise ValueError(f"percent_change undefined for before={before!r}")
    return (after - before) / before * 100.0


def ratio_change(before: float, after: float) -> float:
    """after / before, the multiplicative factor used for ΔLoss in Table 3."""
    if not math.isfinite(before) or before == 0.0:
        raise ValueError(f"ratio_change undefined for before={before!r}")
    return after / before
