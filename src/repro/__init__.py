"""Reproduction of *The Ukrainian Internet Under Attack: an NDT Perspective*
(IMC '22).

The package simulates the M-Lab NDT measurement pipeline over a synthetic
Ukrainian Internet under the 2022 invasion, then recomputes every table and
figure of the paper from the generated data.

Quickstart
----------
>>> from repro import DatasetGenerator, GeneratorConfig, full_report
>>> dataset = DatasetGenerator(GeneratorConfig(scale=0.2)).generate()
>>> print(full_report(dataset))  # doctest: +SKIP

Layers (bottom-up): :mod:`repro.util`, :mod:`repro.tables`,
:mod:`repro.stats`, :mod:`repro.netbase`, :mod:`repro.geo`,
:mod:`repro.conflict`, :mod:`repro.topology`, :mod:`repro.mlab`,
:mod:`repro.ndt`, :mod:`repro.traceroute`, :mod:`repro.synth`,
:mod:`repro.faults`, :mod:`repro.analysis`, :mod:`repro.runtime`,
:mod:`repro.viz`.
"""

from repro.analysis.report import full_report
from repro.faults import get_profile
from repro.runtime.run import run_pipeline
from repro.synth.generator import Dataset, DatasetGenerator, GeneratorConfig, study_periods
from repro.synth.scenario import Scenario, scenario_config
from repro.topology.builder import Topology, build_default_topology

__version__ = "1.0.0"

__all__ = [
    "Dataset",
    "DatasetGenerator",
    "GeneratorConfig",
    "Scenario",
    "Topology",
    "__version__",
    "build_default_topology",
    "full_report",
    "get_profile",
    "run_pipeline",
    "scenario_config",
    "study_periods",
]
