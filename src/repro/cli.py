"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands
-----------
``generate``   Generate the synthetic dataset and write NDT/traceroute CSVs.
``report``     Generate (or load) a dataset and print the full reproduction
               report — every table and figure of the paper.
``experiment`` Run a single experiment (table1, table2, ..., fig9).
``scenarios``  Compare key findings across ablation scenarios.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.synth.generator import DatasetGenerator, GeneratorConfig
from repro.synth.scenario import Scenario, scenario_config
from repro.tables.io import write_csv
from repro.tables.pretty import format_table

__all__ = ["main"]

_EXPERIMENTS = (
    "table1", "table2", "table3", "table4", "table5", "table6",
    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "churn", "events", "outages", "hopgeo",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'The Ukrainian Internet Under Attack' (IMC '22) "
        "over a synthetic M-Lab/NDT substrate.",
    )
    parser.add_argument("--seed", type=int, default=20220224, help="master seed")
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help="test-volume multiplier (1.0 = paper scale, ~110k tests)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate the dataset and write CSVs")
    gen.add_argument("--out", default="results", help="output directory")

    sub.add_parser("report", help="print the full reproduction report")

    exp = sub.add_parser("experiment", help="run one experiment")
    exp.add_argument("name", choices=_EXPERIMENTS)

    scen = sub.add_parser("scenarios", help="compare ablation scenarios")
    scen.add_argument(
        "--which", nargs="*", default=[s.value for s in Scenario],
        choices=[s.value for s in Scenario],
    )

    sub.add_parser("validate", help="generate a dataset and check invariants")
    sub.add_parser("topology", help="print the simulated topology summary")
    return parser


def _generate(args) -> "object":
    config = GeneratorConfig(seed=args.seed, scale=args.scale)
    return DatasetGenerator(config).generate()


def _cmd_generate(args) -> int:
    dataset = _generate(args)
    write_csv(dataset.ndt, f"{args.out}/ndt_downloads.csv")
    write_csv(dataset.traces, f"{args.out}/traceroutes.csv")
    print(
        f"wrote {dataset.ndt.n_rows} NDT rows and {dataset.traces.n_rows} "
        f"traceroutes under {args.out}/"
    )
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import full_report

    print(full_report(_generate(args)))
    return 0


def _cmd_experiment(args) -> int:
    from repro.analysis import report as rpt

    dataset = _generate(args)

    def churn(ds):
        from repro.analysis.routing_churn import churn_summary, daily_route_churn

        table = daily_route_churn(ds)
        summary = churn_summary(table, ds)
        return (
            format_table(table, max_rows=30)
            + f"\nmean daily route changes: prewar "
            f"{summary['prewar_daily_changes']:.1f}, wartime "
            f"{summary['wartime_daily_changes']:.1f} (x{summary['ratio']:.1f})"
        )

    def events(ds):
        from repro.analysis.events_impact import event_impact_table
        from repro.conflict import default_timeline

        return format_table(
            event_impact_table(ds.ndt, default_timeline(), ds.topology.gazetteer),
            float_fmts={"p_value": ".1e"},
            float_fmt=".3f",
        )

    def outages(ds):
        from repro.analysis.outages import detect_outage_days

        return f"outage-shaped days (2022): {detect_outage_days(ds.ndt)}"

    def hopgeo(ds):
        from repro.analysis.hopgeo import gateway_city_agreement

        a = gateway_city_agreement(ds)
        return (
            f"rDNS vs geo-DB agreement: {a['agree']:.1%} over "
            f"{a['n_compared']:.0f} tests (geo missing {a['geo_missing']:.1%}, "
            f"PTR unusable {a['ptr_missing']:.1%})"
        )

    sections = {
        "churn": churn,
        "events": events,
        "outages": outages,
        "hopgeo": hopgeo,
        "table1": rpt._table1,
        "table2": rpt._table2_fig9,
        "table3": rpt._tables_3_5_6,
        "table4": rpt._fig3_table4,
        "table5": rpt._tables_3_5_6,
        "table6": rpt._tables_3_5_6,
        "fig2": rpt._fig2,
        "fig3": rpt._fig3_table4,
        "fig4": rpt._fig4,
        "fig5": rpt._fig5,
        "fig6": rpt._fig6,
        "fig7": rpt._figs7_8,
        "fig8": rpt._figs7_8,
        "fig9": rpt._table2_fig9,
    }
    print(sections[args.name](dataset))
    return 0


def _cmd_scenarios(args) -> int:
    from repro.analysis.city import city_welch_table
    from repro.analysis.paths import path_count_table
    from repro.tables.table import Table

    rows = []
    for name in args.which:
        scenario = Scenario(name)
        config = scenario_config(
            scenario, GeneratorConfig(seed=args.seed, scale=args.scale)
        )
        dataset = DatasetGenerator(config).generate()
        national = city_welch_table(dataset.ndt, cities=[]).to_dicts()[-1]
        paths = {r["period"]: r for r in path_count_table(dataset.traces).iter_rows()}
        rows.append(
            {
                "scenario": name,
                "rtt_pre": national["min_rtt_ms_prewar"],
                "rtt_war": national["min_rtt_ms_wartime"],
                "loss_pre": national["loss_rate_prewar"],
                "loss_war": national["loss_rate_wartime"],
                "paths_pre": paths["prewar"]["paths_per_conn"],
                "paths_war": paths["wartime"]["paths_per_conn"],
            }
        )
    print(
        format_table(
            Table.from_rows(rows),
            title="National RTT/loss and paths-per-connection by scenario",
            float_fmts={"loss_pre": ".4f", "loss_war": ".4f"},
            float_fmt=".2f",
        )
    )
    return 0


def _cmd_validate(args) -> int:
    from repro.synth.validate import validate_dataset

    report = validate_dataset(_generate(args))
    print(report)
    return 0 if report.passed else 1


def _cmd_topology(args) -> int:
    from repro.netbase.asn import ASRole
    from repro.topology.builder import build_default_topology

    topo = build_default_topology()
    print(f"ASes: {len(topo.registry)}  links: {topo.graph.n_links()}")
    for role in ASRole:
        members = topo.registry.with_role(role)
        names = ", ".join(f"AS{a.asn} {a.name}" for a in members[:6])
        more = f" (+{len(members) - 6} more)" if len(members) > 6 else ""
        print(f"  {role.value:8s} ({len(members):2d}): {names}{more}")
    print("M-Lab sites:")
    for asn, spec in sorted(topo.mlab_sites.items()):
        providers = sorted(topo.graph.providers(asn))
        print(f"  {spec.code} ({spec.country}, AS{asn}) <- {providers}")
    print("degradation schedules:")
    for sched in topo.degradation_schedules:
        kind = "performance" if sched.affects_performance else "routing-only"
        print(
            f"  link {sched.link_key}: {sched.start.iso()} -> {sched.end.iso()} "
            f"floor {sched.floor} [{kind}]"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "report": _cmd_report,
        "experiment": _cmd_experiment,
        "scenarios": _cmd_scenarios,
        "validate": _cmd_validate,
        "topology": _cmd_topology,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
