"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands
-----------
``generate``   Generate the synthetic dataset and write NDT/traceroute CSVs
               (optionally dirtied with ``--inject-faults``).
``report``     Run the staged pipeline (generate → inject → ingest → all 18
               experiments) and print the full reproduction report.  One
               failing experiment degrades gracefully: the other seventeen
               still print and the exit code turns nonzero.
``run``        Alias for ``report`` (the canonical spelling in docs).
``experiment`` Run a single experiment (table1, table2, ..., fig9).
``scenarios``  Compare key findings across ablation scenarios.
``lint``       Run the repo's static-analysis rules (see docs/LINT.md).
``obs``        Summarize / diff / validate observability artifacts, render
               lineage, account memory (see docs/OBSERVABILITY.md).
``bench``      Run / compare / record benchmark registry entries against
               ``BENCH_history.jsonl`` (see docs/OBSERVABILITY.md).
``chaos``      Crash-matrix harness: kill a pipeline run at every announced
               mid-commit crash point, resume, verify byte-identical
               outputs (see docs/ROBUSTNESS.md).
``plan``       Inspect lazy query plans: before/after optimizer trees for
               representative chains (see docs/TABLES.md).
``live``       Live observability: replay the NDT stream through the
               sliding-window aggregator + alert engine, write the
               canonical ``alerts.json``, serve the health API
               (see docs/OBSERVABILITY.md, "Live observability").

Exit codes
----------
0  success; 1 unexpected typed error; 2 usage (argparse);
3  generation-side failure (generate / inject-faults / ingest);
4  analysis-side failure (one or more experiments failed);
5  lint findings above the baseline (``repro lint``);
6  performance regression beyond threshold (``repro bench compare``);
7  unrecovered crash in the crash matrix (``repro chaos``).

Fault-tolerance flags (global)
------------------------------
``--inject-faults PROFILE``  dirty the dataset like a real M-Lab extract
                             (profiles: none, default, heavy).
``--strict``                 raise on malformed rows instead of quarantining.
``--resume``                 reuse stage checkpoints from a previous run.
``--checkpoint-dir DIR``     where checkpoints live (results/.checkpoints).

Observability flags (global)
----------------------------
``--trace``             record nested spans; write ``trace.jsonl`` + the
                        Chrome ``chrome://tracing`` view under ``--obs-dir``.
``--trace-out PATH``    JSONL trace path (implies ``--trace``).
``--metrics``           record counters/histograms; write ``metrics.json``.
``--metrics-out PATH``  metrics snapshot path (implies ``--metrics``).
``--profile``           hotspot profiling (implies ``--trace --metrics``):
                        span-attributed self-time in ``profile.json``, a
                        statistical stack sampler (``samples.collapsed`` +
                        ``samples_chrome.json``), and per-span allocation
                        attribution.  ``REPRO_PROFILE=1`` does the same.
``--obs-dir DIR``       artifact directory (default: results/obs); a traced
                        or metered run also writes ``run_report.json`` +
                        ``run_report.txt`` + ``provenance.json`` there.
``--log LEVEL``         log verbosity (debug|info|warn|error); the
                        ``REPRO_LOG`` env var is honored when absent.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro import obs, storage
from repro.faults import PROFILES, FaultInjector, get_profile
from repro.faults import chaos as chaos_cli
from repro.lint import cli as lint_cli
from repro.obs import bench as bench_cli
from repro.obs import cli as obs_cli
from repro.obs.live import cli as live_cli
from repro.obs.export import write_chrome_trace, write_spans_jsonl
from repro.obs.lineage import write_provenance
from repro.obs.metrics import snapshot_to_json
from repro.obs.report import build_run_report, write_run_report
from repro.runtime.checkpoint import config_key
from repro.runtime.run import (
    DEFAULT_CHECKPOINT_DIR,
    EXIT_ANALYSIS,
    EXIT_GENERATION,
    EXIT_OK,
    run_pipeline,
)
from repro.synth.generator import DatasetGenerator, GeneratorConfig
from repro.synth.scenario import Scenario, scenario_config
from repro.tables.io import write_csv
from repro.tables.plan import cli as plan_cli
from repro.tables.pretty import format_table
from repro.util.errors import PipelineError, ReproError

__all__ = ["main"]

_EXPERIMENTS = (
    "table1", "table2", "table3", "table4", "table5", "table6",
    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "churn", "events", "outages", "hopgeo",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'The Ukrainian Internet Under Attack' (IMC '22) "
        "over a synthetic M-Lab/NDT substrate.",
    )
    parser.add_argument("--seed", type=int, default=20220224, help="master seed")
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help="test-volume multiplier (1.0 = paper scale, ~110k tests)",
    )
    parser.add_argument(
        "--inject-faults", metavar="PROFILE", choices=sorted(PROFILES),
        default=None,
        help="dirty the generated tables like a real M-Lab extract "
        f"(choices: {', '.join(sorted(PROFILES))})",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on malformed rows instead of quarantining them",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="reuse stage checkpoints left by a previous (possibly killed) run",
    )
    parser.add_argument(
        "--checkpoint-dir", default=DEFAULT_CHECKPOINT_DIR,
        help="stage checkpoint directory (default: %(default)s)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record spans; write trace.jsonl + Chrome trace under --obs-dir",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="JSONL trace path (implies --trace; default: <obs-dir>/trace.jsonl)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="record counters/histograms; write metrics.json under --obs-dir",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="metrics snapshot path (implies --metrics; "
        "default: <obs-dir>/metrics.json)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="hotspot profiling: self-time profile.json, stack samples, "
        "allocation attribution (implies --trace --metrics; env: "
        "REPRO_PROFILE=1)",
    )
    parser.add_argument(
        "--obs-dir", default=os.path.join("results", "obs"),
        help="observability artifact directory (default: %(default)s)",
    )
    parser.add_argument(
        "--log", default=None, metavar="LEVEL",
        choices=("debug", "info", "warn", "warning", "error"),
        help="log verbosity (default: REPRO_LOG env var, else info)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate the dataset and write CSVs")
    gen.add_argument("--out", default="results", help="output directory")

    sub.add_parser("report", help="print the full reproduction report")
    sub.add_parser("run", help="alias for 'report'")

    exp = sub.add_parser("experiment", help="run one experiment")
    exp.add_argument("name", choices=_EXPERIMENTS)

    scen = sub.add_parser("scenarios", help="compare ablation scenarios")
    scen.add_argument(
        "--which", nargs="*", default=[s.value for s in Scenario],
        choices=[s.value for s in Scenario],
    )

    sub.add_parser("validate", help="generate a dataset and check invariants")
    sub.add_parser("topology", help="print the simulated topology summary")

    lint_cli.configure_parser(sub)
    obs_cli.configure_parser(sub)
    bench_cli.configure_parser(sub)
    chaos_cli.configure_parser(sub)
    plan_cli.configure_parser(sub)
    live_cli.configure_parser(sub)
    return parser


def _profile_wanted(args) -> bool:
    if getattr(args, "profile", False):
        return True
    from repro.obs.profile import env_profile_enabled

    return env_profile_enabled()


def _obs_wanted(args) -> bool:
    return bool(
        getattr(args, "trace", False)
        or getattr(args, "trace_out", None)
        or getattr(args, "metrics", False)
        or getattr(args, "metrics_out", None)
        or _profile_wanted(args)
    )


def _run_id(args) -> str:
    config = GeneratorConfig(seed=args.seed, scale=args.scale)
    return config_key(
        config, extra={"faults": args.inject_faults or "none"}
    )[:8]


def _obs_setup(args) -> None:
    """Enable the requested pillars before the pipeline starts."""
    obs.set_run_context(run_id=_run_id(args))
    if not _obs_wanted(args):
        return
    profile_on = _profile_wanted(args)
    trace_on = bool(args.trace or args.trace_out) or profile_on
    metrics_on = bool(args.metrics or args.metrics_out) or profile_on
    # Lineage rides along with any observed run: fingerprinting the
    # handful of tables per stage is cheap next to tracing the stages.
    obs.enable(trace=trace_on, metrics=metrics_on, lineage=True)
    if profile_on:
        from repro.obs.profile import start_profiling

        start_profiling()


def _obs_finish(args, report, gates=None, injection=None) -> None:
    """Write the artifacts a traced/metered run promised; print their paths."""
    if not _obs_wanted(args):
        return
    written = []
    session = None
    if _profile_wanted(args):
        from repro.obs.profile import stop_profiling

        # Stop the sampler thread and detach the allocation hook before
        # exporting anything; the session keeps its collected data.
        session = stop_profiling()
    tracer = obs.tracer()
    if tracer is not None:
        trace_path = args.trace_out or os.path.join(args.obs_dir, "trace.jsonl")
        write_spans_jsonl(tracer, trace_path)
        chrome_path = os.path.join(
            os.path.dirname(os.path.abspath(trace_path)), "trace_chrome.json"
        )
        write_chrome_trace(tracer, chrome_path)
        written += [trace_path, chrome_path]
    snapshot = obs.metrics_snapshot() if obs.metrics_enabled() else None
    if snapshot is not None:
        metrics_path = args.metrics_out or os.path.join(
            args.obs_dir, "metrics.json"
        )
        storage.commit_text(
            metrics_path, snapshot_to_json(snapshot), label="obs.metrics"
        )
        written.append(metrics_path)
    if report is not None:
        data = build_run_report(
            report,
            run_id=_run_id(args),
            tracer=tracer,
            metrics_snapshot=snapshot,
            gates=gates,
            injection=injection,
        )
        paths = write_run_report(data, args.obs_dir)
        written += [paths["json"], paths["txt"]]
    if session is not None and tracer is not None:
        from repro.obs.profile import build_profile_doc, write_profile

        doc = build_profile_doc(
            tracer.spans,
            run_id=_run_id(args),
            source="trace",
            spans_leaked=tracer.spans_leaked,
            leaked_names=tracer.leaked_names(),
            sampler=session.sampler_summary(),
            allocs=session.alloc_summary(),
        )
        profile_path = os.path.join(args.obs_dir, "profile.json")
        write_profile(doc, profile_path)
        written.append(profile_path)
        collapsed = session.collapsed_text()
        if collapsed:
            collapsed_path = os.path.join(args.obs_dir, "samples.collapsed")
            storage.commit_text(
                collapsed_path, collapsed, label="profile.samples"
            )
            chrome_samples = os.path.join(args.obs_dir, "samples_chrome.json")
            write_chrome_trace(
                session.sample_spans(), chrome_samples,
                process_name="repro-sampler",
            )
            written += [collapsed_path, chrome_samples]
    recorder = obs.lineage_recorder()
    if recorder is not None and len(recorder):
        recorder.set_run(run_id=_run_id(args))
        prov_path = os.path.join(args.obs_dir, "provenance.json")
        write_provenance(recorder, prov_path)
        written.append(prov_path)
    obs.disable()
    for path in written:
        print(f"obs: wrote {path}", file=sys.stderr)


def _generate(args) -> "object":
    config = GeneratorConfig(seed=args.seed, scale=args.scale)
    return DatasetGenerator(config).generate()


def _run_pipeline(args, experiments: Optional[Sequence[str]] = None):
    config = GeneratorConfig(seed=args.seed, scale=args.scale)
    profile = get_profile(args.inject_faults) if args.inject_faults else None
    return run_pipeline(
        config,
        profile=profile,
        strict=args.strict,
        resume=args.resume,
        checkpoint_dir=args.checkpoint_dir,
        experiments=experiments,
    )


def _cmd_generate(args) -> int:
    try:
        dataset = _generate(args)
        injection = None
        if args.inject_faults:
            profile = get_profile(args.inject_faults)
            if profile.total_rate > 0:
                dataset, injection = FaultInjector(
                    profile, seed=args.seed
                ).inject_dataset(dataset)
        write_csv(dataset.ndt, f"{args.out}/ndt_downloads.csv")
        write_csv(dataset.traces, f"{args.out}/traceroutes.csv")
    except ReproError as exc:
        print(f"error: generation failed: {exc}", file=sys.stderr)
        return EXIT_GENERATION
    print(
        f"wrote {dataset.ndt.n_rows} NDT rows and {dataset.traces.n_rows} "
        f"traceroutes under {args.out}/"
    )
    if injection is not None:
        print(injection)
    return EXIT_OK


def _cmd_report(args) -> int:
    _obs_setup(args)
    try:
        run = _run_pipeline(args)
    except PipelineError as exc:
        partial = getattr(exc, "partial_run", None)
        if partial is not None:
            print(partial.render(), file=sys.stderr)
            _obs_finish(
                args, partial.report,
                gates=partial.gates, injection=partial.injection,
            )
        else:
            _obs_finish(args, None)
        print(f"error: generation failed: {exc}", file=sys.stderr)
        return EXIT_GENERATION
    _obs_finish(args, run.report, gates=run.gates, injection=run.injection)
    print(run.render())
    if run.exit_code != EXIT_OK:
        failed = ", ".join(r.name for r in run.report.failures())
        print(f"error: experiments failed: {failed}", file=sys.stderr)
    return run.exit_code


def _cmd_experiment(args) -> int:
    _obs_setup(args)
    try:
        run = _run_pipeline(args, experiments=[args.name])
    except PipelineError as exc:
        partial = getattr(exc, "partial_run", None)
        _obs_finish(args, partial.report if partial is not None else None)
        print(f"error: generation failed: {exc}", file=sys.stderr)
        return EXIT_GENERATION
    _obs_finish(args, run.report, gates=run.gates, injection=run.injection)
    if args.name in run.sections:
        print(run.sections[args.name])
    for failure in run.report.failures():
        print(
            f"error: experiment {failure.name!r} failed: {failure.error}",
            file=sys.stderr,
        )
        if failure.traceback:
            print(failure.traceback, file=sys.stderr)
    return run.exit_code


def _cmd_scenarios(args) -> int:
    from repro.analysis.city import city_welch_table
    from repro.analysis.paths import path_count_table
    from repro.tables.table import Table

    rows = []
    for name in args.which:
        scenario = Scenario(name)
        config = scenario_config(
            scenario, GeneratorConfig(seed=args.seed, scale=args.scale)
        )
        dataset = DatasetGenerator(config).generate()
        national = city_welch_table(dataset.ndt, cities=[]).to_dicts()[-1]
        paths = {r["period"]: r for r in path_count_table(dataset.traces).iter_rows()}
        rows.append(
            {
                "scenario": name,
                "rtt_pre": national["min_rtt_ms_prewar"],
                "rtt_war": national["min_rtt_ms_wartime"],
                "loss_pre": national["loss_rate_prewar"],
                "loss_war": national["loss_rate_wartime"],
                "paths_pre": paths["prewar"]["paths_per_conn"],
                "paths_war": paths["wartime"]["paths_per_conn"],
            }
        )
    print(
        format_table(
            Table.from_rows(rows),
            title="National RTT/loss and paths-per-connection by scenario",
            float_fmts={"loss_pre": ".4f", "loss_war": ".4f"},
            float_fmt=".2f",
        )
    )
    return 0


def _cmd_validate(args) -> int:
    from repro.synth.validate import validate_dataset

    report = validate_dataset(_generate(args))
    print(report)
    return 0 if report.passed else 1


def _cmd_topology(args) -> int:
    from repro.netbase.asn import ASRole
    from repro.topology.builder import build_default_topology

    topo = build_default_topology()
    print(f"ASes: {len(topo.registry)}  links: {topo.graph.n_links()}")
    for role in ASRole:
        members = topo.registry.with_role(role)
        names = ", ".join(f"AS{a.asn} {a.name}" for a in members[:6])
        more = f" (+{len(members) - 6} more)" if len(members) > 6 else ""
        print(f"  {role.value:8s} ({len(members):2d}): {names}{more}")
    print("M-Lab sites:")
    for asn, spec in sorted(topo.mlab_sites.items()):
        providers = sorted(topo.graph.providers(asn))
        print(f"  {spec.code} ({spec.country}, AS{asn}) <- {providers}")
    print("degradation schedules:")
    for sched in topo.degradation_schedules:
        kind = "performance" if sched.affects_performance else "routing-only"
        print(
            f"  link {sched.link_key}: {sched.start.iso()} -> {sched.end.iso()} "
            f"floor {sched.floor} [{kind}]"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    obs.configure_logging(getattr(args, "log", None))
    handlers = {
        "generate": _cmd_generate,
        "report": _cmd_report,
        "run": _cmd_report,
        "experiment": _cmd_experiment,
        "scenarios": _cmd_scenarios,
        "validate": _cmd_validate,
        "topology": _cmd_topology,
        "lint": lint_cli.cmd_lint,
        "obs": obs_cli.cmd_obs,
        "bench": bench_cli.cmd_bench,
        "chaos": chaos_cli.cmd_chaos,
        "plan": plan_cli.cmd_plan,
        "live": live_cli.cmd_live,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # stdout went away (``repro ... | head``); exit quietly like a
        # well-behaved unix tool.  Redirect to devnull so the interpreter's
        # shutdown flush doesn't traceback on the dead pipe.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except ReproError as exc:
        # Last-resort net: no typed error may escape as a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
