"""Horizontal bar charts (ranked regional changes, histograms)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["bar_chart"]


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 40,
    value_fmt: str = "+.1f",
) -> str:
    """Render labeled horizontal bars; negatives extend left of the axis."""
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels vs {len(values)} values"
        )
    if len(values) == 0:
        raise ValueError("empty chart")
    data = np.asarray(values, dtype=np.float64)
    finite = data[~np.isnan(data)]
    peak = np.abs(finite).max() if len(finite) else 1.0
    if peak == 0:
        peak = 1.0
    half = width // 2
    label_width = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, data):
        if np.isnan(value):
            bar = " " * half + "?"
        else:
            n = int(round(abs(value) / peak * half))
            if value >= 0:
                bar = " " * half + "|" + "#" * n
            else:
                bar = " " * (half - n) + "#" * n + "|"
        lines.append(
            f"{str(label).rjust(label_width)} {bar.ljust(width + 1)} "
            f"{format(value, value_fmt) if not np.isnan(value) else 'n/a'}"
        )
    return "\n".join(lines)
