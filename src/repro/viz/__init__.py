"""Plain-text renderings of the paper's figures.

The environment has no plotting stack, so figures are rendered as aligned
ASCII charts: line charts for the daily series (Figures 2, 4, 6), a signed
heatmap for Figure 5, and horizontal bars for distributions and ranked
regional changes (Figures 3, 7-9).
"""

from repro.viz.asciichart import line_chart
from repro.viz.bars import bar_chart
from repro.viz.heatmap import heatmap
from repro.viz.scatter import scatter

__all__ = ["bar_chart", "heatmap", "line_chart", "scatter"]
