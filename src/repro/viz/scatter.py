"""ASCII scatter plot (the Figure-9 panels)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["scatter"]


def scatter(
    x: Sequence[float],
    y: Sequence[float],
    title: str = "",
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render paired points as an ASCII scatter; overlaps darken (. o O @)."""
    xs = np.asarray(x, dtype=np.float64)
    ys = np.asarray(y, dtype=np.float64)
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    keep = ~(np.isnan(xs) | np.isnan(ys))
    xs, ys = xs[keep], ys[keep]
    if len(xs) == 0:
        raise ValueError("no finite points to plot")
    if width < 8 or height < 4:
        raise ValueError("plot must be at least 8x4")

    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    if x_lo == x_hi:
        x_hi = x_lo + 1.0
    if y_lo == y_hi:
        y_hi = y_lo + 1.0

    counts = np.zeros((height, width), dtype=int)
    for px, py in zip(xs, ys):
        i = int((py - y_lo) / (y_hi - y_lo) * (height - 1))
        j = int((px - x_lo) / (x_hi - x_lo) * (width - 1))
        counts[height - 1 - i, j] += 1

    ramp = " .oO@"
    peak = counts.max()
    lines = [title] if title else []
    label_width = max(len(f"{y_hi:.2f}"), len(f"{y_lo:.2f}"))
    for i, row in enumerate(counts):
        if i == 0:
            label = f"{y_hi:.2f}"
        elif i == height - 1:
            label = f"{y_lo:.2f}"
        else:
            label = ""
        cells = "".join(
            ramp[min(len(ramp) - 1, int(np.ceil(c / peak * (len(ramp) - 1))))]
            if c else " "
            for c in row
        )
        lines.append(f"{label.rjust(label_width)} |{cells}")
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(
        " " * label_width
        + f"  {x_label}: [{x_lo:.2f} .. {x_hi:.2f}]   {y_label} on the vertical"
    )
    return "\n".join(lines)
