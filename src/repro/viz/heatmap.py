"""Signed ASCII heatmap (Figure 5's border-AS change matrix)."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["heatmap"]

#: Increasing intensity for positive and negative values.
_POS = " .+oO@"
_NEG = " .-xX#"
_ABSENT = "■"  # the paper's black squares: no route in either period


def heatmap(
    matrix: Sequence[Sequence[float]],
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    absent: Optional[Sequence[Sequence[bool]]] = None,
    title: str = "",
    cell_width: int = 3,
) -> str:
    """Render a signed matrix; positive cells use ``+oO@``, negative ``-xX#``.

    The legend explains the encoding; ``absent`` cells (no routes at all)
    render as the filled square, matching the paper's black squares.
    """
    data = np.asarray(matrix, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("matrix must be 2-D")
    n_rows, n_cols = data.shape
    if len(row_labels) != n_rows or len(col_labels) != n_cols:
        raise ValueError(
            f"labels ({len(row_labels)}x{len(col_labels)}) do not match "
            f"matrix {data.shape}"
        )
    peak = np.abs(data).max()
    if peak == 0:
        peak = 1.0

    def cell(i: int, j: int) -> str:
        if absent is not None and absent[i][j]:
            return _ABSENT
        value = data[i, j]
        ramp = _POS if value >= 0 else _NEG
        idx = int(round(abs(value) / peak * (len(ramp) - 1)))
        return ramp[idx]

    label_width = max(len(str(l)) for l in row_labels)
    lines = []
    if title:
        lines.append(title)
    for i, label in enumerate(row_labels):
        row = "".join(cell(i, j).center(cell_width) for j in range(n_cols))
        lines.append(f"{str(label).rjust(label_width)} |{row}")
    lines.append(" " * label_width + " +" + "-" * (cell_width * n_cols))
    # Column labels, vertical-ish: print index row plus a legend list.
    idx_row = "".join(str(j % 10).center(cell_width) for j in range(n_cols))
    lines.append(" " * label_width + "  " + idx_row)
    for j, label in enumerate(col_labels):
        lines.append(" " * label_width + f"  [{j}] {label}")
    lines.append(
        f"legend: gain '{_POS[1:]}' loss '{_NEG[1:]}' none '{_ABSENT}' "
        f"(peak |delta| = {peak:.0f})"
    )
    return "\n".join(lines)
