"""ASCII line charts for daily time series."""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

__all__ = ["line_chart"]


def line_chart(
    values: Sequence[float],
    title: str = "",
    height: int = 12,
    marker_index: Optional[int] = None,
    y_fmt: str = ".1f",
) -> str:
    """Render one series as an ASCII chart.

    NaN values leave gaps.  ``marker_index`` draws a vertical dotted line
    (the paper's invasion-day marker) at that x position.
    """
    if height < 2:
        raise ValueError(f"height must be >= 2, got {height}")
    series = np.asarray(list(values), dtype=np.float64)
    if len(series) == 0:
        raise ValueError("empty series")
    finite = series[~np.isnan(series)]
    if len(finite) == 0:
        raise ValueError("series is all-NaN")
    lo, hi = float(finite.min()), float(finite.max())
    if math.isclose(lo, hi):
        hi = lo + 1.0

    def level(value: float) -> int:
        return int(round((value - lo) / (hi - lo) * (height - 1)))

    grid = [[" "] * len(series) for _ in range(height)]
    for x, value in enumerate(series):
        if np.isnan(value):
            continue
        y = level(value)
        grid[height - 1 - y][x] = "*"
    if marker_index is not None and 0 <= marker_index < len(series):
        for row in grid:
            if row[marker_index] == " ":
                row[marker_index] = ":"

    label_width = max(
        len(format(hi, y_fmt)), len(format(lo, y_fmt))
    )
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        if i == 0:
            label = format(hi, y_fmt)
        elif i == height - 1:
            label = format(lo, y_fmt)
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * len(series))
    return "\n".join(lines)
