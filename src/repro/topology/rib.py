"""Control-plane snapshots: per-day routing tables and their churn.

The paper observes routing only through the data plane (traceroutes).  A
BGP collector (RIPE RIS / RouteViews) would instead see *route updates*;
this module provides that complementary view over the simulation: for each
day, the route in effect for every (eyeball AS, M-Lab site) pair — exactly
what the sticky router resolves — and day-over-day diffs, i.e. the update
stream a collector would log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.topology.bgp import AsPath, StickyRouter
from repro.util.timeutil import Day, DayGrid

__all__ = ["RibSnapshot", "RouteChurnSeries", "compute_churn"]

PairKey = Tuple[int, int]


@dataclass(frozen=True)
class RibSnapshot:
    """All selected routes on one day."""

    day: Day
    routes: Dict[PairKey, Optional[Tuple[int, ...]]]

    def route_for(self, src: int, dst: int) -> Optional[Tuple[int, ...]]:
        return self.routes.get((src, dst))

    def n_reachable(self) -> int:
        return sum(1 for r in self.routes.values() if r is not None)


@dataclass(frozen=True)
class RouteChurnSeries:
    """Daily route-change counts over a grid."""

    grid: DayGrid
    changes: List[int]  # index 0 compares day 1 to day 0
    withdrawals: List[int]  # pairs that lost all routes that day

    def total_changes(self, start: Day, end: Day) -> int:
        total = 0
        for i, day in enumerate(self.grid.days()[1:]):
            if start <= day <= end:
                total += self.changes[i]
        return total

    def total_withdrawals(self, start: Day, end: Day) -> int:
        total = 0
        for i, day in enumerate(self.grid.days()[1:]):
            if start <= day <= end:
                total += self.withdrawals[i]
        return total


def compute_churn(
    router: StickyRouter,
    pairs: Sequence[PairKey],
    grid: DayGrid,
    down_links_by_day: Optional[Dict[int, FrozenSet]] = None,
) -> RouteChurnSeries:
    """Replay route selection over a day grid and count changes.

    ``down_links_by_day`` maps day ordinals to the outage sets the router
    should honour (empty when omitted) — pass the generator's wartime
    outage schedule to see war-driven churn.
    """
    if not pairs:
        raise ValueError("need at least one (src, dst) pair")
    down_links_by_day = down_links_by_day or {}
    previous: Dict[PairKey, Optional[Tuple[int, ...]]] = {}
    changes: List[int] = []
    withdrawals: List[int] = []
    for i, day in enumerate(grid.days()):
        down = down_links_by_day.get(day.ordinal, frozenset())
        current: Dict[PairKey, Optional[Tuple[int, ...]]] = {}
        for src, dst in pairs:
            path: Optional[AsPath] = router.route(src, dst, day.ordinal, down)
            current[(src, dst)] = path.asns if path is not None else None
        if i > 0:
            day_changes = 0
            day_withdrawals = 0
            for key in current:
                if current[key] != previous[key]:
                    day_changes += 1
                    if current[key] is None:
                        day_withdrawals += 1
            changes.append(day_changes)
            withdrawals.append(day_withdrawals)
        previous = current
    return RouteChurnSeries(grid=grid, changes=changes, withdrawals=withdrawals)
