"""IP address assignment for the simulated topology.

Each AS gets an infrastructure /16 (router interfaces seen in traceroutes);
eyeball ASes additionally get /20 client blocks per city they serve.  The
layer maintains the prefix→AS trie that the analysis pipeline uses to map
traceroute hop IPs back to ASNs (the routeviews-style lookup of Section 5),
and exports the ground-truth block→city list the geo database is built from.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.netbase.asn import ASRegistry
from repro.netbase.ipaddr import IPv4Address, IPv4Prefix
from repro.netbase.trie import PrefixTrie
from repro.util.errors import TopologyError

__all__ = ["IpLayer"]

#: Infrastructure space: one /16 per AS out of 10.0.0.0/8.
_INFRA_BASE = 10 << 24
_MAX_INFRA = 256

#: Client space: /20 blocks out of 100.64.0.0/10 (1024 blocks available).
_CLIENT_BASE = (100 << 24) | (64 << 16)
_CLIENT_BLOCK_LEN = 20
_MAX_CLIENT_BLOCKS = 1 << (_CLIENT_BLOCK_LEN - 10)


class IpLayer:
    """Allocates router and client address space and answers IP→AS queries."""

    def __init__(self, registry: ASRegistry):
        self._registry = registry
        self._infra: Dict[int, IPv4Prefix] = {}
        self._client_blocks: List[Tuple[IPv4Prefix, int, str]] = []
        self._blocks_by_as_city: Dict[Tuple[int, str], List[IPv4Prefix]] = {}
        self._trie: PrefixTrie = PrefixTrie()
        self._city_trie: PrefixTrie = PrefixTrie()

    # -- infrastructure -------------------------------------------------------
    def register_infrastructure(self, asn: int) -> IPv4Prefix:
        """Assign (idempotently) the AS's infrastructure /16."""
        if asn not in self._registry:
            raise TopologyError(f"cannot assign space to unregistered AS{asn}")
        if asn in self._infra:
            return self._infra[asn]
        index = len(self._infra)
        if index >= _MAX_INFRA:
            raise TopologyError(f"infrastructure space exhausted ({_MAX_INFRA} ASes)")
        prefix = IPv4Prefix(IPv4Address(_INFRA_BASE | (index << 16)), 16)
        self._infra[asn] = prefix
        self._trie.insert(prefix, asn)
        return prefix

    def infrastructure_prefix(self, asn: int) -> IPv4Prefix:
        try:
            return self._infra[asn]
        except KeyError:
            raise TopologyError(f"AS{asn} has no infrastructure space") from None

    def router_ip(self, asn: int, index: int) -> IPv4Address:
        """The ``index``-th router interface address of an AS."""
        prefix = self.infrastructure_prefix(asn)
        if not 0 <= index < prefix.n_addresses - 2:
            raise TopologyError(
                f"router index {index} out of range for AS{asn}'s /16"
            )
        return prefix.address_at(index + 1)

    # -- client blocks ----------------------------------------------------------
    def allocate_client_block(self, asn: int, city: str) -> IPv4Prefix:
        """Allocate the next /20 client block for an (AS, city) pair."""
        if asn not in self._registry:
            raise TopologyError(f"cannot allocate clients for unregistered AS{asn}")
        index = len(self._client_blocks)
        if index >= _MAX_CLIENT_BLOCKS:
            raise TopologyError(
                f"client space exhausted ({_MAX_CLIENT_BLOCKS} blocks)"
            )
        prefix = IPv4Prefix(
            IPv4Address(_CLIENT_BASE | (index << (32 - _CLIENT_BLOCK_LEN))),
            _CLIENT_BLOCK_LEN,
        )
        self._client_blocks.append((prefix, asn, city))
        self._blocks_by_as_city.setdefault((asn, city), []).append(prefix)
        self._trie.insert(prefix, asn)
        self._city_trie.insert(prefix, city)
        return prefix

    def client_blocks(self) -> List[Tuple[IPv4Prefix, int, str]]:
        """All allocated ``(prefix, asn, city)`` triples (geo-DB ground truth)."""
        return list(self._client_blocks)

    def blocks_for(self, asn: int, city: str) -> List[IPv4Prefix]:
        return list(self._blocks_by_as_city.get((asn, city), []))

    def served_cities(self, asn: int) -> List[str]:
        return sorted(
            {city for (a, city) in self._blocks_by_as_city if a == asn}
        )

    # -- lookups ------------------------------------------------------------------
    def as_of_ip(self, addr: IPv4Address) -> Optional[int]:
        """Longest-prefix-match IP→ASN (None for unknown space)."""
        return self._trie.lookup(addr)

    def city_of_client_ip(self, addr: IPv4Address) -> Optional[str]:
        """Ground-truth city of a client address (None for non-client space).

        This is allocation truth, not the geo database: the sidecar uses it
        to pick a metro-local gateway, the way access networks terminate
        subscribers at nearby aggregation routers.
        """
        return self._city_trie.lookup(addr)
