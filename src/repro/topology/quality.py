"""Per-link, per-day quality in (0, 1] combining war damage and schedules.

Quality is the single scalar routing and the NDT metric model share:
``1.0`` is a healthy link; lower values raise loss/RTT on traffic crossing
the link *and* make the route selector steer away from it.  Two sources
reduce quality:

* city-tagged links feel that city's edge-damage severity;
* explicit :class:`DegradationSchedule` entries model specific upstream
  problems — the Figure-6 case study (foreign AS 6663 degrading, pushing
  AS 199995's inbound traffic onto Hurricane Electric) is configured this
  way by the topology builder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.conflict.damage import EdgeDamageModel
from repro.topology.asgraph import Link
from repro.util.timeutil import Day
from repro.util.validation import check_fraction

__all__ = ["DegradationSchedule", "LinkQualityModel"]

LinkKey = Tuple[int, int]

_QUALITY_FLOOR = 0.05


@dataclass(frozen=True)
class DegradationSchedule:
    """A planned quality ramp for one link.

    Quality falls linearly from 1.0 at ``start`` to ``floor`` at ``end`` and
    stays at ``floor`` afterwards.

    ``affects_performance`` distinguishes two failure modes: a *congested or
    lossy* carrier (True — traffic crossing it suffers extra RTT/loss, the
    Figure-6 AS6663 case) versus *capacity withdrawal / depeering* (False —
    routes move away but surviving traffic is unharmed, the Figure-5 Cogent
    decline).
    """

    link_key: LinkKey
    start: Day
    end: Day
    floor: float
    affects_performance: bool = True

    def __post_init__(self) -> None:
        check_fraction("floor", self.floor)
        if self.floor < _QUALITY_FLOOR:
            raise ValueError(f"floor must be >= {_QUALITY_FLOOR}, got {self.floor}")
        if self.end < self.start:
            raise ValueError("schedule end precedes start")

    def quality_on(self, day_ordinal: int) -> float:
        if day_ordinal < self.start.ordinal:
            return 1.0
        if day_ordinal >= self.end.ordinal:
            return self.floor
        span = self.end.ordinal - self.start.ordinal
        progress = (day_ordinal - self.start.ordinal) / span
        return 1.0 - (1.0 - self.floor) * progress


class LinkQualityModel:
    """Combines edge damage and degradation schedules into link quality."""

    def __init__(
        self,
        edge_damage: Optional[EdgeDamageModel],
        schedules: Sequence[DegradationSchedule] = (),
        city_weight: float = 0.6,
    ):
        check_fraction("city_weight", city_weight)
        self._edge_damage = edge_damage
        self._city_weight = city_weight
        self._schedules: Dict[LinkKey, DegradationSchedule] = {}
        for sched in schedules:
            if sched.link_key in self._schedules:
                raise ValueError(f"duplicate schedule for link {sched.link_key}")
            self._schedules[sched.link_key] = sched

    def quality(self, link: Link, day_ordinal: int) -> float:
        """Quality of ``link`` on the given day, clamped to [floor, 1]."""
        quality = 1.0
        sched = self._schedules.get(link.key)
        if sched is not None:
            quality = sched.quality_on(day_ordinal)
        if link.city is not None and self._edge_damage is not None:
            severity = self._edge_damage.severity(link.city, Day(day_ordinal))
            quality *= 1.0 - self._city_weight * severity
        return max(_QUALITY_FLOOR, quality)

    def has_schedule(self, link_key: LinkKey) -> bool:
        return link_key in self._schedules

    def performance_quality(self, link: Link, day_ordinal: int) -> float:
        """Quality as felt by *traffic* (ignores routing-only schedules).

        Routing-only degradations (``affects_performance=False``) steer
        traffic away via :meth:`quality` but add no RTT/loss to tests that
        still cross the link.
        """
        sched = self._schedules.get(link.key)
        if sched is not None and not sched.affects_performance:
            return 1.0
        return self.quality(link, day_ordinal)
