"""The AS-level graph with business relationships."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.netbase.asn import ASRegistry
from repro.util.errors import TopologyError

__all__ = ["ASGraph", "Link", "LinkKind"]


class LinkKind(enum.Enum):
    """The business relationship a link encodes."""

    TRANSIT = "transit"  # a is the provider, b is the customer
    PEERING = "peering"  # settlement-free peers (stored with a < b)


@dataclass(frozen=True)
class Link:
    """An inter-AS adjacency with simulation attributes.

    For TRANSIT links, ``a`` is the provider and ``b`` the customer.  For
    PEERING links the pair is stored with ``a < b``.
    """

    a: int
    b: int
    kind: LinkKind
    base_rtt_ms: float  # one-way propagation+processing added by the link
    capacity_mbps: float  # throughput ceiling the link imposes
    city: Optional[str] = None  # Ukrainian city whose damage the link feels
    pref: float = 1.0  # BGP local-preference-like weight (higher = preferred)

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"self-link on AS{self.a}")
        if self.kind is LinkKind.PEERING and self.a > self.b:
            raise TopologyError(
                f"peering link ({self.a}, {self.b}) must be stored with a < b"
            )
        if self.base_rtt_ms < 0:
            raise ValueError(f"base_rtt_ms must be >= 0, got {self.base_rtt_ms}")
        if self.capacity_mbps <= 0:
            raise ValueError(f"capacity_mbps must be > 0, got {self.capacity_mbps}")
        if self.pref <= 0:
            raise ValueError(f"pref must be positive, got {self.pref}")

    @property
    def key(self) -> Tuple[int, int]:
        """Canonical undirected identity of the adjacency."""
        return (self.a, self.b) if self.a < self.b else (self.b, self.a)

    def other(self, asn: int) -> int:
        if asn == self.a:
            return self.b
        if asn == self.b:
            return self.a
        raise TopologyError(f"AS{asn} is not an endpoint of link {self.key}")

    def involves(self, asn: int) -> bool:
        return asn in (self.a, self.b)


class ASGraph:
    """Adjacency structure over registered ASes."""

    def __init__(self, registry: ASRegistry):
        self._registry = registry
        self._links: Dict[Tuple[int, int], Link] = {}
        self._providers: Dict[int, Set[int]] = {}
        self._customers: Dict[int, Set[int]] = {}
        self._peers: Dict[int, Set[int]] = {}

    @property
    def registry(self) -> ASRegistry:
        return self._registry

    def add(self, link: Link) -> None:
        """Add a link; both endpoints must be registered, no duplicates."""
        for asn in (link.a, link.b):
            if asn not in self._registry:
                raise TopologyError(f"link references unregistered AS{asn}")
        if link.key in self._links:
            raise TopologyError(f"duplicate link between AS{link.a} and AS{link.b}")
        self._links[link.key] = link
        if link.kind is LinkKind.TRANSIT:
            self._customers.setdefault(link.a, set()).add(link.b)
            self._providers.setdefault(link.b, set()).add(link.a)
        else:
            self._peers.setdefault(link.a, set()).add(link.b)
            self._peers.setdefault(link.b, set()).add(link.a)

    def link_between(self, x: int, y: int) -> Optional[Link]:
        return self._links.get((x, y) if x < y else (y, x))

    def links(self) -> List[Link]:
        return list(self._links.values())

    def providers(self, asn: int) -> Set[int]:
        return set(self._providers.get(asn, ()))

    def customers(self, asn: int) -> Set[int]:
        return set(self._customers.get(asn, ()))

    def peers(self, asn: int) -> Set[int]:
        return set(self._peers.get(asn, ()))

    def neighbors(self, asn: int) -> Set[int]:
        return self.providers(asn) | self.customers(asn) | self.peers(asn)

    def degree(self, asn: int) -> int:
        return len(self.neighbors(asn))

    def n_links(self) -> int:
        return len(self._links)

    def links_of(self, asn: int) -> List[Link]:
        return [l for l in self._links.values() if l.involves(asn)]

    def validate_connected(self, asns: List[int]) -> None:
        """Raise unless all given ASes lie in one connected component."""
        if not asns:
            return
        seen = {asns[0]}
        frontier = [asns[0]]
        while frontier:
            current = frontier.pop()
            for nxt in self.neighbors(current):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        missing = [a for a in asns if a not in seen]
        if missing:
            raise TopologyError(
                f"ASes not reachable from AS{asns[0]}: {sorted(missing)}"
            )
