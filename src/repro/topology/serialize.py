"""Topology (de)serialization to JSON.

Lets downstream users persist a custom topology, inspect the default one
outside Python, or hand-edit a what-if variant and load it back.  The
round-trip covers everything :func:`~repro.topology.builder.build_default_topology`
constructs: the AS registry, links with all attributes, city coverage,
primary cities, M-Lab sites, and degradation schedules.  The IP layer is
re-derived (allocation is deterministic given registry + coverage order).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.geo.gazetteer import Gazetteer, default_gazetteer
from repro.netbase.asn import ASRegistry, ASRole, AutonomousSystem
from repro.topology.asgraph import ASGraph, Link, LinkKind
from repro.topology.builder import SiteSpec, Topology
from repro.topology.iplayer import IpLayer
from repro.topology.quality import DegradationSchedule
from repro.util.errors import TopologyError
from repro.util.timeutil import Day

__all__ = ["topology_from_json", "topology_to_json"]

_FORMAT_VERSION = 1


def topology_to_json(topology: Topology) -> str:
    """Serialize a topology (without the IP layer, which is re-derived)."""
    doc = {
        "version": _FORMAT_VERSION,
        "ases": [
            {
                "asn": a.asn,
                "name": a.name,
                "country": a.country,
                "role": a.role.value,
            }
            for a in topology.registry
        ],
        "links": [
            {
                "a": l.a,
                "b": l.b,
                "kind": l.kind.value,
                "base_rtt_ms": l.base_rtt_ms,
                "capacity_mbps": l.capacity_mbps,
                "city": l.city,
                "pref": l.pref,
            }
            for l in sorted(topology.graph.links(), key=lambda l: l.key)
        ],
        # Coverage lists keep their original order: client-block allocation
        # iterates them, so order is part of the deterministic identity.
        "coverage": {
            city: list(asns) for city, asns in sorted(topology.coverage.items())
        },
        "primary_city": {
            str(asn): city for asn, city in sorted(topology.primary_city.items())
        },
        "mlab_sites": [
            {
                "asn": s.asn,
                "code": s.code,
                "country": s.country,
                "lat": s.lat,
                "lon": s.lon,
            }
            for s in sorted(topology.mlab_sites.values(), key=lambda s: s.asn)
        ],
        "degradation_schedules": [
            {
                "link_key": list(s.link_key),
                "start": s.start.iso(),
                "end": s.end.iso(),
                "floor": s.floor,
                "affects_performance": s.affects_performance,
            }
            for s in topology.degradation_schedules
        ],
    }
    return json.dumps(doc, indent=2)


def topology_from_json(text: str, gazetteer: Gazetteer = None) -> Topology:
    """Rebuild a topology from :func:`topology_to_json` output."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TopologyError(f"invalid topology JSON: {exc}") from exc
    if doc.get("version") != _FORMAT_VERSION:
        raise TopologyError(
            f"unsupported topology format version {doc.get('version')!r}"
        )
    gaz = gazetteer if gazetteer is not None else default_gazetteer()

    registry = ASRegistry()
    for entry in doc["ases"]:
        registry.register(
            AutonomousSystem(
                entry["asn"], entry["name"], entry["country"], ASRole(entry["role"])
            )
        )

    graph = ASGraph(registry)
    for entry in doc["links"]:
        graph.add(
            Link(
                a=entry["a"],
                b=entry["b"],
                kind=LinkKind(entry["kind"]),
                base_rtt_ms=entry["base_rtt_ms"],
                capacity_mbps=entry["capacity_mbps"],
                city=entry["city"],
                pref=entry.get("pref", 1.0),
            )
        )

    coverage: Dict[str, List[int]] = {
        city: list(asns) for city, asns in doc["coverage"].items()
    }
    primary_city = {int(asn): city for asn, city in doc["primary_city"].items()}
    mlab_sites = {
        entry["asn"]: SiteSpec(
            entry["asn"], entry["code"], entry["country"], entry["lat"], entry["lon"]
        )
        for entry in doc["mlab_sites"]
    }
    schedules = [
        DegradationSchedule(
            link_key=tuple(entry["link_key"]),
            start=Day.of(entry["start"]),
            end=Day.of(entry["end"]),
            floor=entry["floor"],
            affects_performance=entry.get("affects_performance", True),
        )
        for entry in doc["degradation_schedules"]
    ]

    # Re-derive the IP layer: deterministic given registration/coverage order.
    iplayer = IpLayer(registry)
    for asys in registry:
        iplayer.register_infrastructure(asys.asn)
    blocks_per_pair = 8
    for city in gaz.city_names():
        if city not in coverage or not coverage[city]:
            raise TopologyError(f"coverage missing for city {city!r}")
        for asn in coverage[city]:
            for _ in range(blocks_per_pair):
                iplayer.allocate_client_block(asn, city)

    graph.validate_connected([a.asn for a in registry])
    return Topology(
        registry=registry,
        graph=graph,
        iplayer=iplayer,
        gazetteer=gaz,
        coverage=coverage,
        primary_city=primary_city,
        mlab_sites=mlab_sites,
        degradation_schedules=schedules,
    )
