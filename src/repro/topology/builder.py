"""Construction of the default simulated Ukrainian Internet.

The AS inventory combines the paper's named ASes (the Table-3 top-10
eyeballs, the Figure-6 case-study ASes 199995/6663/6939, the big border
carriers of Figure 5) with synthetic regional ISPs so that every gazetteer
city is served by at least three access networks.  M-Lab sites sit in
foreign ASes, each behind a distinct transit provider, mirroring the real
platform's deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.geo.gazetteer import Gazetteer, default_gazetteer
from repro.netbase.asn import ASRegistry, ASRole, AutonomousSystem
from repro.topology.asgraph import ASGraph, Link, LinkKind
from repro.topology.iplayer import IpLayer
from repro.topology.quality import DegradationSchedule
from repro.util.errors import TopologyError
from repro.util.timeutil import Day

__all__ = ["SiteSpec", "Topology", "build_default_topology"]

# -- the paper's named ASes ----------------------------------------------------

#: The Figure-6 case study: Ukrainian AS whose inbound traffic shifts to HE.
CASE_STUDY_UA_ASN = 199995
#: Hurricane Electric — gains inbound share during the war (Figures 5-6).
HURRICANE_ELECTRIC = 6939
#: The degrading foreign upstream of AS199995 in Figure 6.
DEGRADING_BORDER_ASN = 6663
#: Cogent — loses inbound share during the war (Figure 5).
COGENT = 174

# (asn, name, primary city, all served cities)
# The first ten entries are Table 3's top-10, with real ASNs and names.
_EYEBALLS: List[Tuple[int, str, str, Tuple[str, ...]]] = [
    (15895, "Kyivstar", "Kyiv", ("*",)),  # "*" = nationwide
    (3255, "UARNet", "Lviv", ("Lviv", "Kyiv", "Kharkiv")),
    (25229, "Kyiv Telecom", "Kyiv", ("Kyiv",)),
    (35297, "Dataline", "Kyiv", ("Kyiv",)),
    (21488, "Emplot LTd.", "Chernihiv", ("Chernihiv", "Kyiv")),
    (21497, "Vodafone UKr", "Kyiv", ("*",)),
    (6876, "TeNeT", "Odessa", ("Odessa",)),
    (50581, "Ukr Telecom", "Kyiv", ("Kyiv", "Kharkiv", "Dnipro", "Kherson")),
    (39608, "Lanet", "Kyiv", ("Kyiv", "Chernihiv")),
    (13307, "SKIF ISP Ltd.", "Kyiv", ("Kyiv",)),
    # Additional real/synthetic ISPs for full city coverage.
    (13188, "Triolan", "Kharkiv", ("Kharkiv", "Kyiv", "Dnipro", "Mariupol")),
    (12883, "Vega", "Dnipro", ("Dnipro", "Zaporizhzhia", "Mariupol")),
    (34700, "AzovNet", "Mariupol", ("Mariupol", "Donetsk")),
    (35004, "Halychyna Net", "Lviv",
     ("Lviv", "Ivano-Frankivsk", "Ternopil", "Uzhhorod", "Chernivtsi",
      "Lutsk", "Rivne", "Khmelnytskyi")),
    (31148, "Freenet", "Kyiv",
     ("Kyiv", "Vinnytsia", "Zhytomyr", "Cherkasy", "Kropyvnytskyi",
      "Poltava", "Sumy", "Bila Tserkva")),
    (28761, "CrimeaCom", "Simferopol", ("Simferopol", "Sevastopol")),
    (48004, "SouthNet", "Kherson", ("Kherson", "Mykolaiv", "Odessa", "Zaporizhzhia")),
    (44800, "SlobodaNet", "Kharkiv", ("Kharkiv", "Sumy", "Poltava", "Severodonetsk")),
    (41000, "DonbasTel", "Donetsk", ("Donetsk", "Severodonetsk", "Mariupol")),
]

# Ukrainian transit/aggregation networks.
_UA_TRANSITS: List[Tuple[int, str]] = [
    (CASE_STUDY_UA_ASN, "UA-Transit 199995"),
    (3326, "Datagroup"),
    (6849, "Ukrtelecom"),
    (35320, "Eurotranstelecom"),
]

# Foreign border carriers (Figure 5's vertical axis).
_BORDERS: List[Tuple[int, str, str]] = [
    (HURRICANE_ELECTRIC, "Hurricane Electric", "US"),
    (COGENT, "Cogent Networks", "US"),
    (9002, "RETN", "GB"),
    (1299, "Arelion", "SE"),
    (3356, "Lumen", "US"),
    (3257, "GTT", "DE"),
    (DEGRADING_BORDER_ASN, "Euroweb", "RO"),
]

# Eyeball -> its Ukrainian transit (or direct foreign) providers.
_EYEBALL_PROVIDERS: Dict[int, Tuple[int, ...]] = {
    15895: (6849, 3326, CASE_STUDY_UA_ASN),
    21497: (3326, 35320, CASE_STUDY_UA_ASN),
    3255: (9002, 3257, CASE_STUDY_UA_ASN),
    25229: (CASE_STUDY_UA_ASN, 6849),
    35297: (3326, CASE_STUDY_UA_ASN),
    21488: (6849, 35320),
    6876: (3326, 35320),
    50581: (6849, 3326),
    39608: (CASE_STUDY_UA_ASN, 3326),
    13307: (35320, CASE_STUDY_UA_ASN),
    13188: (6849, 35320),
    12883: (3326, 35320),
    34700: (6849, 35320),
    35004: (3326, 9002),
    31148: (6849, CASE_STUDY_UA_ASN),
    28761: (35320, 6849),
    48004: (3326, 6849),
    44800: (6849, 35320),
    41000: (35320, 6849),
}

# Ukrainian transit -> foreign border providers.  AS199995's three foreign
# upstreams match Figure 6 (HE, Euroweb, RETN).
_TRANSIT_PROVIDERS: Dict[int, Tuple[int, ...]] = {
    CASE_STUDY_UA_ASN: (HURRICANE_ELECTRIC, DEGRADING_BORDER_ASN, 9002),
    3326: (COGENT, 1299, HURRICANE_ELECTRIC),
    6849: (COGENT, 3356, HURRICANE_ELECTRIC),
    35320: (3257, 9002, COGENT),
}

# Settlement-free peerings among the border carriers.
_BORDER_PEERINGS: List[Tuple[int, int]] = [
    (HURRICANE_ELECTRIC, COGENT),
    (HURRICANE_ELECTRIC, 1299),
    (HURRICANE_ELECTRIC, 3356),
    (HURRICANE_ELECTRIC, 3257),
    (HURRICANE_ELECTRIC, 9002),
    (HURRICANE_ELECTRIC, DEGRADING_BORDER_ASN),
    (COGENT, 1299),
    (COGENT, 3356),
    (COGENT, 3257),
    (COGENT, 9002),
    (1299, 3356),
    (1299, 3257),
    (1299, 9002),
    (1299, DEGRADING_BORDER_ASN),
    (3356, 3257),
    (9002, DEGRADING_BORDER_ASN),
]

# M-Lab sites: (asn, site code, country, lat, lon, transit providers).
# waw01, the site nearest to most Ukrainian clients, is multihomed to the
# case-study border carriers: Euroweb (AS6663) wins its traffic prewar on
# the deterministic tie-break, and Hurricane Electric takes over once
# AS6663's link into Ukraine degrades — the Figure-6 dynamic.
_MLAB_SITES: List[Tuple[int, str, str, float, float, Tuple[int, ...]]] = [
    (64496, "waw01", "PL", 52.23, 21.01,
     (9002, 1299, HURRICANE_ELECTRIC, DEGRADING_BORDER_ASN)),
    (64497, "fra01", "DE", 50.11, 8.68, (COGENT, 3356)),
    (64498, "prg01", "CZ", 50.08, 14.44, (3257, 1299, COGENT)),
    (64499, "ams01", "NL", 52.37, 4.90, (HURRICANE_ELECTRIC, COGENT)),
    (64500, "buh01", "RO", 44.43, 26.10,
     (DEGRADING_BORDER_ASN, 9002, HURRICANE_ELECTRIC)),
    (64501, "sto01", "SE", 59.33, 18.07, (1299,)),
    (64502, "vie01", "AT", 48.21, 16.37, (3257, HURRICANE_ELECTRIC, COGENT)),
    (64503, "mad01", "ES", 40.42, -3.70, (3356,)),
]


@dataclass(frozen=True)
class SiteSpec:
    """Location/identity of one M-Lab site AS."""

    asn: int
    code: str
    country: str
    lat: float
    lon: float


@dataclass
class Topology:
    """The assembled simulated Internet."""

    registry: ASRegistry
    graph: ASGraph
    iplayer: IpLayer
    gazetteer: Gazetteer
    #: city -> eyeball ASNs serving it
    coverage: Dict[str, List[int]]
    #: eyeball ASN -> its primary city (used for link damage tags)
    primary_city: Dict[int, str]
    #: M-Lab site specs keyed by site AS
    mlab_sites: Dict[int, SiteSpec]
    #: planned link-quality ramps (the Figure-6 case study lives here)
    degradation_schedules: List[DegradationSchedule] = field(default_factory=list)

    def eyeball_asns(self) -> List[int]:
        return [a.asn for a in self.registry.with_role(ASRole.EYEBALL)]

    def cities_of(self, asn: int) -> List[str]:
        """Cities an AS serves, in canonical (sorted) order.

        The order is part of the deterministic identity: router-index city
        bands are assigned by position in this list.
        """
        return sorted(city for city, asns in self.coverage.items() if asn in asns)

    def war_sensitive_links(self) -> Dict[Tuple[int, int], Optional[str]]:
        """``{link key: city tag}`` for the outage process (tagged links only)."""
        return {
            link.key: link.city
            for link in self.graph.links()
            if link.city is not None
        }


def _access_link_rtt(primary_city: str) -> float:
    """Access-to-transit latency: a few ms, deterministic per city name.

    Uses a stable character-sum hash (``hash()`` is salted per process and
    would make the topology nondeterministic across runs).
    """
    return 1.5 + (sum(ord(c) for c in primary_city) % 40) / 10.0


def build_default_topology(gazetteer: Optional[Gazetteer] = None) -> Topology:
    """Build the default topology over the default (or given) gazetteer."""
    gaz = gazetteer if gazetteer is not None else default_gazetteer()
    registry = ASRegistry()
    all_cities = gaz.city_names()

    for asn, name, _primary, _cities in _EYEBALLS:
        registry.register(AutonomousSystem(asn, name, "UA", ASRole.EYEBALL))
    for asn, name in _UA_TRANSITS:
        registry.register(AutonomousSystem(asn, name, "UA", ASRole.REGIONAL))
    for asn, name, country in _BORDERS:
        registry.register(AutonomousSystem(asn, name, country, ASRole.BORDER))
    for asn, code, country, _lat, _lon, _providers in _MLAB_SITES:
        registry.register(
            AutonomousSystem(asn, f"M-Lab {code}", country, ASRole.MLAB)
        )

    graph = ASGraph(registry)
    primary_city: Dict[int, str] = {}
    coverage: Dict[str, List[int]] = {city: [] for city in all_cities}

    for asn, _name, primary, cities in _EYEBALLS:
        primary_city[asn] = primary
        served = all_cities if cities == ("*",) else list(cities)
        for city in served:
            if city not in coverage:
                raise TopologyError(f"AS{asn} serves unknown city {city!r}")
            coverage[city].append(asn)

    # Eyeball -> provider links, tagged with the eyeball's primary city so
    # they feel that city's war damage (forcing reroutes).
    for asn, providers in _EYEBALL_PROVIDERS.items():
        if asn not in primary_city:
            raise TopologyError(f"provider map references unknown eyeball AS{asn}")
        for provider in providers:
            graph.add(
                Link(
                    a=provider,
                    b=asn,
                    kind=LinkKind.TRANSIT,
                    base_rtt_ms=_access_link_rtt(primary_city[asn]),
                    capacity_mbps=2000.0,
                    city=primary_city[asn],
                )
            )

    # Ukrainian transit -> foreign border links (untagged: their problems are
    # modelled with explicit degradation schedules, not city damage).
    # Local preferences: AS199995 prefers its Euroweb transit prewar (the
    # Figure-6 starting point); Hurricane Electric's ubiquitous cheap transit
    # is mildly preferred everywhere (where wartime traffic lands).
    for asn, providers in _TRANSIT_PROVIDERS.items():
        for provider in providers:
            pref = 1.0
            if (provider, asn) == (DEGRADING_BORDER_ASN, CASE_STUDY_UA_ASN):
                pref = 3.0
            elif (provider, asn) == (HURRICANE_ELECTRIC, CASE_STUDY_UA_ASN):
                # AS199995's fallback of choice once Euroweb degrades (Fig 6).
                pref = 2.0
            elif provider == COGENT:
                # Cogent is a major prewar carrier into Ukraine — Figure 5
                # shows it losing that share once its links degrade.
                pref = 2.0
            elif provider == HURRICANE_ELECTRIC:
                pref = 1.4
            graph.add(
                Link(
                    a=provider,
                    b=asn,
                    kind=LinkKind.TRANSIT,
                    base_rtt_ms=9.0,
                    capacity_mbps=10_000.0,
                    city=None,
                    pref=pref,
                )
            )

    for a, b in _BORDER_PEERINGS:
        graph.add(
            Link(
                a=min(a, b),
                b=max(a, b),
                kind=LinkKind.PEERING,
                base_rtt_ms=6.0,
                capacity_mbps=40_000.0,
                city=None,
            )
        )

    mlab_sites: Dict[int, SiteSpec] = {}
    for asn, code, country, lat, lon, providers in _MLAB_SITES:
        mlab_sites[asn] = SiteSpec(asn, code, country, lat, lon)
        for provider in providers:
            graph.add(
                Link(
                    a=provider,
                    b=asn,
                    kind=LinkKind.TRANSIT,
                    base_rtt_ms=3.0,
                    capacity_mbps=10_000.0,
                    city=None,
                )
            )

    # Address space: infrastructure for every AS, client blocks per coverage.
    iplayer = IpLayer(registry)
    for asys in registry:
        iplayer.register_infrastructure(asys.asn)
    # Several blocks per (AS, city): geo-DB label errors are per *block*, so
    # multiple blocks keep each population's labeled fraction near the
    # configured rates instead of all-or-nothing.
    blocks_per_pair = 8
    for city in all_cities:
        if not coverage[city]:
            raise TopologyError(f"city {city!r} has no serving AS")
        for asn in coverage[city]:
            for _ in range(blocks_per_pair):
                iplayer.allocate_client_block(asn, city)

    graph.validate_connected([a.asn for a in registry])

    # The Figure-6 case study: AS6663's link into AS199995 degrades over the
    # first month of the war, pushing traffic onto Hurricane Electric.  A
    # milder ramp on Cogent's links reproduces Figure 5's Cogent decline.
    schedules = [
        DegradationSchedule(
            link_key=tuple(sorted((DEGRADING_BORDER_ASN, CASE_STUDY_UA_ASN))),
            start=Day.of("2022-02-24"),
            end=Day.of("2022-03-24"),
            floor=0.15,
        ),
        DegradationSchedule(
            link_key=tuple(sorted((COGENT, 3326))),
            start=Day.of("2022-02-26"),
            end=Day.of("2022-03-12"),
            floor=0.20,
            affects_performance=False,  # capacity withdrawal: routes move,
        ),                              # surviving traffic is unharmed
        DegradationSchedule(
            link_key=tuple(sorted((COGENT, 6849))),
            start=Day.of("2022-02-26"),
            end=Day.of("2022-03-12"),
            floor=0.20,
            affects_performance=False,  # capacity withdrawal: routes move,
        ),                              # surviving traffic is unharmed
        DegradationSchedule(
            link_key=tuple(sorted((COGENT, 35320))),
            start=Day.of("2022-02-26"),
            end=Day.of("2022-03-12"),
            floor=0.20,
            affects_performance=False,  # capacity withdrawal: routes move,
        ),                              # surviving traffic is unharmed
    ]

    return Topology(
        registry=registry,
        graph=graph,
        iplayer=iplayer,
        gazetteer=gaz,
        coverage=coverage,
        primary_city=primary_city,
        mlab_sites=mlab_sites,
        degradation_schedules=schedules,
    )
