"""AS-level topology of the simulated Ukrainian Internet.

The topology is an AS graph with business relationships (customer/provider
and peer), an IP layer assigning router and client address space per AS, and
a valley-free (Gao-Rexford) route computation.  Routing under link outages
produced by the damage process is what generates the paper's observed path
diversity and border-AS shifts.
"""

from repro.topology.asgraph import ASGraph, Link, LinkKind
from repro.topology.bgp import AsPath, RouteSelector, StickyRouter, valley_free_paths
from repro.topology.builder import Topology, build_default_topology
from repro.topology.iplayer import IpLayer
from repro.topology.quality import LinkQualityModel

__all__ = [
    "ASGraph",
    "AsPath",
    "IpLayer",
    "Link",
    "LinkKind",
    "LinkQualityModel",
    "RouteSelector",
    "StickyRouter",
    "Topology",
    "build_default_topology",
    "valley_free_paths",
]
