"""Valley-free (Gao-Rexford) route computation and selection.

An AS path is *valley-free* when it climbs customer→provider links, crosses
at most one peering link, then descends provider→customer links.  Candidate
paths are ranked the way BGP policy prefers routes — customer routes over
peer routes over provider routes, then shorter AS paths, then a
deterministic tie-break — and the :class:`RouteSelector` samples among the
top candidates with weights derived from link quality.  That last step
models the traffic engineering the paper observes (operators steering away
from degraded upstreams, e.g. AS199995 shifting toward Hurricane Electric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.topology.asgraph import ASGraph, Link, LinkKind
from repro.util.errors import TopologyError

__all__ = ["AsPath", "RouteSelector", "StickyRouter", "valley_free_paths"]

LinkKey = Tuple[int, int]


@dataclass(frozen=True)
class AsPath:
    """A candidate AS-level route with its policy rank ingredients."""

    asns: Tuple[int, ...]
    used_up: bool  # traversed any customer->provider link
    used_peer: bool  # traversed a peering link

    @property
    def n_hops(self) -> int:
        return len(self.asns) - 1

    def rank(self) -> Tuple[int, int, int, Tuple[int, ...]]:
        """Lexicographic policy preference (smaller is better)."""
        return (int(self.used_up), int(self.used_peer), self.n_hops, self.asns)

    def links(self, graph: ASGraph) -> List[Link]:
        out = []
        for x, y in zip(self.asns, self.asns[1:]):
            link = graph.link_between(x, y)
            if link is None:
                raise TopologyError(f"path references missing link AS{x}-AS{y}")
            out.append(link)
        return out

    def __str__(self) -> str:
        return " ".join(f"AS{a}" for a in self.asns)


def valley_free_paths(
    graph: ASGraph,
    src: int,
    dst: int,
    excluded: FrozenSet[LinkKey] = frozenset(),
    max_hops: int = 7,
    max_paths: int = 64,
) -> List[AsPath]:
    """Enumerate valley-free paths from ``src`` to ``dst``, best-ranked first.

    ``excluded`` holds canonical link keys (see :attr:`Link.key`) that are
    currently down.  Enumeration is a depth-first search over the
    up*-peer?-down* automaton with per-path loop prevention, bounded by
    ``max_hops``; results are sorted by :meth:`AsPath.rank` and truncated to
    ``max_paths``.
    """
    if src == dst:
        return [AsPath((src,), used_up=False, used_peer=False)]
    for asn in (src, dst):
        if asn not in graph.registry:
            raise TopologyError(f"unknown AS{asn}")

    results: List[AsPath] = []
    # Phase: 0 = may still climb, 1 = crossed the peak (peer edge), 2 = descending.
    def dfs(node: int, phase: int, path: List[int], used_up: bool, used_peer: bool) -> None:
        if len(results) >= max_paths * 4:
            return  # enough raw candidates; ranking keeps the best
        if len(path) - 1 >= max_hops:
            return
        steps: List[Tuple[int, int, bool, bool]] = []
        if phase == 0:
            for nxt in graph.providers(node):
                steps.append((nxt, 0, True, used_peer))
            for nxt in graph.peers(node):
                steps.append((nxt, 1, used_up, True))
        for nxt in graph.customers(node):
            steps.append((nxt, 2, used_up, used_peer))
        for nxt, nxt_phase, up, peer in steps:
            if nxt in path:
                continue
            link = graph.link_between(node, nxt)
            if link is not None and link.key in excluded:
                continue
            if nxt == dst:
                results.append(AsPath(tuple(path + [nxt]), up, peer))
                continue
            path.append(nxt)
            dfs(nxt, nxt_phase, path, up, peer)
            path.pop()

    dfs(src, 0, [src], False, False)
    results.sort(key=AsPath.rank)
    return results[:max_paths]


class RouteSelector:
    """Samples an AS path for a test, weighting by policy rank and quality.

    Candidate routes are grouped into *tiers* by Gao-Rexford class and AS
    hop count.  A lower tier strongly dominates (``rank_decay`` per tier —
    BGP prefers customer routes and shorter paths outright); within a tier,
    selection follows link local-preferences and current link quality, with
    a mild positional decay over a stable per-pair permutation (different
    AS pairs break policy ties differently).

    Parameters
    ----------
    quality_fn:
        ``quality_fn(link, day_ordinal) -> float in (0, 1]``; down links are
        excluded before sampling (see :func:`valley_free_paths`).
    rank_decay:
        Weight multiplier per (class, hops) tier.
    within_decay:
        Weight multiplier per position inside one tier.
    """

    def __init__(
        self,
        graph: ASGraph,
        quality_fn: Callable[[Link, int], float],
        rank_decay: float = 0.25,
        within_decay: float = 0.6,
        max_candidates: int = 8,
    ):
        if not 0.0 < rank_decay <= 1.0:
            raise ValueError(f"rank_decay must be in (0, 1], got {rank_decay}")
        if not 0.0 < within_decay <= 1.0:
            raise ValueError(f"within_decay must be in (0, 1], got {within_decay}")
        if max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        self._graph = graph
        self._quality_fn = quality_fn
        self._rank_decay = rank_decay
        self._within_decay = within_decay
        self._max_candidates = max_candidates
        self._path_cache: dict = {}

    def candidates(
        self, src: int, dst: int, excluded: FrozenSet[LinkKey]
    ) -> List[AsPath]:
        """Cached top candidate paths for a (src, dst, outage-set) triple.

        Within each (route class, hop count) tier the order is a stable
        per-(src, dst) permutation rather than a global rule: real AS pairs
        break policy ties differently (IGP distances, contracts), and a
        global tie-break would funnel the whole country through whichever
        carrier happens to sort first.
        """
        key = (src, dst, excluded)
        if key not in self._path_cache:
            paths = valley_free_paths(self._graph, src, dst, excluded)
            paths.sort(
                key=lambda p: (
                    int(p.used_up),
                    int(p.used_peer),
                    p.n_hops,
                    _stable_rng(src, dst, *p.asns).random(),
                )
            )
            self._path_cache[key] = paths[: self._max_candidates]
        return self._path_cache[key]

    def _link_factor(self, path: AsPath, day_ordinal: int) -> float:
        """Product of local-pref x quality over the path's links."""
        factor = 1.0
        for link in path.links(self._graph):
            quality = self._quality_fn(link, day_ordinal)
            if not 0.0 < quality <= 1.0:
                raise ValueError(
                    f"quality_fn returned {quality} for link {link.key}; "
                    "must be in (0, 1]"
                )
            factor *= quality * link.pref
        return factor

    def path_weights(
        self, candidates: Sequence[AsPath], day_ordinal: int
    ) -> np.ndarray:
        """Unnormalized selection weights for an ordered candidate list."""
        weights = np.empty(len(candidates))
        tier_index = -1
        within = 0
        last_tier = None
        for i, path in enumerate(candidates):
            tier = (path.used_up, path.used_peer, path.n_hops)
            if tier != last_tier:
                tier_index += 1
                within = 0
                last_tier = tier
            else:
                within += 1
            weights[i] = (
                self._rank_decay**tier_index
                * self._within_decay**within
                * self._link_factor(path, day_ordinal)
            )
        return weights

    def select(
        self,
        src: int,
        dst: int,
        day_ordinal: int,
        excluded: FrozenSet[LinkKey],
        rng: np.random.Generator,
    ) -> Optional[AsPath]:
        """Pick the AS path a test uses on a given day (None if unreachable)."""
        candidates = self.candidates(src, dst, excluded)
        if not candidates:
            return None
        weights = self.path_weights(candidates, day_ordinal)
        total = weights.sum()
        if total <= 0.0:
            return candidates[0]
        idx = rng.choice(len(candidates), p=weights / total)
        return candidates[int(idx)]

    def cache_size(self) -> int:
        return len(self._path_cache)

    @property
    def graph(self) -> ASGraph:
        return self._graph


def _stable_rng(*parts: int) -> np.random.Generator:
    """A generator seeded purely by its integer arguments (process-stable)."""
    import hashlib

    data = ",".join(str(p) for p in parts).encode("ascii")
    seed = int.from_bytes(hashlib.blake2s(data, digest_size=8).digest(), "little")
    return np.random.Generator(np.random.PCG64(seed))


class StickyRouter:
    """BGP-like route stability on top of :class:`RouteSelector`.

    Real inter-domain routes do not change per flow: an AS pair keeps one
    selected route until an event (failure, policy/traffic-engineering
    change) replaces it.  The sticky router therefore:

    * gives each (src, dst) pair a *frozen Gumbel-max* choice: candidate
      scores are ``log(weight) + pair_noise + 0.35 * epoch_noise``, where
      the pair noise never changes.  Across many pairs the selected routes
      follow the weight distribution (so local-prefs and quality shape
      aggregate shares), while each single pair keeps its route until the
      underlying weights move — exactly how a degrading upstream (the
      Figure-6 AS 6663 ramp) sheds pairs one by one.  The small
      epoch-scoped noise adds the occasional routine reconvergence.
    * fails over deterministically-for-the-day when the sticky route
      traverses a link that is down, and reverts once it is repaired —
      wartime outages are what inject the *new* paths of Table 2.
    """

    #: Relative strength of the per-epoch jitter vs the frozen pair noise.
    #: Kept small: routine reconvergence is rare next to genuine
    #: quality-driven migration, or baseline path churn would swamp the
    #: war signal (DESIGN.md ablation 1).
    EPOCH_JITTER = 0.2

    def __init__(self, selector: RouteSelector, seed: int, epoch_days: int = 14):
        if epoch_days < 1:
            raise ValueError(f"epoch_days must be >= 1, got {epoch_days}")
        self._selector = selector
        self._seed = int(seed)
        self._epoch_days = epoch_days
        self._epoch_choice: dict = {}

    def _pair_offset(self, src: int, dst: int) -> int:
        return int(_stable_rng(self._seed, src, dst, 1).integers(self._epoch_days))

    @staticmethod
    def _gumbel(rng: np.random.Generator) -> float:
        u = rng.random()
        return -np.log(-np.log(min(max(u, 1e-12), 1.0 - 1e-12)))

    def _choose(self, src: int, dst: int, epoch: int, epoch_start: int) -> Optional[AsPath]:
        candidates = self._selector.candidates(src, dst, frozenset())
        if not candidates:
            return None
        weights = self._selector.path_weights(candidates, epoch_start)
        best_index = 0
        best_score = -np.inf
        for i, (path, weight) in enumerate(zip(candidates, weights)):
            if weight <= 0:
                continue
            pair_noise = self._gumbel(_stable_rng(self._seed, src, dst, *path.asns))
            epoch_noise = self._gumbel(
                _stable_rng(self._seed, src, dst, epoch, *path.asns)
            )
            score = float(np.log(weight)) + pair_noise + self.EPOCH_JITTER * epoch_noise
            if score > best_score:
                best_score = score
                best_index = i
        return candidates[best_index]

    def route(
        self,
        src: int,
        dst: int,
        day_ordinal: int,
        down_links: FrozenSet[LinkKey] = frozenset(),
    ) -> Optional[AsPath]:
        """The route in effect for (src, dst) on a day (None if partitioned)."""
        offset = self._pair_offset(src, dst)
        epoch = (day_ordinal + offset) // self._epoch_days
        key = (src, dst, epoch)
        if key not in self._epoch_choice:
            epoch_start = epoch * self._epoch_days - offset
            self._epoch_choice[key] = self._choose(src, dst, epoch, epoch_start)
        path = self._epoch_choice[key]
        if path is None:
            return None
        if down_links and any(
            link.key in down_links for link in path.links(self._selector.graph)
        ):
            rng = _stable_rng(self._seed, src, dst, day_ordinal, 2)
            return self._selector.select(src, dst, day_ordinal, down_links, rng)
        return path
