"""Dated war events, as referenced in the paper.

Every event the paper uses to explain a feature of the data is encoded here
with its date and scope, so analyses and the generator share one timeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, List

from repro.geo.gazetteer import ConflictZone
from repro.util.timeutil import Day

__all__ = ["EventKind", "WarEvent", "default_timeline", "INVASION_DAY"]

#: February 24, 2022 — the start of the invasion and the prewar/wartime split.
INVASION_DAY = Day.of("2022-02-24")


class EventKind(enum.Enum):
    """What sort of event this is (drives different simulation responses)."""

    INVASION = "invasion"  # war begins: intensities ramp up
    SIEGE = "siege"  # a city is encircled: its traffic collapses
    SHELLING = "shelling"  # heavy bombardment: edge damage spike + user flight
    OUTAGE = "outage"  # national ISP outage (e.g. Ukrtelecom, Mar 10)
    WITHDRAWAL = "withdrawal"  # front recedes: intensity decays
    MISSILE_STRIKE = "missile_strike"  # isolated strike outside the fronts


@dataclass(frozen=True)
class WarEvent:
    """A dated event with regional and (optionally) city-level scope."""

    day: Day
    name: str
    kind: EventKind
    zones: FrozenSet[ConflictZone] = field(default_factory=frozenset)
    cities: FrozenSet[str] = field(default_factory=frozenset)
    magnitude: float = 1.0  # relative severity in [0, 1]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("event name must be non-empty")
        if not 0.0 <= self.magnitude <= 1.0:
            raise ValueError(f"magnitude must be in [0, 1], got {self.magnitude}")

    def applies_to_city(self, city: str) -> bool:
        return city in self.cities

    def applies_to_zone(self, zone: ConflictZone) -> bool:
        return zone in self.zones


def default_timeline() -> List[WarEvent]:
    """The events the paper anchors its analysis on, in date order."""
    z = ConflictZone
    return [
        WarEvent(
            day=INVASION_DAY,
            name="Russian invasion begins",
            kind=EventKind.INVASION,
            zones=frozenset({z.NORTH, z.EAST, z.SOUTH, z.CENTER, z.WEST}),
            magnitude=1.0,
        ),
        WarEvent(
            day=Day.of("2022-03-01"),
            name="Russian forces surround Mariupol",
            kind=EventKind.SIEGE,
            zones=frozenset({z.EAST}),
            cities=frozenset({"Mariupol"}),
            magnitude=1.0,
        ),
        WarEvent(
            day=Day.of("2022-03-10"),
            name="National outages: Ukrtelecom down 40min, Triolan >12h",
            kind=EventKind.OUTAGE,
            zones=frozenset({z.NORTH, z.EAST, z.SOUTH, z.CENTER, z.WEST}),
            magnitude=0.8,
        ),
        WarEvent(
            day=Day.of("2022-03-14"),
            name="Kharkiv struck 65 times; 600 residential buildings destroyed",
            kind=EventKind.SHELLING,
            zones=frozenset({z.EAST}),
            cities=frozenset({"Kharkiv"}),
            magnitude=0.9,
        ),
        WarEvent(
            day=Day.of("2022-04-03"),
            name="Ukraine wins battle of Kyiv; Russian withdrawal from the north",
            kind=EventKind.WITHDRAWAL,
            zones=frozenset({z.NORTH}),
            magnitude=0.6,
        ),
        WarEvent(
            day=Day.of("2022-04-18"),
            name="Missile bombardment of Lviv",
            kind=EventKind.MISSILE_STRIKE,
            zones=frozenset({z.WEST}),
            cities=frozenset({"Lviv"}),
            magnitude=0.3,
        ),
    ]
