"""Stochastic infrastructure damage driven by the intensity model.

Two distinct processes, matching the paper's decomposition:

* :class:`EdgeDamageModel` — damage at the network *edge* (cell towers,
  consumer-facing plant).  The paper hypothesizes this is where most of the
  user-perceived degradation comes from; the model therefore maps city
  intensity directly to a per-(city, day) severity that the NDT metric model
  consumes.

* :class:`LinkDamageProcess` — outages on inter-AS *links*, which do not
  degrade metrics directly but force BGP re-selection (new paths, border-AS
  shifts).  A two-state Markov chain per link: wartime intensity raises the
  daily failure hazard, repairs bring links back (the paper cites engineers
  restoring service under fire).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Optional, Tuple

import numpy as np

from repro.conflict.intensity import IntensityModel
from repro.util.timeutil import Day, DayGrid, DayLike
from repro.util.validation import check_fraction, check_nonnegative

__all__ = ["EdgeDamageModel", "LinkDamageProcess", "LinkOutageSchedule"]


class EdgeDamageModel:
    """Per-(city, day) severity of edge-infrastructure damage, in [0, 1].

    Severity is intensity scaled by ``edge_scale`` with small deterministic
    day-to-day wobble (seeded), modelling partial repairs and new hits.  The
    paper's Figure 2 shows wartime metrics fluctuating more day-to-day —
    the wobble term reproduces that.
    """

    def __init__(
        self,
        intensity: IntensityModel,
        rng: np.random.Generator,
        edge_scale: float = 0.9,
        wobble: float = 0.15,
    ):
        check_fraction("edge_scale", edge_scale)
        check_nonnegative("wobble", wobble)
        self._intensity = intensity
        self._edge_scale = edge_scale
        self._wobble = wobble
        self._rng = rng
        self._wobble_cache: Dict[Tuple[str, int], float] = {}

    def severity(self, city: str, day: DayLike) -> float:
        """Damage severity for a city-day; 0 before the invasion."""
        d = Day.of(day)
        base = self._intensity.city_intensity(city, d) * self._edge_scale
        if base == 0.0:
            return 0.0
        key = (city, d.ordinal)
        if key not in self._wobble_cache:
            self._wobble_cache[key] = float(
                self._rng.uniform(-self._wobble, self._wobble)
            )
        return float(np.clip(base * (1.0 + self._wobble_cache[key]), 0.0, 1.0))


@dataclass(frozen=True)
class LinkOutageSchedule:
    """Immutable per-link up/down calendar produced by the damage process."""

    grid: DayGrid
    _states: Dict[Hashable, np.ndarray]  # link id -> bool array over the grid

    def is_up(self, link_id: Hashable, day: DayLike) -> bool:
        """Whether the link is up on the given day (unknown links are up)."""
        states = self._states.get(link_id)
        if states is None:
            return True
        return bool(states[self.grid.index_of(day)])

    def downtime_days(self, link_id: Hashable) -> int:
        states = self._states.get(link_id)
        return 0 if states is None else int((~states).sum())

    def links(self) -> Iterable[Hashable]:
        return self._states.keys()

    def total_down_days(self) -> int:
        return sum(self.downtime_days(link) for link in self._states)


class LinkDamageProcess:
    """Two-state Markov outage process for inter-AS links.

    Each day a link that is up fails with probability
    ``base_hazard + war_hazard * intensity(link zone, day)``, and a link
    that is down is repaired with probability ``repair_rate``.
    """

    def __init__(
        self,
        intensity: IntensityModel,
        base_hazard: float = 0.002,
        war_hazard: float = 0.22,
        repair_rate: float = 0.50,
    ):
        check_fraction("base_hazard", base_hazard)
        check_fraction("war_hazard", war_hazard)
        check_fraction("repair_rate", repair_rate)
        self._intensity = intensity
        self._base_hazard = base_hazard
        self._war_hazard = war_hazard
        self._repair_rate = repair_rate

    def simulate(
        self,
        links: Dict[Hashable, Optional[str]],
        grid: DayGrid,
        rng: np.random.Generator,
    ) -> LinkOutageSchedule:
        """Simulate daily link states over ``grid``.

        Parameters
        ----------
        links:
            ``{link_id: city_or_None}``.  A link tagged with a city feels
            that city's intensity; an untagged link (international segment)
            only feels the base hazard.
        """
        states: Dict[Hashable, np.ndarray] = {}
        n = len(grid)
        # Canonical link order: each link's random draws must not depend on
        # dict insertion order (a serialized-and-restored topology must
        # produce the identical outage schedule).
        for link_id, city in sorted(links.items(), key=lambda kv: repr(kv[0])):
            up = np.empty(n, dtype=bool)
            current = True
            for i, day in enumerate(grid.days()):
                if current:
                    hazard = self._base_hazard
                    if city is not None:
                        hazard += self._war_hazard * self._intensity.city_intensity(
                            city, day
                        )
                    if rng.random() < hazard:
                        current = False
                else:
                    if rng.random() < self._repair_rate:
                        current = True
                up[i] = current
            states[link_id] = up
        return LinkOutageSchedule(grid=grid, _states=states)
