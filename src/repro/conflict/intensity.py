"""Per-region military-intensity series derived from the event timeline.

Intensity is a dimensionless value in [0, 1]: 0 means peacetime, 1 means the
heaviest fighting in the study window.  Zone baselines reflect the paper's
Figure 1 (North/East/South under direct assault, West largely spared,
Crimea already occupied); events perturb those baselines — sieges push a
specific city to the ceiling, the April withdrawal decays the northern
front.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.conflict.events import EventKind, INVASION_DAY, WarEvent, default_timeline
from repro.geo.gazetteer import ConflictZone, Gazetteer
from repro.util.timeutil import Day, DayLike

__all__ = ["IntensityModel"]

#: Peak intensity per zone once the invasion ramp completes.
_ZONE_PEAK: Dict[ConflictZone, float] = {
    ConflictZone.NORTH: 0.85,
    ConflictZone.EAST: 0.95,
    ConflictZone.SOUTH: 0.80,
    ConflictZone.CENTER: 0.25,
    ConflictZone.WEST: 0.10,
    ConflictZone.OCCUPIED: 0.05,
}

#: Days for the initial ramp from 0 to the zone peak after the invasion.
_RAMP_DAYS = 4

#: How long a shelling/strike boost persists (days) and its decay shape.
_EVENT_DECAY_DAYS = 7


class IntensityModel:
    """Deterministic region/city intensity as a function of calendar day."""

    def __init__(
        self,
        gazetteer: Gazetteer,
        timeline: Optional[List[WarEvent]] = None,
        invasion_day: Day = INVASION_DAY,
    ):
        self._gazetteer = gazetteer
        self._timeline = sorted(
            timeline if timeline is not None else default_timeline(),
            key=lambda e: e.day.ordinal,
        )
        self._invasion = invasion_day
        self._withdrawals = [
            e for e in self._timeline if e.kind is EventKind.WITHDRAWAL
        ]

    @property
    def timeline(self) -> List[WarEvent]:
        return list(self._timeline)

    @property
    def invasion_day(self) -> Day:
        return self._invasion

    def is_wartime(self, day: DayLike) -> bool:
        return Day.of(day) >= self._invasion

    # -- zone level -----------------------------------------------------------
    def zone_intensity(self, zone: ConflictZone, day: DayLike) -> float:
        """Base intensity of a conflict zone on a given day."""
        d = Day.of(day)
        if d < self._invasion:
            return 0.0
        peak = _ZONE_PEAK[zone]
        elapsed = d - self._invasion
        ramp = min(1.0, (elapsed + 1) / _RAMP_DAYS)
        level = peak * ramp
        for event in self._withdrawals:
            if event.applies_to_zone(zone) and d >= event.day:
                level *= 1.0 - 0.5 * event.magnitude
        return min(1.0, level)

    # -- city level ------------------------------------------------------------
    def city_intensity(self, city_name: str, day: DayLike) -> float:
        """Zone intensity plus city-scoped event boosts (sieges, shellings)."""
        d = Day.of(day)
        zone = self._gazetteer.zone_of_city(city_name)
        level = self.zone_intensity(zone, d)
        for event in self._timeline:
            if not event.applies_to_city(city_name) or d < event.day:
                continue
            if event.kind is EventKind.SIEGE:
                # A besieged city stays at the ceiling for the remainder.
                level = max(level, event.magnitude)
            elif event.kind in (EventKind.SHELLING, EventKind.MISSILE_STRIKE):
                age = d - event.day
                if age <= _EVENT_DECAY_DAYS:
                    boost = 0.3 * event.magnitude * (1.0 - age / (_EVENT_DECAY_DAYS + 1))
                    level = min(1.0, level + boost)
        return level

    def events_on(self, day: DayLike) -> List[WarEvent]:
        d = Day.of(day)
        return [e for e in self._timeline if e.day == d]

    def events_of_kind(self, kind: EventKind) -> List[WarEvent]:
        return [e for e in self._timeline if e.kind is kind]
