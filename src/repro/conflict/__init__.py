"""The war model: event timeline, regional intensity, infrastructure damage.

This is the exogenous driver of the whole simulation.  Dated events from the
paper's narrative (the Feb-24 invasion, the Mar-1 encirclement of Mariupol,
the Mar-10 national outage, the Mar-14 Kharkiv shelling, the early-April
Russian withdrawal from the north) shape a per-region *intensity* series,
which in turn drives two damage processes: degradation at the network edge
(cell towers, consumer ISPs) and outages on inter-AS links (which force
rerouting).
"""

from repro.conflict.damage import EdgeDamageModel, LinkDamageProcess, LinkOutageSchedule
from repro.conflict.events import EventKind, WarEvent, default_timeline
from repro.conflict.intensity import IntensityModel

__all__ = [
    "EdgeDamageModel",
    "EventKind",
    "IntensityModel",
    "LinkDamageProcess",
    "LinkOutageSchedule",
    "WarEvent",
    "default_timeline",
]
