"""A binary radix trie for longest-prefix-match lookups.

The analysis pipeline annotates every traceroute hop with the AS owning its
IP.  Real studies use routeviews prefix→AS snapshots; here the topology's IP
layer registers its prefixes in a :class:`PrefixTrie` and lookups perform
standard longest-prefix matching.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.netbase.ipaddr import IPv4Address, IPv4Prefix

__all__ = ["PrefixTrie"]

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Maps IPv4 prefixes to values with longest-prefix-match lookup.

    >>> trie = PrefixTrie()
    >>> trie.insert(IPv4Prefix.parse("10.0.0.0/8"), "coarse")
    >>> trie.insert(IPv4Prefix.parse("10.1.0.0/16"), "fine")
    >>> trie.lookup(IPv4Address.parse("10.1.2.3"))
    'fine'
    >>> trie.lookup(IPv4Address.parse("10.9.0.1"))
    'coarse'
    """

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: IPv4Prefix, value: V) -> None:
        """Insert (or overwrite) the value stored at ``prefix``."""
        node = self._root
        for bit_char in prefix.bits():
            bit = 1 if bit_char == "1" else 0
            if node.children[bit] is None:
                node.children[bit] = _Node()
            node = node.children[bit]
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def lookup(self, addr: IPv4Address) -> Optional[V]:
        """The value of the longest prefix containing ``addr``, or None."""
        best: Optional[V] = None
        node = self._root
        if node.has_value:
            best = node.value
        value = addr.value
        for shift in range(31, -1, -1):
            bit = (value >> shift) & 1
            nxt = node.children[bit]
            if nxt is None:
                break
            node = nxt
            if node.has_value:
                best = node.value
        return best

    def lookup_prefix(self, addr: IPv4Address) -> Optional[Tuple[IPv4Prefix, V]]:
        """Like :meth:`lookup` but also returns the matching prefix."""
        best: Optional[Tuple[IPv4Prefix, V]] = None
        node = self._root
        if node.has_value:
            best = (IPv4Prefix(IPv4Address(0), 0), node.value)
        value = addr.value
        for depth in range(1, 33):
            bit = (value >> (32 - depth)) & 1
            nxt = node.children[bit]
            if nxt is None:
                break
            node = nxt
            if node.has_value:
                network = IPv4Address(value & (((1 << depth) - 1) << (32 - depth)))
                best = (IPv4Prefix(network, depth), node.value)
        return best

    def exact(self, prefix: IPv4Prefix) -> Optional[V]:
        """The value stored exactly at ``prefix``, ignoring shorter covers."""
        node = self._root
        for bit_char in prefix.bits():
            bit = 1 if bit_char == "1" else 0
            nxt = node.children[bit]
            if nxt is None:
                return None
            node = nxt
        return node.value if node.has_value else None

    def items(self) -> Iterator[Tuple[IPv4Prefix, V]]:
        """All (prefix, value) pairs, in bit order."""
        stack: List[Tuple[_Node[V], str]] = [(self._root, "")]
        while stack:
            node, bits = stack.pop()
            if node.has_value:
                if bits:
                    network = IPv4Address(int(bits.ljust(32, "0"), 2))
                else:
                    network = IPv4Address(0)
                yield IPv4Prefix(network, len(bits)), node.value
            for bit in (1, 0):
                child = node.children[bit]
                if child is not None:
                    stack.append((child, bits + str(bit)))
