"""Networking primitives: IPv4 values, prefix trie, AS registry.

These are the building blocks under both the topology simulator (router IP
assignment per AS) and the analysis pipeline (mapping traceroute hop IPs back
to ASes, as the paper does with routeviews-style prefix→AS data).
"""

from repro.netbase.asn import AutonomousSystem, ASRegistry, ASRole
from repro.netbase.ipaddr import IPv4Address, IPv4Prefix
from repro.netbase.trie import PrefixTrie

__all__ = [
    "ASRegistry",
    "ASRole",
    "AutonomousSystem",
    "IPv4Address",
    "IPv4Prefix",
    "PrefixTrie",
]
