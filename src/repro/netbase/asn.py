"""Autonomous-system identities and the AS registry.

The registry is the single source of truth for AS numbers, names, countries
and roles.  The synthetic topology registers the paper's real ASes (Kyivstar
AS15895, Hurricane Electric AS6939, ...) here; the analyses resolve hop ASNs
back to names through it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.util.errors import TopologyError

__all__ = ["ASRegistry", "ASRole", "AutonomousSystem"]


class ASRole(enum.Enum):
    """Coarse role an AS plays in the simulated Internet."""

    EYEBALL = "eyeball"  # consumer ISP with NDT clients behind it
    REGIONAL = "regional"  # Ukrainian aggregation / metro network
    BORDER = "border"  # foreign transit adjacent to Ukrainian ASes
    TRANSIT = "transit"  # other international carrier
    MLAB = "mlab"  # hosts an M-Lab measurement site


@dataclass(frozen=True)
class AutonomousSystem:
    """One AS: number, organisation name, country, and simulated role."""

    asn: int
    name: str
    country: str  # ISO-3166 alpha-2, e.g. "UA"
    role: ASRole

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASN must be positive, got {self.asn}")
        if not self.name:
            raise ValueError("AS name must be non-empty")
        if len(self.country) != 2 or not self.country.isupper():
            raise ValueError(
                f"country must be an upper-case alpha-2 code, got {self.country!r}"
            )

    @property
    def is_ukrainian(self) -> bool:
        return self.country == "UA"

    def __str__(self) -> str:
        return f"AS{self.asn} ({self.name})"


class ASRegistry:
    """A collection of :class:`AutonomousSystem` records keyed by ASN."""

    def __init__(self) -> None:
        self._by_asn: Dict[int, AutonomousSystem] = {}

    def register(self, asys: AutonomousSystem) -> AutonomousSystem:
        """Add an AS; re-registering the same ASN with different data fails."""
        existing = self._by_asn.get(asys.asn)
        if existing is not None:
            if existing != asys:
                raise TopologyError(
                    f"ASN {asys.asn} already registered as {existing.name!r}, "
                    f"cannot re-register as {asys.name!r}"
                )
            return existing
        self._by_asn[asys.asn] = asys
        return asys

    def get(self, asn: int) -> AutonomousSystem:
        try:
            return self._by_asn[asn]
        except KeyError:
            raise TopologyError(f"unknown ASN {asn}") from None

    def maybe_get(self, asn: int) -> Optional[AutonomousSystem]:
        return self._by_asn.get(asn)

    def name_of(self, asn: int) -> str:
        """Organisation name, or ``"AS<n>"`` for unregistered ASNs."""
        asys = self._by_asn.get(asn)
        return asys.name if asys is not None else f"AS{asn}"

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn

    def __len__(self) -> int:
        return len(self._by_asn)

    def __iter__(self) -> Iterator[AutonomousSystem]:
        return iter(sorted(self._by_asn.values(), key=lambda a: a.asn))

    def with_role(self, role: ASRole) -> List[AutonomousSystem]:
        return [a for a in self if a.role is role]

    def ukrainian(self) -> List[AutonomousSystem]:
        return [a for a in self if a.is_ukrainian]

    def foreign(self) -> List[AutonomousSystem]:
        return [a for a in self if not a.is_ukrainian]
