"""Reverse-DNS names for router interfaces (undns-style geolocation input).

Carriers name router interfaces with structured hostnames that encode
interface, role and location — ``ae1.cr2.kyv.kyivstar.net`` — and a classic
measurement technique (undns, DRoP) geolocates traceroute hops by parsing
those codes.  The paper frets about MaxMind's label accuracy; hostname
parsing provides an independent location signal to cross-check it
(see :mod:`repro.analysis.hopgeo`).

:class:`HostnameScheme` deterministically names every simulated router
interface and can parse its own names back — including a configurable
fraction of routers with *missing* PTR records and *stale* (wrong-city)
names, because real rDNS is exactly that unreliable.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro.netbase.asn import ASRegistry
from repro.util.errors import TopologyError
from repro.util.validation import check_fraction

__all__ = ["HostnameScheme", "ROUTER_CITY_BAND", "city_code"]

#: Router indices are banded by city: indices ``[band*k, band*(k+1))`` belong
#: to the k-th city an AS serves.  The scamper sidecar picks gateway routers
#: from the client city's band; :meth:`HostnameScheme.router_city` inverts it.
ROUTER_CITY_BAND = 16


def _stable(parts: Tuple, modulus: int) -> int:
    data = ",".join(str(p) for p in parts).encode("utf-8")
    digest = hashlib.blake2s(data, digest_size=4).digest()
    return int.from_bytes(digest, "little") % modulus


def _code_sequence(city: str) -> str:
    """The letter sequence codes are drawn from: first letter, consonants,
    then the remaining letters (how carriers usually abbreviate)."""
    letters = [c.lower() for c in city if c.isalpha()]
    if not letters:
        raise ValueError(f"city name {city!r} has no letters")
    consonants = [c for c in letters[1:] if c not in "aeiou"]
    vowels = [c for c in letters[1:] if c in "aeiou"]
    return "".join([letters[0]] + consonants + vowels)


def city_code(city: str, length: int = 3) -> str:
    """A location code like carriers embed (``Kyiv`` → ``kyv``).

    ``length`` letters of the abbreviation sequence, padded with ``x``.
    The scheme lengthens codes as needed to keep them unique.
    """
    seq = _code_sequence(city)
    return seq[:length].ljust(length, "x")


def _org_slug(name: str) -> str:
    slug = "".join(c.lower() for c in name if c.isalnum())
    return slug or "unknown"


class HostnameScheme:
    """Deterministic PTR records for the simulated routers."""

    def __init__(
        self,
        registry: ASRegistry,
        cities_of_asn: Dict[int, List[str]],
        missing_rate: float = 0.15,
        stale_rate: float = 0.05,
    ):
        check_fraction("missing_rate", missing_rate)
        check_fraction("stale_rate", stale_rate)
        if missing_rate + stale_rate > 1.0:
            raise ValueError("missing_rate + stale_rate must not exceed 1")
        self._registry = registry
        self._cities_of_asn = {
            asn: list(cities) for asn, cities in cities_of_asn.items()
        }
        self._missing = missing_rate
        self._stale = stale_rate
        self._codes: Dict[str, str] = {}
        self._cities_by_code: Dict[str, str] = {}
        all_cities = sorted(
            {city for cities in self._cities_of_asn.values() for city in cities}
        )
        # Iterate to a collision-free assignment: whenever two cities share
        # a code, both get one more letter and the assignment restarts.
        lengths = {city: 3 for city in all_cities}
        for _ in range(200):
            codes: Dict[str, str] = {}
            collided = None
            for city in all_cities:
                code = city_code(city, lengths[city])
                if code in codes:
                    collided = (city, codes[code])
                    break
                codes[code] = city
            if collided is None:
                self._cities_by_code = codes
                self._codes = {city: code for code, city in codes.items()}
                break
            for city in collided:
                lengths[city] += 1
                if lengths[city] > 12:
                    raise TopologyError(
                        f"cannot derive unique hostname codes for {collided!r}"
                    )
        else:
            raise TopologyError("hostname code assignment did not converge")

    def router_city(self, asn: int, router_index: int) -> Optional[str]:
        """The city a router is (truthfully) located in, if determinable.

        City-banded indices resolve exactly; indices beyond the bands are
        backbone/core routers with no single metro (None).
        """
        cities = self._cities_of_asn.get(asn)
        if not cities:
            return None
        band = router_index // ROUTER_CITY_BAND
        if band < len(cities):
            return cities[band]
        return None

    def hostname(self, asn: int, router_index: int) -> Optional[str]:
        """The PTR record for a router interface, or None (no record).

        A ``missing_rate`` fraction of interfaces have no PTR; a
        ``stale_rate`` fraction advertise another of the AS's cities
        (equipment moved, name never updated).
        """
        roll = _stable((asn, router_index, "ptr"), 10_000) / 10_000.0
        if roll < self._missing:
            return None
        asys = self._registry.maybe_get(asn)
        org = _org_slug(asys.name) if asys is not None else f"as{asn}"
        city = self.router_city(asn, router_index)
        if city is not None and roll < self._missing + self._stale:
            cities = self._cities_of_asn[asn]
            if len(cities) > 1:
                alternatives = [c for c in cities if c != city]
                city = alternatives[_stable((asn, router_index, "stale"),
                                            len(alternatives))]
        location = self._codes.get(city, "bbx") if city is not None else "bbx"
        iface = _stable((asn, router_index, "if"), 8)
        role = _stable((asn, router_index, "role"), 4) + 1
        return f"ae{iface}.cr{role}.{location}.{org}.net"

    def parse_city(self, hostname: Optional[str]) -> Optional[str]:
        """The city a hostname claims, or None (missing/backbone/unknown)."""
        if not hostname:
            return None
        parts = hostname.split(".")
        if len(parts) < 4:
            return None
        return self._cities_by_code.get(parts[2])

    def code_of(self, city: str) -> str:
        try:
            return self._codes[city]
        except KeyError:
            raise TopologyError(f"no hostname code for city {city!r}") from None
