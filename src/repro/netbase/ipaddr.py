"""IPv4 address and prefix value types (from scratch, no stdlib ipaddress).

Addresses are immutable wrappers over a 32-bit int; prefixes are
(network, length) pairs.  Only the operations the simulator and the
traceroute analysis need are implemented — parsing, formatting, containment,
and host enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["IPv4Address", "IPv4Prefix"]

_MAX = 0xFFFFFFFF


@dataclass(frozen=True, order=True)
class IPv4Address:
    """A single IPv4 address, stored as a 32-bit unsigned integer."""

    value: int

    def __post_init__(self) -> None:
        if not isinstance(self.value, int):
            raise TypeError(f"IPv4Address value must be int, got {type(self.value).__name__}")
        if not 0 <= self.value <= _MAX:
            raise ValueError(f"IPv4Address value {self.value:#x} out of 32-bit range")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad notation, strictly (four octets, 0-255 each)."""
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"invalid IPv4 address {text!r}: need 4 octets")
        value = 0
        for part in parts:
            if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
                raise ValueError(f"invalid IPv4 address {text!r}: bad octet {part!r}")
            octet = int(part)
            if octet > 255:
                raise ValueError(f"invalid IPv4 address {text!r}: octet {octet} > 255")
            value = (value << 8) | octet
        return cls(value)

    def dotted(self) -> str:
        """Dotted-quad string form."""
        v = self.value
        return f"{v >> 24}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def plus(self, offset: int) -> "IPv4Address":
        """The address ``offset`` after this one (must stay in range)."""
        return IPv4Address(self.value + offset)

    def __str__(self) -> str:
        return self.dotted()


@dataclass(frozen=True, order=True)
class IPv4Prefix:
    """A CIDR prefix: a network address plus a mask length."""

    network: IPv4Address
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length {self.length} out of range 0..32")
        if self.network.value & ~self.mask() & _MAX:
            raise ValueError(
                f"{self.network}/{self.length} has host bits set; "
                f"did you mean {IPv4Address(self.network.value & self.mask())}"
                f"/{self.length}?"
            )

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        """Parse ``"a.b.c.d/len"`` notation."""
        if "/" not in text:
            raise ValueError(f"invalid prefix {text!r}: missing '/'")
        addr_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise ValueError(f"invalid prefix {text!r}: bad length {len_text!r}")
        return cls(IPv4Address.parse(addr_text), int(len_text))

    def mask(self) -> int:
        """The network mask as a 32-bit int."""
        if self.length == 0:
            return 0
        return (_MAX << (32 - self.length)) & _MAX

    @property
    def n_addresses(self) -> int:
        return 1 << (32 - self.length)

    def contains(self, addr: IPv4Address) -> bool:
        """Whether ``addr`` falls inside this prefix."""
        return (addr.value & self.mask()) == self.network.value

    def contains_prefix(self, other: "IPv4Prefix") -> bool:
        """Whether ``other`` is equal to or more specific than this prefix."""
        return other.length >= self.length and self.contains(other.network)

    def address_at(self, offset: int) -> IPv4Address:
        """The ``offset``-th address of the prefix (0 = network address)."""
        if not 0 <= offset < self.n_addresses:
            raise ValueError(
                f"offset {offset} out of range for /{self.length} "
                f"({self.n_addresses} addresses)"
            )
        return IPv4Address(self.network.value + offset)

    def hosts(self) -> Iterator[IPv4Address]:
        """Iterate usable host addresses (excludes network/broadcast on /0-/30)."""
        if self.length >= 31:
            yield from (self.address_at(i) for i in range(self.n_addresses))
            return
        for i in range(1, self.n_addresses - 1):
            yield self.address_at(i)

    def bits(self) -> str:
        """The prefix's significant bits as a '0'/'1' string (trie key)."""
        return format(self.network.value, "032b")[: self.length]

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"
