"""Plain-text rendering of tables (how benches print the paper's tables)."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.tables.schema import DType
from repro.tables.table import Table

__all__ = ["format_table"]


def _fmt_value(value, dtype: DType, float_fmt: str) -> str:
    if value is None:
        return "-"
    if dtype is DType.FLOAT:
        return format(float(value), float_fmt)
    return str(value)


def format_table(
    table: Table,
    title: Optional[str] = None,
    float_fmt: str = ".3f",
    float_fmts: Optional[Mapping[str, str]] = None,
    max_rows: Optional[int] = None,
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render a table as an aligned, boxed text grid.

    Parameters
    ----------
    float_fmt:
        Default format spec for FLOAT columns.
    float_fmts:
        Per-column overrides, e.g. ``{"p_value": ".2e"}``.
    max_rows:
        Truncate with an ellipsis row after this many rows.
    """
    if columns is not None:
        table = table.select(list(columns))
    float_fmts = dict(float_fmts or {})
    names = table.column_names
    dtypes = {f.name: f.dtype for f in table.schema.fields}

    shown = table if max_rows is None else table.head(max_rows)
    cells = [names]
    for row in shown.iter_rows():
        cells.append(
            [
                _fmt_value(v, dtypes[n], float_fmts.get(n, float_fmt))
                for n, v in row.items()
            ]
        )
    truncated = max_rows is not None and table.n_rows > max_rows
    if truncated:
        cells.append(["..."] * len(names))

    widths = [max(len(r[i]) for r in cells) for i in range(len(names))]
    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"

    def fmt_row(row):
        return "| " + " | ".join(v.rjust(w) for v, w in zip(row, widths)) + " |"

    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(cells[0]))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(fmt_row(row))
    lines.append(sep)
    if truncated:
        lines.append(f"({table.n_rows} rows total, showing {max_rows})")
    return "\n".join(lines)
