"""Introspectable predicate expressions for filtering tables.

``col("loss") > 0.05`` builds an :class:`Expr` tree that, evaluated against
a table, yields a boolean mask.  Expressions compose with ``&``, ``|`` and
``~``, mirroring the WHERE clauses of the paper's BigQuery queries.

Unlike the original closure-based implementation, every expression is a
small AST node (:class:`Comparison`, :class:`And`, :class:`Or`,
:class:`Not`, :class:`IsIn`, :class:`IsNull`) with

* **structural equality and hashing** — two independently built
  ``col("day") > 3`` expressions compare equal and hash equal, which is
  what lets the plan optimizer key common-subplan reuse on expression
  content (:meth:`Expr.key` is the canonical structural key);
* **introspection** — :meth:`Expr.columns` reports every column the
  predicate reads, which is what predicate pushdown and projection
  pruning in :mod:`repro.tables.plan` decide on;
* **shared evaluation** — both the eager path (``Table.filter``) and the
  lazy executor call the same :meth:`Expr.evaluate`, so optimized plans
  cannot drift from eager semantics.

``IsIn`` encodes its allowed set once at construction (split into sorted
strings / numerics / sentinels) and re-encodes against each column's
dictionary pool with one vectorized ``searchsorted`` — the per-evaluation
Python loop over the pool is gone.  An optional per-plan-execution cache
memoizes the pool lookup table so repeated evaluation over slices sharing
a pool pays for the encoding once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, FrozenSet, Iterable, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tables.table import Table

__all__ = [
    "And",
    "Comparison",
    "Expr",
    "IsIn",
    "IsNull",
    "Not",
    "Or",
    "col",
]

def _value_key(value: Any) -> Any:
    """A hashable stand-in for a comparison operand.

    Scalars hash as themselves; unhashable operands (arrays, columns) fall
    back to object identity, which keeps :meth:`Expr.key` total without
    pretending two distinct arrays are structurally equal.
    """
    try:
        hash(value)
    except TypeError:
        return ("id", id(value))
    return value


class Expr:
    """A lazily evaluated boolean predicate over table rows.

    Subclasses are immutable AST nodes.  Equality and hashing are
    structural (via :meth:`key`), so expressions can serve as dict/set
    keys — the subplan-reuse cache depends on this.
    """

    __slots__ = ()

    # -- structure ---------------------------------------------------------
    def key(self) -> Tuple:
        """Canonical hashable structural key (drives ``==`` and ``hash``)."""
        raise NotImplementedError

    def columns(self) -> FrozenSet[str]:
        """Every column name this predicate reads."""
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        """Child expressions (empty for leaves)."""
        return ()

    @property
    def description(self) -> str:
        """Human-readable WHERE-clause rendering (used by plan explain)."""
        raise NotImplementedError

    # -- evaluation --------------------------------------------------------
    def evaluate(
        self, table: "Table", cache: Optional[Dict] = None
    ) -> np.ndarray:
        """Return a boolean mask with one entry per row of ``table``.

        ``cache`` (optional) memoizes per-expression encodings — the plan
        executor passes one dict per plan execution so e.g. an ``IsIn``
        pool LUT is built once however many slices it is evaluated over.
        """
        mask = self._evaluate(table, cache if cache is not None else {})
        return np.asarray(mask, dtype=bool)

    def _evaluate(self, table: "Table", cache: Dict) -> np.ndarray:
        raise NotImplementedError

    # -- composition -------------------------------------------------------
    def __and__(self, other: "Expr") -> "Expr":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return Or(self, other)

    def __invert__(self) -> "Expr":
        return Not(self)

    # -- identity ----------------------------------------------------------
    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Expr):
            return NotImplemented
        return self.key() == other.key()

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return f"Expr[{self.description}]"


class Comparison(Expr):
    """``column <op> value`` for ``op`` in ==, !=, <, <=, >, >=."""

    __slots__ = ("column", "op", "value")

    def __init__(self, column: str, op: str, value: Any):
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def key(self) -> Tuple:
        return ("cmp", self.column, self.op, _value_key(self.value))

    def columns(self) -> FrozenSet[str]:
        return frozenset((self.column,))

    @property
    def description(self) -> str:
        return f"{self.column} {self.op} {self.value!r}"

    def _evaluate(self, table: "Table", cache: Dict) -> np.ndarray:
        return table.column(self.column)._cmp(self.value, self.op)


class And(Expr):
    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def key(self) -> Tuple:
        return ("and", self.left.key(), self.right.key())

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    @property
    def description(self) -> str:
        return f"({self.left.description} AND {self.right.description})"

    def _evaluate(self, table: "Table", cache: Dict) -> np.ndarray:
        return self.left._evaluate(table, cache) & self.right._evaluate(
            table, cache
        )


class Or(Expr):
    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def key(self) -> Tuple:
        return ("or", self.left.key(), self.right.key())

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    @property
    def description(self) -> str:
        return f"({self.left.description} OR {self.right.description})"

    def _evaluate(self, table: "Table", cache: Dict) -> np.ndarray:
        return self.left._evaluate(table, cache) | self.right._evaluate(
            table, cache
        )


class Not(Expr):
    __slots__ = ("child",)

    def __init__(self, child: Expr):
        object.__setattr__(self, "child", child)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def key(self) -> Tuple:
        return ("not", self.child.key())

    def columns(self) -> FrozenSet[str]:
        return self.child.columns()

    def children(self) -> Tuple[Expr, ...]:
        return (self.child,)

    @property
    def description(self) -> str:
        return f"(NOT {self.child.description})"

    def _evaluate(self, table: "Table", cache: Dict) -> np.ndarray:
        return ~np.asarray(self.child._evaluate(table, cache), dtype=bool)


class IsIn(Expr):
    """Membership test against a fixed allowed set.

    The allowed values are split once at construction: sorted distinct
    strings (for dictionary-pool encoding), numeric values, and the
    ``None``/NaN sentinels.  Evaluation against a STR column is one
    ``searchsorted`` of the pre-sorted strings into the pool — O(|allowed|
    log |pool|) — instead of the old per-evaluation Python loop over the
    pool.  The pool LUT is memoized in the per-execution cache keyed by
    pool identity, so slices sharing a dictionary pay once.
    """

    __slots__ = ("column", "allowed", "_strs", "_nums", "_none", "_nan")

    def __init__(self, column: str, allowed: Iterable[Any]):
        allowed_t = tuple(allowed)
        strs = sorted({v for v in allowed_t if isinstance(v, str)})
        none_ok = any(v is None for v in allowed_t)
        nums = []
        has_nan = False
        seen = set()
        for v in allowed_t:
            if isinstance(v, (float, np.floating)) and np.isnan(v):
                has_nan = True
            elif isinstance(
                v, (bool, np.bool_, int, np.integer, float, np.floating)
            ):
                if v not in seen:
                    seen.add(v)
                    nums.append(v)
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "allowed", allowed_t)
        object.__setattr__(self, "_strs", tuple(strs))
        object.__setattr__(self, "_nums", tuple(nums))
        object.__setattr__(self, "_none", none_ok)
        object.__setattr__(self, "_nan", has_nan)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def key(self) -> Tuple:
        return ("isin", self.column, self._strs, self._nums, self._none, self._nan)

    def columns(self) -> FrozenSet[str]:
        return frozenset((self.column,))

    @property
    def description(self) -> str:
        return f"{self.column} IN {list(self.allowed)!r}"

    def _pool_lut(self, pool: np.ndarray, cache: Dict) -> np.ndarray:
        """Boolean LUT over ``pool`` (+1 slot for None), memoized in cache."""
        memo_key = (self.key(), id(pool))
        lut = cache.get(memo_key)
        if lut is None:
            lut = np.zeros(len(pool) + 1, dtype=bool)
            if self._strs:
                wanted = np.empty(len(self._strs), dtype=object)
                wanted[:] = list(self._strs)
                idx = np.searchsorted(pool, wanted)
                in_range = idx < len(pool)
                hit = np.zeros(len(wanted), dtype=bool)
                hit[in_range] = pool[idx[in_range]] == wanted[in_range]
                lut[idx[hit]] = True
            lut[len(pool)] = self._none
            cache[memo_key] = lut
        return lut

    def _evaluate(self, table: "Table", cache: Dict) -> np.ndarray:
        from repro.tables.schema import DType

        column = table.column(self.column)
        if column.dtype is DType.STR:
            return self._pool_lut(column.pool, cache)[column.codes]
        values = column.values
        if self._nums:
            result = np.isin(values, np.asarray(self._nums))
        else:
            result = np.zeros(len(values), dtype=bool)
        if self._nan and column.dtype is DType.FLOAT:
            result |= np.isnan(values)
        return result


class IsNull(Expr):
    __slots__ = ("column",)

    def __init__(self, column: str):
        object.__setattr__(self, "column", column)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def key(self) -> Tuple:
        return ("isnull", self.column)

    def columns(self) -> FrozenSet[str]:
        return frozenset((self.column,))

    @property
    def description(self) -> str:
        return f"{self.column} IS NULL"

    def _evaluate(self, table: "Table", cache: Dict) -> np.ndarray:
        return table.column(self.column).isnull()


class _ColumnRef:
    """A reference to a column by name, from which predicates are built.

    ``==`` and friends BUILD :class:`Comparison` expressions (they do not
    compare references); structural identity of the reference itself lives
    in :meth:`key` and ``hash`` — ``hash(col("a")) == hash(col("a"))``.
    """

    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def key(self) -> Tuple:
        return ("col", self._name)

    def _binary(self, op: str, other: Any) -> Expr:
        return Comparison(self._name, op, other)

    def __eq__(self, other: Any) -> Expr:  # type: ignore[override]
        return self._binary("==", other)

    def __ne__(self, other: Any) -> Expr:  # type: ignore[override]
        return self._binary("!=", other)

    def __lt__(self, other: Any) -> Expr:
        return self._binary("<", other)

    def __le__(self, other: Any) -> Expr:
        return self._binary("<=", other)

    def __gt__(self, other: Any) -> Expr:
        return self._binary(">", other)

    def __ge__(self, other: Any) -> Expr:
        return self._binary(">=", other)

    def __hash__(self) -> int:
        # ``__eq__`` builds predicates, so hashing is by structural key;
        # set/dict membership treats equal-named refs as one entry (the
        # predicate an equality probe returns is truthy).
        return hash(self.key())

    def isin(self, allowed: Iterable[Any]) -> Expr:
        return IsIn(self._name, allowed)

    def between(self, lo: Any, hi: Any) -> Expr:
        """Inclusive range predicate: ``lo <= col <= hi``."""
        return (self >= lo) & (self <= hi)

    def isnull(self) -> Expr:
        return IsNull(self._name)

    def notnull(self) -> Expr:
        return Not(IsNull(self._name))

    def __repr__(self) -> str:
        return f"col({self._name!r})"


def col(name: str) -> _ColumnRef:
    """Reference a column by name for use in a filter expression."""
    if not name:
        raise ValueError("column name must be non-empty")
    return _ColumnRef(name)
