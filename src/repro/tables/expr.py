"""Predicate expressions for filtering tables.

``col("loss") > 0.05`` builds an :class:`Expr` tree that, evaluated against a
table, yields a boolean mask.  Expressions compose with ``&``, ``|`` and
``~``, mirroring the WHERE clauses of the paper's BigQuery queries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tables.table import Table

__all__ = ["Expr", "col"]


class Expr:
    """A lazily evaluated boolean predicate over table rows."""

    def __init__(self, fn: Callable[["Table"], np.ndarray], description: str):
        self._fn = fn
        self._description = description

    def evaluate(self, table: "Table") -> np.ndarray:
        """Return a boolean mask with one entry per row of ``table``."""
        mask = self._fn(table)
        return np.asarray(mask, dtype=bool)

    def __and__(self, other: "Expr") -> "Expr":
        return Expr(
            lambda t: self.evaluate(t) & other.evaluate(t),
            f"({self._description} AND {other._description})",
        )

    def __or__(self, other: "Expr") -> "Expr":
        return Expr(
            lambda t: self.evaluate(t) | other.evaluate(t),
            f"({self._description} OR {other._description})",
        )

    def __invert__(self) -> "Expr":
        return Expr(lambda t: ~self.evaluate(t), f"(NOT {self._description})")

    def __repr__(self) -> str:
        return f"Expr[{self._description}]"


class _ColumnRef:
    """A reference to a column by name, from which predicates are built."""

    def __init__(self, name: str):
        self._name = name

    def _binary(self, op: str, other: Any) -> Expr:
        name = self._name
        return Expr(
            lambda t: t.column(name)._cmp(other, op),
            f"{name} {op} {other!r}",
        )

    def __eq__(self, other: Any) -> Expr:  # type: ignore[override]
        return self._binary("==", other)

    def __ne__(self, other: Any) -> Expr:  # type: ignore[override]
        return self._binary("!=", other)

    def __lt__(self, other: Any) -> Expr:
        return self._binary("<", other)

    def __le__(self, other: Any) -> Expr:
        return self._binary("<=", other)

    def __gt__(self, other: Any) -> Expr:
        return self._binary(">", other)

    def __ge__(self, other: Any) -> Expr:
        return self._binary(">=", other)

    def isin(self, allowed: Iterable[Any]) -> Expr:
        name = self._name
        allowed = list(allowed)
        return Expr(lambda t: t.column(name).isin(allowed), f"{name} IN {allowed!r}")

    def between(self, lo: Any, hi: Any) -> Expr:
        """Inclusive range predicate: ``lo <= col <= hi``."""
        return (self >= lo) & (self <= hi)

    def isnull(self) -> Expr:
        name = self._name
        return Expr(lambda t: t.column(name).isnull(), f"{name} IS NULL")

    def notnull(self) -> Expr:
        return ~self.isnull()

    __hash__ = None  # type: ignore[assignment]


def col(name: str) -> _ColumnRef:
    """Reference a column by name for use in a filter expression."""
    if not name:
        raise ValueError("column name must be non-empty")
    return _ColumnRef(name)
