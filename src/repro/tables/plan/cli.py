"""``repro plan``: inspect the lazy query planner.

``repro plan explain`` builds representative lazy chains over a small
deterministic NDT-shaped table and prints each one's logical tree, the
optimizer's rewritten tree, and the rewrite-rule tally — the quickest way
to see what predicate pushdown, projection pruning and filter→aggregate
fusion actually do to a query.
"""

from __future__ import annotations

import argparse

__all__ = ["cmd_plan", "configure_parser"]


def configure_parser(sub: argparse._SubParsersAction) -> None:
    plan = sub.add_parser(
        "plan",
        help="inspect lazy query plans and the optimizer",
        description=(
            "Show how the logical-plan optimizer rewrites representative "
            "lazy chains (pushdown, pruning, fusion).  See docs/TABLES.md."
        ),
    )
    plan_sub = plan.add_subparsers(dest="plan_command", required=True)
    exp = plan_sub.add_parser(
        "explain", help="print before/after plan trees for demo chains"
    )
    exp.add_argument(
        "--collect",
        action="store_true",
        help="also execute each chain and show the result shape",
    )


def _demo_table():
    from repro.tables import Table

    return Table.from_dict(
        {
            "test_id": [f"t{i}" for i in range(8)],
            "day": [1, 1, 2, 2, 3, 3, 4, 4],
            "oblast": ["Kyiv", "Lviv", "Kyiv", "Lviv", "Kyiv", "Lviv", "Kyiv", "Lviv"],
            "tput_mbps": [42.0, 17.5, 39.1, 16.2, 12.4, 15.8, 11.0, 14.9],
            "min_rtt_ms": [9.0, 21.0, 9.5, 22.0, 14.0, 23.5, 15.0, 24.0],
            "loss_rate": [0.0, 0.01, 0.0, 0.02, 0.08, 0.02, 0.09, 0.03],
        }
    )


def _demo_chains(table):
    from repro.tables import col

    fused = (
        table.lazy()
        .filter(col("day") >= 2)
        .filter(col("tput_mbps") > 12.0)
        .group_by("oblast")
        .aggregate(
            {
                "tput_mbps": ("tput_mbps", "mean"),
                "count": ("test_id", "count"),
            }
        )
    )
    pruned = (
        table.lazy()
        .sort_by("day")
        .filter(col("loss_rate") < 0.05)
        .select(["day", "oblast", "loss_rate"])
    )
    joined = (
        table.lazy()
        .join(
            table.lazy().group_by("oblast").aggregate({"mean": ("min_rtt_ms", "mean")}),
            on="oblast",
        )
        .filter(col("day") == 2)
    )
    return [
        ("fused filter -> aggregate", fused),
        ("pushdown + pruning", pruned),
        ("join with left pushdown", joined),
    ]


def cmd_plan(args: argparse.Namespace) -> int:
    table = _demo_table()
    print(f"demo table: {table!r}")
    for title, plan in _demo_chains(table):
        print(f"\n== {title} ==")
        print(plan.explain())
        if getattr(args, "collect", False):
            result = plan.collect()
            print(f"result: {result!r}")
    return 0
