"""Logical plan nodes: the relational algebra behind lazy tables.

A plan is an immutable tree of nodes — :class:`Scan`, :class:`Filter`,
:class:`Project`, :class:`Sort`, :class:`GroupByAgg`, :class:`Join`, plus
the optimizer-produced :class:`FusedFilterAgg`.  Nodes carry three views
of their identity:

* :meth:`PlanNode.key` — a canonical hashable structural key (scans by
  table object identity).  Drives ``==``/``hash`` and plan dedup inside
  one process.
* :meth:`PlanNode.fingerprint` — a content fingerprint: the scan's table
  content (via :func:`repro.obs.lineage.fingerprint_table`, memoized by
  the executor's cache) combined with every operator's parameters.  Two
  plans with the same fingerprint produce byte-identical results, which
  is what keys common-subplan reuse.  Returns ``None`` when any part is
  uncacheable (raw mask arrays, callable aggregators).
* :meth:`PlanNode.label` — the one-line rendering ``repro plan explain``
  prints per tree level.

:meth:`PlanNode.output_columns` infers the output schema's column names
(``None`` when unknown); the optimizer's pushdown and pruning rules gate
on it so a rewrite can never change which column a predicate resolves to.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, List, Optional, Tuple

from repro.tables.expr import Expr

__all__ = [
    "Filter",
    "FusedFilterAgg",
    "GroupByAgg",
    "Join",
    "PlanNode",
    "Project",
    "Scan",
    "Sort",
    "render",
    "spec_as_items",
    "walk",
]

#: ``{out: (src, how)}`` mapping flattened into ordered hashable triples.
SpecItems = Tuple[Tuple[str, str, Any], ...]


def spec_as_items(spec) -> SpecItems:
    """Normalize an aggregate spec mapping into ``((out, src, how), ...)``."""
    return tuple((out, src, how) for out, (src, how) in spec.items())


def _spec_key(spec: SpecItems) -> Tuple:
    out = []
    for name, src, how in spec:
        out.append((name, src, how if isinstance(how, str) else ("id", id(how))))
    return tuple(out)


def _spec_cacheable(spec: SpecItems) -> bool:
    return all(isinstance(how, str) for _, _, how in spec)


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()[:16]


class PlanNode:
    """Base class: an immutable logical operator with structural identity."""

    __slots__ = ()

    #: Operator name (used in span names, counters and explain output).
    op: str = "node"

    def children(self) -> Tuple["PlanNode", ...]:
        return ()

    def key(self) -> Tuple:
        raise NotImplementedError

    def fingerprint(
        self, table_fp: Callable[[Any], Optional[str]]
    ) -> Optional[str]:
        """Content fingerprint (see module docstring); None = uncacheable."""
        raise NotImplementedError

    def output_columns(self) -> Optional[List[str]]:
        """Column names this node produces, or None when not inferable."""
        raise NotImplementedError

    def label(self) -> str:
        return self.op

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, PlanNode):
            return NotImplemented
        return self.key() == other.key()

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.label()})"


class Scan(PlanNode):
    """A leaf: an in-memory table."""

    __slots__ = ("table",)
    op = "scan"

    def __init__(self, table):
        object.__setattr__(self, "table", table)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("plan nodes are immutable")

    def key(self) -> Tuple:
        return ("scan", id(self.table))

    def fingerprint(self, table_fp) -> Optional[str]:
        return table_fp(self.table)

    def output_columns(self) -> Optional[List[str]]:
        return list(self.table.column_names)

    def label(self) -> str:
        t = self.table
        return f"scan [{t.n_rows} rows x {len(t.column_names)} cols]"


class Filter(PlanNode):
    """Keep rows matching a predicate (an :class:`Expr` or a raw mask)."""

    __slots__ = ("child", "predicate")
    op = "filter"

    def __init__(self, child: PlanNode, predicate):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "predicate", predicate)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("plan nodes are immutable")

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def _predicate_key(self) -> Tuple:
        if isinstance(self.predicate, Expr):
            return self.predicate.key()
        return ("mask", id(self.predicate))

    def key(self) -> Tuple:
        return ("filter", self.child.key(), self._predicate_key())

    def fingerprint(self, table_fp) -> Optional[str]:
        if not isinstance(self.predicate, Expr):
            return None
        child = self.child.fingerprint(table_fp)
        if child is None:
            return None
        return _digest("filter", child, repr(self.predicate.key()))

    def output_columns(self) -> Optional[List[str]]:
        return self.child.output_columns()

    def label(self) -> str:
        if isinstance(self.predicate, Expr):
            return f"filter {self.predicate.description}"
        return "filter <mask>"


class Project(PlanNode):
    """Keep a subset of columns, in the given order."""

    __slots__ = ("child", "names")
    op = "project"

    def __init__(self, child: PlanNode, names):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "names", tuple(names))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("plan nodes are immutable")

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def key(self) -> Tuple:
        return ("project", self.child.key(), self.names)

    def fingerprint(self, table_fp) -> Optional[str]:
        child = self.child.fingerprint(table_fp)
        if child is None:
            return None
        return _digest("project", child, repr(self.names))

    def output_columns(self) -> Optional[List[str]]:
        return list(self.names)

    def label(self) -> str:
        return f"project [{', '.join(self.names)}]"


class Sort(PlanNode):
    """Stable sort by one or more key columns."""

    __slots__ = ("child", "names", "descending")
    op = "sort"

    def __init__(self, child: PlanNode, names, descending: bool = False):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "names", tuple(names))
        object.__setattr__(self, "descending", bool(descending))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("plan nodes are immutable")

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def key(self) -> Tuple:
        return ("sort", self.child.key(), self.names, self.descending)

    def fingerprint(self, table_fp) -> Optional[str]:
        child = self.child.fingerprint(table_fp)
        if child is None:
            return None
        return _digest("sort", child, repr((self.names, self.descending)))

    def output_columns(self) -> Optional[List[str]]:
        return self.child.output_columns()

    def label(self) -> str:
        arrow = "desc" if self.descending else "asc"
        return f"sort [{', '.join(self.names)}] {arrow}"


class GroupByAgg(PlanNode):
    """Group by key columns and aggregate: ``((out, src, how), ...)``."""

    __slots__ = ("child", "keys", "spec")
    op = "groupby"

    def __init__(self, child: PlanNode, keys, spec: SpecItems):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "keys", tuple(keys))
        object.__setattr__(self, "spec", tuple(spec))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("plan nodes are immutable")

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def key(self) -> Tuple:
        return ("groupby", self.child.key(), self.keys, _spec_key(self.spec))

    def fingerprint(self, table_fp) -> Optional[str]:
        if not _spec_cacheable(self.spec):
            return None
        child = self.child.fingerprint(table_fp)
        if child is None:
            return None
        return _digest("groupby", child, repr((self.keys, self.spec)))

    def output_columns(self) -> Optional[List[str]]:
        return list(self.keys) + [out for out, _, _ in self.spec]

    def label(self) -> str:
        aggs = ", ".join(
            f"{out}={how if isinstance(how, str) else '<fn>'}({src})"
            for out, src, how in self.spec
        )
        return f"groupby [{', '.join(self.keys)}] {{{aggs}}}"


class FusedFilterAgg(PlanNode):
    """Optimizer-fused filter→aggregate: mask, gather only the needed
    columns, then aggregate — the filtered intermediate is never built."""

    __slots__ = ("child", "predicate", "keys", "spec")
    op = "fused_filter_agg"

    def __init__(self, child: PlanNode, predicate: Expr, keys, spec: SpecItems):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "keys", tuple(keys))
        object.__setattr__(self, "spec", tuple(spec))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("plan nodes are immutable")

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def key(self) -> Tuple:
        return (
            "fused_filter_agg",
            self.child.key(),
            self.predicate.key(),
            self.keys,
            _spec_key(self.spec),
        )

    def fingerprint(self, table_fp) -> Optional[str]:
        if not _spec_cacheable(self.spec):
            return None
        child = self.child.fingerprint(table_fp)
        if child is None:
            return None
        return _digest(
            "fused_filter_agg",
            child,
            repr(self.predicate.key()),
            repr((self.keys, self.spec)),
        )

    def output_columns(self) -> Optional[List[str]]:
        return list(self.keys) + [out for out, _, _ in self.spec]

    def label(self) -> str:
        aggs = ", ".join(
            f"{out}={how if isinstance(how, str) else '<fn>'}({src})"
            for out, src, how in self.spec
        )
        return (
            f"fused filter+groupby [{', '.join(self.keys)}] {{{aggs}}} "
            f"where {self.predicate.description}"
        )


class Join(PlanNode):
    """Hash join of two plans on equal key columns."""

    __slots__ = ("left", "right", "on", "how", "suffix")
    op = "join"

    def __init__(self, left: PlanNode, right: PlanNode, on, how, suffix):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "on", tuple(on))
        object.__setattr__(self, "how", how)
        object.__setattr__(self, "suffix", suffix)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("plan nodes are immutable")

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def key(self) -> Tuple:
        return (
            "join",
            self.left.key(),
            self.right.key(),
            self.on,
            self.how,
            self.suffix,
        )

    def fingerprint(self, table_fp) -> Optional[str]:
        left = self.left.fingerprint(table_fp)
        right = self.right.fingerprint(table_fp)
        if left is None or right is None:
            return None
        return _digest(
            "join", left, right, repr((self.on, self.how, self.suffix))
        )

    def output_columns(self) -> Optional[List[str]]:
        left = self.left.output_columns()
        right = self.right.output_columns()
        if left is None or right is None:
            return None
        out = list(left)
        taken = set(left)
        for name in right:
            if name in self.on:
                continue
            out_name = name if name not in taken else f"{name}{self.suffix}"
            taken.add(out_name)
            out.append(out_name)
        return out

    def label(self) -> str:
        return f"join {self.how} on [{', '.join(self.on)}]"


def render(node: PlanNode, indent: int = 0) -> str:
    """Multi-line tree rendering (root first, children indented)."""
    lines = ["  " * indent + node.label()]
    for child in node.children():
        lines.append(render(child, indent + 1))
    return "\n".join(lines)


def walk(node: PlanNode):
    """Yield every node in the tree, root first (pre-order)."""
    yield node
    for child in node.children():
        yield from walk(child)
