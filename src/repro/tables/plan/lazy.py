"""``Table.lazy()``: the deferred, optimizer-driven query API.

A :class:`Plan` wraps a logical plan tree and mirrors the eager ``Table``
verbs — ``filter``, ``select``, ``sort_by``, ``join``, ``group_by(...)
.aggregate(...)`` — but builds nodes instead of executing.  ``collect()``
optimizes the tree (predicate pushdown, projection pruning, filter
fusion, fused filter→aggregate) and runs it through the default
executor, optionally against the process-wide content-fingerprint reuse
cache.  ``explain()`` renders the before/after trees, which is also what
``repro plan explain`` prints.

>>> from repro.tables import Table, col
>>> t = Table.from_dict({"k": ["a", "b", "a"], "v": [1.0, 2.0, 3.0]})
>>> plan = t.lazy().filter(col("v") > 1.0).group_by("k").aggregate(
...     {"n": ("v", "count")}
... )
>>> plan.collect().sort_by("k").to_dicts()
[{'k': 'a', 'n': 1}, {'k': 'b', 'n': 1}]
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple, Union

from repro import obs
from repro.tables.plan import executor as _executor
from repro.tables.plan import optimizer as _optimizer
from repro.tables.plan.nodes import (
    Filter,
    GroupByAgg,
    Join,
    PlanNode,
    Project,
    Scan,
    Sort,
    render,
    spec_as_items,
)

__all__ = ["LazyGroupBy", "Plan"]


class Plan:
    """A deferred relational query over one or more tables."""

    def __init__(self, node: PlanNode):
        self._node = node

    # -- builders ----------------------------------------------------------
    def filter(self, predicate) -> "Plan":
        """Defer a row filter (an ``Expr`` or a raw boolean mask)."""
        return Plan(Filter(self._node, predicate))

    def select(self, names: Sequence[str]) -> "Plan":
        """Defer a projection onto ``names``, in order."""
        return Plan(Project(self._node, names))

    def sort_by(
        self, names: Union[str, Sequence[str]], descending: bool = False
    ) -> "Plan":
        """Defer a stable sort."""
        if isinstance(names, str):
            names = [names]
        return Plan(Sort(self._node, names, descending))

    def join(
        self,
        other,
        on: Union[str, Sequence[str]],
        how: str = "inner",
        suffix: str = "_right",
    ) -> "Plan":
        """Defer a join; ``other`` may be another :class:`Plan` or a table."""
        if isinstance(on, str):
            on = [on]
        right = other._node if isinstance(other, Plan) else Scan(other)
        return Plan(Join(self._node, right, on, how, suffix))

    def group_by(self, keys: Union[str, Sequence[str]]) -> "LazyGroupBy":
        """Defer a grouping; finish with ``.aggregate(spec)``."""
        if isinstance(keys, str):
            keys = [keys]
        return LazyGroupBy(self._node, tuple(keys))

    # -- introspection -----------------------------------------------------
    def logical(self) -> PlanNode:
        """The unoptimized logical tree."""
        return self._node

    def optimized(self) -> Tuple[PlanNode, Dict[str, int]]:
        """The optimized tree plus the rewrite-rule tally."""
        return _optimizer.optimize(self._node)

    def explain(self) -> str:
        """Before/after tree rendering plus applied rewrite counts."""
        optimized, counts = self.optimized()
        lines = ["logical plan:", _indent(render(self._node))]
        lines += ["optimized plan:", _indent(render(optimized))]
        if counts:
            applied = "  ".join(
                f"{rule}={n}" for rule, n in sorted(counts.items())
            )
        else:
            applied = "(none)"
        lines.append(f"rewrites: {applied}")
        return "\n".join(lines)

    # -- execution ---------------------------------------------------------
    def collect(self, optimize: bool = True, reuse: bool = True):
        """Execute the plan and return the result :class:`Table`.

        ``optimize=False`` runs the raw logical tree (the eager-equivalent
        oracle); ``reuse=False`` skips the content-fingerprint subplan
        cache.
        """
        node = self._node
        counts: Dict[str, int] = {}
        if optimize:
            node, counts = _optimizer.optimize(node)
        cache = _executor.global_plan_cache() if reuse else None
        with obs.span(
            "plan.collect",
            metric="plan.collect_ms",
            optimized=bool(optimize),
            rewrites=sum(counts.values()),
        ):
            return _executor.execute(node, cache=cache)

    def __repr__(self) -> str:
        return f"Plan({self._node.label()})"


class LazyGroupBy:
    """The deferred counterpart of :class:`repro.tables.groupby.GroupBy`."""

    def __init__(self, node: PlanNode, keys: Tuple[str, ...]):
        self._node = node
        self._keys = keys

    def aggregate(self, spec) -> Plan:
        """Defer ``{out: (src, how)}`` aggregation over the grouping."""
        return Plan(GroupByAgg(self._node, self._keys, spec_as_items(spec)))

    def __repr__(self) -> str:
        return f"LazyGroupBy(keys={list(self._keys)})"


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


def lazy_scan(table) -> Plan:
    """Entry point used by ``Table.lazy()``."""
    return Plan(Scan(table))
