"""Logical query plans over the columnar engine.

``repro.tables.plan`` holds the lazy layer introduced on top of the
eager ``Table`` API: plan nodes (:mod:`.nodes`), the rewrite-rule
optimizer (:mod:`.optimizer`), the executing backend plus reuse cache
(:mod:`.executor`), and the user-facing ``Table.lazy()`` wrapper
(:mod:`.lazy`).  See ``docs/TABLES.md`` ("Lazy plans and the
optimizer") for the semantics guarantees.
"""

from repro.tables.plan.executor import PlanCache, execute, global_plan_cache
from repro.tables.plan.lazy import LazyGroupBy, Plan, lazy_scan
from repro.tables.plan.nodes import (
    Filter,
    FusedFilterAgg,
    GroupByAgg,
    Join,
    PlanNode,
    Project,
    Scan,
    Sort,
    render,
    spec_as_items,
    walk,
)
from repro.tables.plan.optimizer import optimize

__all__ = [
    "Filter",
    "FusedFilterAgg",
    "GroupByAgg",
    "Join",
    "LazyGroupBy",
    "Plan",
    "PlanCache",
    "PlanNode",
    "Project",
    "Scan",
    "Sort",
    "execute",
    "global_plan_cache",
    "lazy_scan",
    "optimize",
    "render",
    "spec_as_items",
    "walk",
]
