"""The default plan executor: eager node-at-a-time evaluation + reuse cache.

Every node executes through the same columnar primitives the eager
``Table`` API used before the planner existed (mask-based filtering,
column projection, ``sort_ranks`` + lexsort, ``aggregate_impl``,
``run_join``), so lazy results are byte-identical to eager ones — the
executor *is* the eager engine, just driven by a tree.

Each node runs under an obs span (``plan.<op>``, histogram
``plan.<op>_ms``); optimizer counters live under ``plan.opt.*`` and the
reuse cache reports ``plan.cache.hit`` / ``plan.cache.miss``.

Common-subplan reuse is content-fingerprint-keyed: a :class:`Scan`
fingerprints its table's actual bytes (memoized per table object via a
weak map, so a million-row table is hashed once per process, not once
per collect), and every operator folds its parameters on top.  Two
collects whose plans share a subtree over identical input content get
the cached table back without re-executing — the shape the paper's
analyses hit constantly, re-running the same clean→slice→aggregate
chain per study period.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Dict, Optional

import numpy as np

from repro import obs
from repro.tables.expr import Expr
from repro.tables.plan.nodes import (
    Filter,
    FusedFilterAgg,
    GroupByAgg,
    Join,
    PlanNode,
    Project,
    Scan,
    Sort,
)
from repro.util.errors import DataError

__all__ = ["PlanCache", "execute", "global_plan_cache"]


class PlanCache:
    """Bounded LRU of node fingerprint → result table, plus the per-table
    content-fingerprint memo the :class:`Scan` nodes consult."""

    def __init__(self, max_entries: int = 32):
        self.max_entries = max_entries
        self._results: "OrderedDict[str, object]" = OrderedDict()
        self._table_fps: "weakref.WeakKeyDictionary" = (
            weakref.WeakKeyDictionary()
        )
        self.hits = 0
        self.misses = 0

    def table_fp(self, table) -> str:
        """Content fingerprint of a table, memoized by object identity."""
        fp = self._table_fps.get(table)
        if fp is None:
            from repro.obs.lineage import fingerprint_table

            fp = fingerprint_table(table)["fingerprint"]
            self._table_fps[table] = fp
        return fp

    def get(self, fingerprint: str):
        entry = self._results.get(fingerprint)
        if entry is not None:
            self._results.move_to_end(fingerprint)
            self.hits += 1
            obs.counter("plan.cache.hit").inc()
        else:
            self.misses += 1
            obs.counter("plan.cache.miss").inc()
        return entry

    def put(self, fingerprint: str, table) -> None:
        self._results[fingerprint] = table
        self._results.move_to_end(fingerprint)
        while len(self._results) > self.max_entries:
            self._results.popitem(last=False)

    def clear(self) -> None:
        self._results.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._results)


#: Process-wide reuse cache; ``Plan.collect(reuse=True)`` shares it so
#: repeated analysis chains over the same inputs skip re-execution.
_GLOBAL_CACHE = PlanCache()


def global_plan_cache() -> PlanCache:
    return _GLOBAL_CACHE


def execute(
    node: PlanNode,
    cache: Optional[PlanCache] = None,
    fact_hint=None,
):
    """Execute a plan tree and return the result table.

    ``cache`` enables content-fingerprint subplan reuse (pass
    :func:`global_plan_cache` or a private instance); ``None`` — the
    eager routing default — skips all fingerprinting.  ``fact_hint`` lets
    an already-factorized ``GroupBy`` hand its factorization to a
    root-level :class:`GroupByAgg` so eager ``aggregate`` calls don't
    factorize twice.
    """
    expr_cache: Dict = {}
    return _exec(node, cache, expr_cache, fact_hint)


def _exec(
    node: PlanNode,
    cache: Optional[PlanCache],
    expr_cache: Dict,
    fact_hint=None,
):
    if isinstance(node, Scan):
        return node.table

    fingerprint = None
    if cache is not None:
        fingerprint = node.fingerprint(cache.table_fp)
        if fingerprint is not None:
            hit = cache.get(fingerprint)
            if hit is not None:
                return hit

    with obs.span(
        "plan." + node.op, metric=f"plan.{node.op}_ms"
    ) as span:
        result = _dispatch(node, cache, expr_cache, fact_hint, span)
        span.set(rows=result.n_rows)

    if cache is not None and fingerprint is not None:
        cache.put(fingerprint, result)
    return result


def _dispatch(
    node: PlanNode,
    cache: Optional[PlanCache],
    expr_cache: Dict,
    fact_hint,
    span=None,
):
    # Selective nodes also record rows_in, so the hotspot profile can put
    # a selectivity next to a hot plan.filter / plan.fused_filter_agg.
    if isinstance(node, Filter):
        child = _exec(node.child, cache, expr_cache)
        if span is not None:
            span.set(rows_in=child.n_rows)
        return child._filter_with_mask(
            _mask_for(node.predicate, child, expr_cache)
        )
    if isinstance(node, Project):
        child = _exec(node.child, cache, expr_cache)
        return child._project(node.names)
    if isinstance(node, Sort):
        child = _exec(node.child, cache, expr_cache)
        return child._sort_by_impl(node.names, node.descending)
    if isinstance(node, GroupByAgg):
        from repro.tables.groupby import aggregate_impl

        child = _exec(node.child, cache, expr_cache)
        return aggregate_impl(child, list(node.keys), node.spec, fact=fact_hint)
    if isinstance(node, FusedFilterAgg):
        child = _exec(node.child, cache, expr_cache)
        if span is not None:
            span.set(rows_in=child.n_rows)
        return _exec_fused(node, child, expr_cache)
    if isinstance(node, Join):
        from repro.tables.join import run_join

        left = _exec(node.left, cache, expr_cache)
        right = _exec(node.right, cache, expr_cache)
        return run_join(left, right, list(node.on), node.how, node.suffix)
    raise DataError(f"unknown plan node {node!r}")


def _mask_for(predicate, table, expr_cache: Dict) -> np.ndarray:
    if isinstance(predicate, Expr):
        return predicate.evaluate(table, expr_cache)
    return np.asarray(predicate, dtype=bool)


def _exec_fused(node: FusedFilterAgg, child, expr_cache: Dict):
    """Fused filter→aggregate: mask once, gather only key/source columns.

    Masking then taking by the surviving row indices produces exactly the
    arrays ``Filter`` would have built for those columns — the other
    columns of the filtered intermediate are simply never materialized —
    so the aggregate output is byte-identical to the unfused plan.
    """
    from repro.tables.groupby import aggregate_impl
    from repro.tables.table import Table

    mask = node.predicate.evaluate(child, expr_cache)
    if len(mask) != child.n_rows:
        raise DataError(
            f"mask length {len(mask)} != table rows {child.n_rows}"
        )
    idx = np.flatnonzero(mask)
    needed = list(
        dict.fromkeys(list(node.keys) + [src for _, src, _ in node.spec])
    )
    sub = Table([child.column(name).take(idx) for name in needed])
    return aggregate_impl(sub, list(node.keys), node.spec)
