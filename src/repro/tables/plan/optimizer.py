"""Rule-based logical-plan optimizer: pushdown, pruning, fusion.

Four rewrite rules, each only applied when it provably preserves the
eager semantics byte-for-byte (the hypothesis suite in
``tests/tables/test_plan_properties.py`` pins this down):

``filter-fusion``
    ``Filter(Filter(c, p1), p2) -> Filter(c, p1 & p2)``.  Predicates are
    row-wise, so evaluating ``p2`` against the unfiltered child yields
    the same per-row booleans and the conjunction selects the same rows
    in the same order — one mask pass instead of two materializations.
``predicate-pushdown``
    Filters move below ``Sort`` (stable sort of the filtered subset
    equals the filtered subsequence of the stable-sorted whole) and into
    the left side of a ``Join`` when every predicate column resolves to
    a left column (join output is left-major and pools are shared, so
    the bytes cannot change) — rows drop before the expensive operator.
``projection-pruning``
    ``Project(Filter(c, p), names) -> Filter(Project(c, names), p)``
    when ``p`` only reads projected columns, so the filter materializes
    only the surviving columns; nested projects collapse.
``filter-agg-fusion``
    ``GroupByAgg(Filter(c, p), keys, spec) -> FusedFilterAgg(...)``: the
    executor masks once and gathers only key/source columns — the full
    filtered intermediate is never built.

Rules run bottom-up to a fixpoint; each application bumps an obs counter
(``plan.opt.<rule>``) and the per-run tally returned alongside the tree
(shown by ``repro plan explain``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro import obs
from repro.tables.expr import Expr
from repro.tables.plan.nodes import (
    Filter,
    FusedFilterAgg,
    GroupByAgg,
    Join,
    PlanNode,
    Project,
    Sort,
)

__all__ = ["optimize"]

#: Safety valve: plans are shallow, but the fixpoint loop is bounded anyway.
_MAX_PASSES = 20


def optimize(node: PlanNode) -> Tuple[PlanNode, Dict[str, int]]:
    """Rewrite a plan to a fixpoint; returns (optimized root, rule tally)."""
    counts: Dict[str, int] = {}
    for _ in range(_MAX_PASSES):
        rewritten, changed = _rewrite(node, counts)
        if not changed:
            break
        node = rewritten
    for rule, n in counts.items():
        obs.counter(f"plan.opt.{rule}").inc(n)
    return node, counts


def _bump(counts: Dict[str, int], rule: str) -> None:
    counts[rule] = counts.get(rule, 0) + 1


def _rewrite(node: PlanNode, counts: Dict[str, int]) -> Tuple[PlanNode, bool]:
    """One bottom-up pass; returns (node, whether anything changed)."""
    changed = False
    # Rewrite children first so parent rules see canonical shapes.
    if isinstance(node, (Filter, Project, Sort, GroupByAgg, FusedFilterAgg)):
        child, child_changed = _rewrite(node.child, counts)
        if child_changed:
            node = _with_child(node, child)
            changed = True
    elif isinstance(node, Join):
        left, l_changed = _rewrite(node.left, counts)
        right, r_changed = _rewrite(node.right, counts)
        if l_changed or r_changed:
            node = Join(left, right, node.on, node.how, node.suffix)
            changed = True

    rule_result = _apply_rules(node, counts)
    if rule_result is not None:
        return rule_result, True
    return node, changed


def _with_child(node: PlanNode, child: PlanNode) -> PlanNode:
    if isinstance(node, Filter):
        return Filter(child, node.predicate)
    if isinstance(node, Project):
        return Project(child, node.names)
    if isinstance(node, Sort):
        return Sort(child, node.names, node.descending)
    if isinstance(node, GroupByAgg):
        return GroupByAgg(child, node.keys, node.spec)
    if isinstance(node, FusedFilterAgg):
        return FusedFilterAgg(child, node.predicate, node.keys, node.spec)
    raise TypeError(f"unexpected node {node!r}")  # pragma: no cover


def _apply_rules(
    node: PlanNode, counts: Dict[str, int]
) -> Optional[PlanNode]:
    """Try each rule at this node; return the rewritten node or None."""
    if isinstance(node, Filter) and isinstance(node.predicate, Expr):
        child = node.child
        # filter-fusion: two stacked predicate filters become one AND.
        if isinstance(child, Filter) and isinstance(child.predicate, Expr):
            _bump(counts, "filter-fusion")
            return Filter(child.child, child.predicate & node.predicate)
        # predicate-pushdown below a stable sort.
        if isinstance(child, Sort):
            _bump(counts, "predicate-pushdown")
            return Sort(
                Filter(child.child, node.predicate),
                child.names,
                child.descending,
            )
        # predicate-pushdown into the left side of a join: only when every
        # predicate column names a LEFT column (the join output keeps left
        # names unsuffixed, so those are the columns the predicate read).
        if isinstance(child, Join):
            left_cols = child.left.output_columns()
            if left_cols is not None and node.predicate.columns() <= set(
                left_cols
            ):
                _bump(counts, "predicate-pushdown")
                return Join(
                    Filter(child.left, node.predicate),
                    child.right,
                    child.on,
                    child.how,
                    child.suffix,
                )

    if isinstance(node, Project):
        child = node.child
        # projection-pruning: nested projects collapse (outer names must be
        # a subset of inner ones or the plan errors either way).
        if isinstance(child, Project) and set(node.names) <= set(child.names):
            _bump(counts, "projection-pruning")
            return Project(child.child, node.names)
        # projection-pruning through a filter: materialize only the columns
        # that survive, provided the predicate reads none of the dropped.
        if (
            isinstance(child, Filter)
            and isinstance(child.predicate, Expr)
            and child.predicate.columns() <= set(node.names)
        ):
            _bump(counts, "projection-pruning")
            return Filter(Project(child.child, node.names), child.predicate)
        # projection-pruning through a sort when every sort key survives:
        # the permutation a stable sort computes depends only on the key
        # columns, so sorting the projected table gives the same row order.
        if isinstance(child, Sort) and set(child.names) <= set(node.names):
            _bump(counts, "projection-pruning")
            return Sort(
                Project(child.child, node.names),
                child.names,
                child.descending,
            )

    if isinstance(node, GroupByAgg):
        child = node.child
        # filter-agg-fusion: aggregate directly over the mask.
        if isinstance(child, Filter) and isinstance(child.predicate, Expr):
            _bump(counts, "filter-agg-fusion")
            return FusedFilterAgg(
                child.child, child.predicate, node.keys, node.spec
            )

    if isinstance(node, FusedFilterAgg):
        child = node.child
        # fold further stacked filters into the fused predicate.
        if isinstance(child, Filter) and isinstance(child.predicate, Expr):
            _bump(counts, "filter-fusion")
            return FusedFilterAgg(
                child.child,
                child.predicate & node.predicate,
                node.keys,
                node.spec,
            )
    return None
