"""The Table: an ordered set of equal-length named columns."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.tables.column import Column
from repro.tables.expr import Expr
from repro.tables.schema import DType, Field, Schema
from repro.util.errors import DataError

__all__ = ["Table", "concat"]

MaskLike = Union[Expr, np.ndarray, Sequence[bool]]


class Table:
    """An immutable-by-convention columnar table.

    All transforming methods (:meth:`filter`, :meth:`select`,
    :meth:`with_column`, :meth:`sort_by`, ...) return new tables.
    """

    def __init__(self, columns: Sequence[Column]):
        if not columns:
            raise DataError("a table needs at least one column")
        n = len(columns[0])
        for c in columns:
            if len(c) != n:
                raise DataError(
                    f"column {c.name!r} has {len(c)} rows, expected {n}"
                )
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            dupes = sorted({x for x in names if names.count(x) > 1})
            raise DataError(f"duplicate column names: {dupes}")
        self._columns: Dict[str, Column] = {c.name: c for c in columns}
        self._n_rows = n

    # -- construction -------------------------------------------------------
    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Any],
        dtypes: Optional[Mapping[str, DType]] = None,
    ) -> "Table":
        """Build a table from ``{name: values}``; dtypes inferred unless given."""
        dtypes = dict(dtypes or {})
        cols = [Column(name, values, dtypes.get(name)) for name, values in data.items()]
        return cls(cols)

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Mapping[str, Any]],
        dtypes: Optional[Mapping[str, DType]] = None,
    ) -> "Table":
        """Build a table from an iterable of row dicts (all same keys)."""
        rows = list(rows)
        if not rows:
            raise DataError("from_rows needs at least one row; use empty() instead")
        names = list(rows[0].keys())
        for i, r in enumerate(rows):
            if list(r.keys()) != names:
                raise DataError(f"row {i} keys {list(r.keys())} != {names}")
        data = {name: [r[name] for r in rows] for name in names}
        return cls.from_dict(data, dtypes)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """An empty table with the given schema."""
        cols = [
            Column(f.name, np.empty(0, dtype=f.dtype.numpy_dtype()), f.dtype)
            for f in schema.fields
        ]
        return cls(cols)

    # -- shape / access -------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self._n_rows

    def __len__(self) -> int:
        return self._n_rows

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    @property
    def schema(self) -> Schema:
        return Schema([Field(c.name, c.dtype) for c in self._columns.values()])

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise DataError(
                f"no column {name!r}; table has {self.column_names}"
            ) from None

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def row(self, index: int) -> Dict[str, Any]:
        if not -self._n_rows <= index < self._n_rows:
            raise IndexError(f"row {index} out of range for {self._n_rows} rows")
        return {name: c.values[index] for name, c in self._columns.items()}

    def iter_rows(self) -> Iterator[Dict[str, Any]]:
        for i in range(self._n_rows):
            yield self.row(i)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return list(self.iter_rows())

    # -- transforms -----------------------------------------------------------
    # The public verbs below build logical plan nodes and run them through
    # the default executor, so eager and lazy (``Table.lazy()``) calls
    # share one engine; the ``_*_impl``/``_filter_with_mask``/``_project``
    # appliers are what the executor dispatches to.

    def lazy(self) -> "Plan":
        """Start a deferred query; see :class:`repro.tables.plan.Plan`."""
        from repro.tables.plan.lazy import lazy_scan

        return lazy_scan(self)

    def filter(self, mask: MaskLike) -> "Table":
        """Keep rows where the predicate/mask is True."""
        from repro.tables.plan import executor as plan_executor
        from repro.tables.plan.nodes import Filter, Scan

        return plan_executor.execute(Filter(Scan(self), mask))

    def _filter_with_mask(self, keep: np.ndarray) -> "Table":
        if len(keep) != self._n_rows:
            raise DataError(
                f"mask length {len(keep)} != table rows {self._n_rows}"
            )
        return Table([c.mask(keep) for c in self._columns.values()])

    def select(self, names: Sequence[str]) -> "Table":
        """Project onto a subset of columns, in the given order."""
        from repro.tables.plan import executor as plan_executor
        from repro.tables.plan.nodes import Project, Scan

        return plan_executor.execute(Project(Scan(self), names))

    def _project(self, names: Sequence[str]) -> "Table":
        return Table([self.column(n) for n in names])

    def drop(self, names: Sequence[str]) -> "Table":
        drop_set = set(names)
        missing = drop_set - set(self._columns)
        if missing:
            raise DataError(f"cannot drop unknown columns {sorted(missing)}")
        kept = [c for n, c in self._columns.items() if n not in drop_set]
        if not kept:
            raise DataError("drop would remove every column")
        return Table(kept)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        for old in mapping:
            self.column(old)  # raises on unknown name
        cols = [
            c.rename(mapping.get(c.name, c.name)) for c in self._columns.values()
        ]
        return Table(cols)

    def with_column(self, name: str, values: Any, dtype: Optional[DType] = None) -> "Table":
        """Add or replace a column."""
        new = Column(name, values, dtype)
        if len(new) != self._n_rows:
            raise DataError(
                f"new column {name!r} has {len(new)} rows, table has {self._n_rows}"
            )
        cols = [c for n, c in self._columns.items() if n != name]
        cols.append(new)
        return Table(cols)

    def take(self, indices: np.ndarray) -> "Table":
        """Row subset/reorder by integer indices."""
        indices = np.asarray(indices)
        return Table([c.take(indices) for c in self._columns.values()])

    def sort_by(self, names: Union[str, Sequence[str]], descending: bool = False) -> "Table":
        """Stable sort; the first listed column is the primary key.

        Stability holds in both directions: tied rows keep their original
        relative order.  Keys are compared as dense ranks (STR columns via
        their dictionary pool, ``None`` treated as ``""``); descending
        sorts negate the ranks rather than reversing the permutation, which
        would flip tie order.
        """
        from repro.tables.plan import executor as plan_executor
        from repro.tables.plan.nodes import Scan, Sort

        if isinstance(names, str):
            names = [names]
        return plan_executor.execute(Sort(Scan(self), names, descending))

    def _sort_by_impl(
        self, names: Sequence[str], descending: bool = False
    ) -> "Table":
        from repro.tables.kernels import sort_ranks

        if not names:
            raise ValueError("sort_by needs at least one column name")
        with obs.span(
            "kernel.sort_by",
            metric="kernel.sort_by_ms",
            rows=self._n_rows,
            n_keys=len(names),
        ):
            # np.lexsort sorts by the LAST key as primary; reverse so the
            # first listed column is the primary sort key.
            keys = [
                sort_ranks(self.column(n), descending=descending)
                for n in reversed(names)
            ]
            order = np.lexsort(tuple(keys))
            return self.take(order)

    def head(self, n: int) -> "Table":
        return self.take(np.arange(min(n, self._n_rows)))

    def sample(self, n: int, rng) -> "Table":
        """A uniform random row sample without replacement (n capped at size)."""
        if n < 1:
            raise ValueError(f"sample size must be >= 1, got {n}")
        n = min(n, self._n_rows)
        indices = rng.choice(self._n_rows, size=n, replace=False)
        return self.take(np.sort(indices))

    def describe(self) -> "Table":
        """Per-numeric-column summary (n, mean, std, min, median, max)."""
        from repro.stats.descriptive import summarize

        rows = []
        for column in self._columns.values():
            if column.dtype is DType.STR:
                continue
            try:
                s = summarize(column.values.astype(np.float64))
            except ValueError:
                continue
            rows.append(
                {
                    "column": column.name,
                    "n": s.n,
                    "mean": s.mean,
                    "std": s.std,
                    "min": s.minimum,
                    "median": s.median,
                    "max": s.maximum,
                }
            )
        if not rows:
            raise DataError("describe: no numeric columns")
        return Table.from_rows(rows)

    @property
    def nbytes(self) -> int:
        """Total bytes of backing storage across all columns."""
        return sum(c.nbytes for c in self._columns.values())

    def memory_usage(self) -> Dict[str, int]:
        """Per-column bytes, in column order (see :attr:`Column.nbytes`)."""
        return {name: c.nbytes for name, c in self._columns.items()}

    def group_by(self, keys: Union[str, Sequence[str]]) -> "GroupBy":
        """Start a group-by; see :class:`repro.tables.groupby.GroupBy`."""
        from repro.tables.groupby import GroupBy

        if isinstance(keys, str):
            keys = [keys]
        return GroupBy(self, list(keys))

    def __repr__(self) -> str:
        return f"Table({self._n_rows} rows x {len(self._columns)} cols: {self.column_names})"


def concat(parts: Sequence[Table]) -> Table:
    """Vertically concatenate tables with identical schemas."""
    if not parts:
        raise DataError("concat needs at least one table")
    schema = parts[0].schema
    for i, t in enumerate(parts[1:], start=1):
        if t.schema != schema:
            raise DataError(
                f"concat: table {i} schema {t.schema!r} != first {schema!r}"
            )
    cols = []
    for f in schema.fields:
        # Column.concat merges dictionary pools for STR columns instead of
        # decoding and re-encoding object arrays.
        cols.append(Column.concat([t.column(f.name) for t in parts]))
    return Table(cols)
