"""CSV / JSON-lines persistence for tables.

Benchmarks dump every reproduced table/figure series to CSV under
``results/`` so the numbers in EXPERIMENTS.md can be re-derived.

Durability (``docs/ROBUSTNESS.md``): the files stay plain CSV/JSONL —
externally readable — but every write commits through
:mod:`repro.storage` (same-directory temp + atomic rename, the cheap
``durable=False`` tier for recomputable bulk outputs) with a ``.sha256``
sidecar, and every read verifies the sidecar when one exists: a torn or
bit-rotten table raises a typed
:class:`~repro.util.errors.ArtifactCorruptError` and quarantines the
file instead of quietly feeding partial rows into an analysis.
"""

from __future__ import annotations

import csv
import io as _io
import json
import logging
import os
from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

import numpy as np

from repro import storage
from repro.obs.memory import record_table_memory
from repro.tables.column import Column
from repro.tables.schema import DType
from repro.tables.table import Table
from repro.util.errors import DataError, ValidationFailure
from repro.tables.validate import ValidationReport

__all__ = [
    "CsvReadResult",
    "read_csv",
    "read_csv_checked",
    "read_jsonl",
    "write_csv",
    "write_jsonl",
]

logger = logging.getLogger(__name__)

_NULL = ""  # CSV representation of a missing string


def write_csv(table: Table, path: str) -> None:
    """Write a table as CSV with a header row (atomic, checksummed)."""
    columns = [table.column(n).to_list() for n in table.column_names]
    buf = _io.StringIO(newline="")
    writer = csv.writer(buf, lineterminator="\r\n")
    writer.writerow(table.column_names)
    for row in zip(*columns):
        writer.writerow([_NULL if v is None else v for v in row])
    # durable=False: tables are recomputable bulk outputs — atomic rename
    # keeps them torn-file-proof, the sidecar detects the power-loss window.
    storage.commit_text(
        path, buf.getvalue(),
        label=f"csv.{os.path.basename(path)}", sidecar=True, durable=False,
    )


@dataclass
class CsvReadResult:
    """A checked CSV read: parsed rows, quarantined raw rows, the report.

    ``quarantine`` holds one ``(line, raw, reason)`` row per rejected CSV
    record: the 1-based line number where the record *started* (quoted
    fields may span physical lines), the raw record re-encoded as CSV, and
    why it was rejected.
    """

    table: Table
    quarantine: Table
    report: ValidationReport


def _encode_record(record: List[str]) -> str:
    buf = _io.StringIO()
    csv.writer(buf, lineterminator="").writerow(record)
    return buf.getvalue()


def _open_verified_text(path: str):
    """A text stream over ``path``, sidecar-verified when a sidecar exists.

    Reading goes through the storage layer (short-read tolerant, routed
    through the active — possibly chaos — filesystem); a checksum
    mismatch quarantines the file and raises
    :class:`~repro.util.errors.ArtifactCorruptError` before a single row
    is parsed.
    """
    text = storage.read_text_verified(path)
    return _io.StringIO(text, newline="")


def read_csv_checked(
    path: str, dtypes: Mapping[str, DType], strict: bool = False
) -> CsvReadResult:
    """Read a CSV, quarantining malformed records instead of dying on them.

    A record is quarantined when its field count differs from the header's
    or any cell fails to parse as its declared dtype.  Strict mode raises
    :class:`ValidationFailure` on the first report with quarantined rows;
    default mode logs one warning and returns whatever parsed.

    Fully blank records (e.g. trailing blank lines some editors append)
    are skipped silently — they encode no row at all.
    """
    with _open_verified_text(path) as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path}: empty CSV file") from None
        missing = [h for h in header if h not in dtypes]
        if missing:
            raise DataError(f"{path}: no dtype given for columns {missing}")
        field_dtypes = [dtypes[h] for h in header]
        data: List[List[object]] = [[] for _ in header]
        # STR cells are interned to int codes as they stream in, so the
        # table is born dictionary-encoded with no object-array pass.
        interns: List[Optional[dict]] = [
            {} if dt is DType.STR else None for dt in field_dtypes
        ]
        bad: List[Tuple[int, str, str]] = []
        while True:
            lineno = reader.line_num + 1
            try:
                record = next(reader)
            except StopIteration:
                break
            if not record or all(cell == "" for cell in record):
                # A trailing blank line (or a stray all-empty record)
                # encodes no row; tolerate it rather than quarantine.
                continue
            if len(record) != len(header):
                bad.append(
                    (
                        lineno,
                        _encode_record(record),
                        f"expected {len(header)} fields, got {len(record)}",
                    )
                )
                continue
            parsed: List[object] = []
            reason = None
            for h, dt, cell in zip(header, field_dtypes, record):
                try:
                    parsed.append(dt.parse(cell))
                except ValueError as exc:
                    reason = f"column {h!r}: {exc}"
                    break
            if reason is not None:
                bad.append((lineno, _encode_record(record), reason))
                continue
            for store, intern, value in zip(data, interns, parsed):
                if intern is None:
                    store.append(value)
                elif value is None:
                    store.append(-1)
                else:
                    code = intern.get(value)
                    if code is None:
                        code = len(intern)
                        intern[value] = code
                    store.append(code)

    n_ok = len(data[0]) if data else 0
    report = ValidationReport(
        name=path,
        n_input=n_ok + len(bad),
        n_passed=n_ok,
        n_quarantined=len(bad),
        reasons=_count_reasons(bad),
    )
    if bad and strict:
        raise ValidationFailure(report)
    if bad:
        logger.warning("%s", report)
    cols = []
    for h, dt, store, intern in zip(header, field_dtypes, data, interns):
        if intern is None:
            cols.append(Column(h, np.asarray(store, dtype=dt.numpy_dtype()), dt))
        else:
            cols.append(Column.from_interned(h, store, list(intern)))
    table = Table(cols)
    record_table_memory(f"read_csv.{os.path.basename(path)}", table)
    quarantine = Table.from_dict(
        {
            "line": [b[0] for b in bad],
            "raw": [b[1] for b in bad],
            "reason": [b[2] for b in bad],
        },
        dtypes={"line": DType.INT, "raw": DType.STR, "reason": DType.STR},
    )
    return CsvReadResult(table=table, quarantine=quarantine, report=report)


def _count_reasons(bad: List[Tuple[int, str, str]]) -> dict:
    counts: dict = {}
    for _, _, reason in bad:
        counts[reason] = counts.get(reason, 0) + 1
    return counts


def read_csv(path: str, dtypes: Mapping[str, DType]) -> Table:
    """Read a CSV written by :func:`write_csv`, raising on any bad record.

    ``dtypes`` must cover every column; CSV carries no type information.
    This is the strict entry point: the first malformed record raises a
    :class:`DataError` naming the offending line.  Use
    :func:`read_csv_checked` to quarantine bad records instead.
    """
    try:
        return read_csv_checked(path, dtypes, strict=True).table
    except ValidationFailure as exc:
        report = exc.report
        raise DataError(
            f"{path}: {report.n_quarantined} malformed CSV record(s): "
            f"{report.top_reasons()}"
        ) from exc


def write_jsonl(table: Table, path: str) -> None:
    """Write a table as one JSON object per line (atomic, checksummed)."""
    lines: List[str] = []
    for row in table.iter_rows():
        clean = {}
        for k, v in row.items():
            if hasattr(v, "item"):  # numpy scalar -> python scalar
                v = v.item()
            clean[k] = v
        lines.append(json.dumps(clean) + "\n")
    storage.commit_text(
        path, "".join(lines),
        label=f"jsonl.{os.path.basename(path)}", sidecar=True, durable=False,
    )


def read_jsonl(path: str, dtypes: Optional[Mapping[str, DType]] = None) -> Table:
    """Read a JSON-lines file written by :func:`write_jsonl`."""
    rows = []
    with _io.StringIO(storage.read_text_verified(path)) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise DataError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
    if not rows:
        raise DataError(f"{path}: no rows")
    return Table.from_rows(rows, dtypes)
