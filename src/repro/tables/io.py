"""CSV / JSON-lines persistence for tables.

Benchmarks dump every reproduced table/figure series to CSV under
``results/`` so the numbers in EXPERIMENTS.md can be re-derived.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Mapping, Optional

from repro.tables.schema import DType
from repro.tables.table import Table
from repro.util.errors import DataError

__all__ = ["read_csv", "read_jsonl", "write_csv", "write_jsonl"]

_NULL = ""  # CSV representation of a missing string


def write_csv(table: Table, path: str) -> None:
    """Write a table as CSV with a header row."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.column_names)
        for row in table.iter_rows():
            writer.writerow(
                [_NULL if v is None else v for v in row.values()]
            )


def read_csv(path: str, dtypes: Mapping[str, DType]) -> Table:
    """Read a CSV written by :func:`write_csv`.

    ``dtypes`` must cover every column; CSV carries no type information.
    """
    with open(path, "r", newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path}: empty CSV file") from None
        missing = [h for h in header if h not in dtypes]
        if missing:
            raise DataError(f"{path}: no dtype given for columns {missing}")
        raw = {h: [] for h in header}
        for lineno, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise DataError(
                    f"{path}:{lineno}: expected {len(header)} fields, got {len(row)}"
                )
            for h, v in zip(header, row):
                raw[h].append(v)
    data = {}
    for h in header:
        dt = dtypes[h]
        if dt is DType.STR:
            data[h] = [None if v == _NULL else v for v in raw[h]]
        elif dt is DType.INT:
            data[h] = [int(v) for v in raw[h]]
        elif dt is DType.FLOAT:
            data[h] = [float("nan") if v == _NULL else float(v) for v in raw[h]]
        elif dt is DType.BOOL:
            data[h] = [v in ("True", "true", "1") for v in raw[h]]
    return Table.from_dict(data, dtypes={h: dtypes[h] for h in header})


def write_jsonl(table: Table, path: str) -> None:
    """Write a table as one JSON object per line (types round-trip)."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for row in table.iter_rows():
            clean = {}
            for k, v in row.items():
                if hasattr(v, "item"):  # numpy scalar -> python scalar
                    v = v.item()
                clean[k] = v
            fh.write(json.dumps(clean) + "\n")


def read_jsonl(path: str, dtypes: Optional[Mapping[str, DType]] = None) -> Table:
    """Read a JSON-lines file written by :func:`write_jsonl`."""
    rows = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise DataError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
    if not rows:
        raise DataError(f"{path}: no rows")
    return Table.from_rows(rows, dtypes)
