"""Column dtypes and table schemas."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.util.errors import DataError

__all__ = ["DType", "Field", "Schema"]


class DType(enum.Enum):
    """Logical column types supported by the engine."""

    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    STR = "str"

    @classmethod
    def from_numpy(cls, dtype: np.dtype) -> "DType":
        """Map a numpy dtype onto a logical DType."""
        kind = np.dtype(dtype).kind
        if kind in ("i", "u"):
            return cls.INT
        if kind == "f":
            return cls.FLOAT
        if kind == "b":
            return cls.BOOL
        if kind in ("O", "U", "S"):
            return cls.STR
        raise DataError(f"unsupported numpy dtype {dtype!r}")

    def numpy_dtype(self) -> np.dtype:
        """The canonical numpy dtype used to store this logical type."""
        return {
            DType.INT: np.dtype(np.int64),
            DType.FLOAT: np.dtype(np.float64),
            DType.BOOL: np.dtype(np.bool_),
            DType.STR: np.dtype(object),
        }[self]


@dataclass(frozen=True)
class Field:
    """A named, typed column slot in a schema."""

    name: str
    dtype: DType

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("field name must be non-empty")


class Schema:
    """An ordered collection of fields with unique names."""

    def __init__(self, fields: Sequence[Field]):
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise DataError(f"duplicate field names in schema: {dupes}")
        self._fields: List[Field] = list(fields)
        self._by_name = {f.name: f for f in self._fields}

    @property
    def fields(self) -> List[Field]:
        return list(self._fields)

    @property
    def names(self) -> List[str]:
        return [f.name for f in self._fields]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._fields)

    def __getitem__(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise DataError(
                f"no field {name!r}; schema has {self.names}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.dtype.value}" for f in self._fields)
        return f"Schema({inner})"
