"""Column dtypes and table schemas."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.util.errors import DataError

__all__ = ["DType", "Field", "Schema"]


class DType(enum.Enum):
    """Logical column types supported by the engine."""

    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    STR = "str"

    @classmethod
    def from_numpy(cls, dtype: np.dtype) -> "DType":
        """Map a numpy dtype onto a logical DType."""
        kind = np.dtype(dtype).kind
        if kind in ("i", "u"):
            return cls.INT
        if kind == "f":
            return cls.FLOAT
        if kind == "b":
            return cls.BOOL
        if kind in ("O", "U", "S"):
            return cls.STR
        raise DataError(f"unsupported numpy dtype {dtype!r}")

    def numpy_dtype(self) -> np.dtype:
        """The canonical numpy dtype used to store this logical type."""
        return {
            DType.INT: np.dtype(np.int64),
            DType.FLOAT: np.dtype(np.float64),
            DType.BOOL: np.dtype(np.bool_),
            DType.STR: np.dtype(object),
        }[self]

    def parse(self, text: str):
        """Parse one CSV cell into this logical type.

        The empty string is the CSV encoding of a missing value: ``None``
        for STR, NaN for FLOAT.  A missing INT or BOOL has no in-column
        representation, so it raises — callers decide whether that means
        "raise DataError" (strict ingest) or "quarantine the row".

        Raises ``ValueError`` on junk so ingest can turn it into a typed,
        per-row quarantine reason instead of an untyped crash.
        """
        if self is DType.STR:
            return None if text == "" else text
        if self is DType.FLOAT:
            return float("nan") if text == "" else float(text)
        if self is DType.INT:
            return int(text)
        if self is DType.BOOL:
            lowered = text.strip().lower()
            if lowered in ("true", "1"):
                return True
            if lowered in ("false", "0", ""):
                return False
            raise ValueError(f"cannot parse {text!r} as bool")
        raise ValueError(f"unhandled dtype {self!r}")  # pragma: no cover

    def accepts(self, value) -> bool:
        """Whether a python value already stored in a table fits this type."""
        if self is DType.STR:
            return value is None or isinstance(value, str)
        if self is DType.BOOL:
            return isinstance(value, (bool, np.bool_))
        if self is DType.INT:
            return isinstance(value, (int, np.integer)) and not isinstance(
                value, (bool, np.bool_)
            )
        if self is DType.FLOAT:
            return isinstance(value, (int, float, np.integer, np.floating))
        return False  # pragma: no cover


@dataclass(frozen=True)
class Field:
    """A named, typed column slot in a schema."""

    name: str
    dtype: DType

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("field name must be non-empty")


class Schema:
    """An ordered collection of fields with unique names."""

    def __init__(self, fields: Sequence[Field]):
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise DataError(f"duplicate field names in schema: {dupes}")
        self._fields: List[Field] = list(fields)
        self._by_name = {f.name: f for f in self._fields}

    @property
    def fields(self) -> List[Field]:
        return list(self._fields)

    @property
    def names(self) -> List[str]:
        return [f.name for f in self._fields]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._fields)

    def __getitem__(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise DataError(
                f"no field {name!r}; schema has {self.names}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def row_issues(self, row) -> List[str]:
        """Type problems of one row dict against this schema.

        Returns one human-readable reason per violation (missing key or a
        value of the wrong logical type); an empty list means the row
        conforms.  Extra keys are ignored — projection is the caller's job.
        """
        issues: List[str] = []
        for f in self._fields:
            if f.name not in row:
                issues.append(f"missing field {f.name!r}")
                continue
            value = row[f.name]
            if not f.dtype.accepts(value):
                issues.append(
                    f"field {f.name!r} expects {f.dtype.value}, "
                    f"got {type(value).__name__} {value!r}"
                )
        return issues

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.dtype.value}" for f in self._fields)
        return f"Schema({inner})"
