"""Column dtypes and table schemas."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.util.errors import DataError

__all__ = [
    "Cols",
    "DERIVED_COLUMNS",
    "DType",
    "Field",
    "NDT_COLUMNS",
    "Schema",
    "TRACE_COLUMNS",
    "known_columns",
]


class Cols:
    """Canonical column-name constants — the single source of truth.

    Every module that names a dataset column in code should reference these
    constants (or a name in :data:`DERIVED_COLUMNS`) instead of retyping the
    string: the ``schema-columns`` lint rule cross-checks ad-hoc string
    literals at table call sites against :func:`known_columns`, so a typo'd
    ``"MeanTput "`` fails the lint gate instead of silently corrupting an
    analysis.
    """

    # -- NDT download table (repro.ndt.measurement.NDT_SCHEMA) --------------
    TEST_ID = "test_id"
    DAY = "day"
    DATE = "date"
    YEAR = "year"
    CITY = "city"
    OBLAST = "oblast"
    CITY_TRUE = "city_true"
    ASN = "asn"
    CLIENT_IP = "client_ip"
    SITE = "site"
    SERVER_IP = "server_ip"
    PROTOCOL = "protocol"
    CCA = "cca"
    TPUT = "tput_mbps"  # the paper's MeanTput
    MIN_RTT = "min_rtt_ms"  # the paper's MinRTT
    LOSS_RATE = "loss_rate"  # the paper's LossRate

    # -- traceroute table (repro.synth.generator.TRACE_SCHEMA) --------------
    PATH = "path"
    AS_PATH = "as_path"
    N_HOPS = "n_hops"

    # -- common derived columns ---------------------------------------------
    PERIOD = "period"
    REASON = "reason"  # quarantine reason (tables.validate.REASON_COLUMN)
    CLIENT_ASN = "client_asn"  # AS of the client IP, mapped via the RIB


#: Ordered column names of the NDT download table.
NDT_COLUMNS = (
    Cols.TEST_ID,
    Cols.DAY,
    Cols.DATE,
    Cols.YEAR,
    Cols.CITY,
    Cols.OBLAST,
    Cols.CITY_TRUE,
    Cols.ASN,
    Cols.CLIENT_IP,
    Cols.SITE,
    Cols.SERVER_IP,
    Cols.PROTOCOL,
    Cols.CCA,
    Cols.TPUT,
    Cols.MIN_RTT,
    Cols.LOSS_RATE,
)

#: Ordered column names of the traceroute table.
TRACE_COLUMNS = (
    Cols.TEST_ID,
    Cols.DAY,
    Cols.YEAR,
    Cols.CLIENT_IP,
    Cols.SERVER_IP,
    Cols.PATH,
    Cols.AS_PATH,
    Cols.N_HOPS,
)

#: Column names produced by transforms (aggregation outputs, ``with_column``
#: additions, report tables).  Any derived name that is later *read* by a
#: ``col()`` / ``select`` / ``group_by`` / ``aggregate`` call site must be
#: registered here, or the ``schema-columns`` lint rule flags it as unknown.
DERIVED_COLUMNS = frozenset(
    {
        Cols.PERIOD,  # study-period label added by analysis.common.with_periods
        Cols.REASON,  # quarantine reason column (tables.validate)
        Cols.CLIENT_ASN,  # client AS added by analysis.common.client_as_column
        # analysis.border: per-border-AS loss deltas
        "border_asn",
        "border_name",
        "ua_asn",
        "ua_name",
        "prewar",
        "wartime",
        "delta",
        # report tables: aggregate outputs and sort keys
        "tests",
        "mean",
        "count",
        "d_loss_pct",
        "d_rtt_pct",
        "d_tput_pct",
        "share",
        "median_loss",
        "significant",
        # analysis.regional: oblast-change outputs
        "zone",
        "prewar_count",
        # analysis.distros: histogram bins
        "bin_low",
        "bin_high",
        "fraction",
        # analysis.routing_churn / analysis.uncertainty
        "changes",
        "agree",
    }
)


def known_columns() -> frozenset:
    """All column names the lint gate accepts at table call sites."""
    return frozenset(NDT_COLUMNS) | frozenset(TRACE_COLUMNS) | DERIVED_COLUMNS


class DType(enum.Enum):
    """Logical column types supported by the engine."""

    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    STR = "str"

    @classmethod
    def from_numpy(cls, dtype: np.dtype) -> "DType":
        """Map a numpy dtype onto a logical DType."""
        kind = np.dtype(dtype).kind
        if kind in ("i", "u"):
            return cls.INT
        if kind == "f":
            return cls.FLOAT
        if kind == "b":
            return cls.BOOL
        if kind in ("O", "U", "S"):
            return cls.STR
        raise DataError(f"unsupported numpy dtype {dtype!r}")

    def numpy_dtype(self) -> np.dtype:
        """The canonical numpy dtype used to store this logical type."""
        return {
            DType.INT: np.dtype(np.int64),
            DType.FLOAT: np.dtype(np.float64),
            DType.BOOL: np.dtype(np.bool_),
            DType.STR: np.dtype(object),
        }[self]

    def parse(self, text: str):
        """Parse one CSV cell into this logical type.

        The empty string is the CSV encoding of a missing value: ``None``
        for STR, NaN for FLOAT.  A missing INT or BOOL has no in-column
        representation, so it raises — callers decide whether that means
        "raise DataError" (strict ingest) or "quarantine the row".

        Raises ``ValueError`` on junk so ingest can turn it into a typed,
        per-row quarantine reason instead of an untyped crash.
        """
        if self is DType.STR:
            return None if text == "" else text
        if self is DType.FLOAT:
            return float("nan") if text == "" else float(text)
        if self is DType.INT:
            return int(text)
        if self is DType.BOOL:
            lowered = text.strip().lower()
            if lowered in ("true", "1"):
                return True
            if lowered in ("false", "0", ""):
                return False
            raise ValueError(f"cannot parse {text!r} as bool")
        raise ValueError(f"unhandled dtype {self!r}")  # pragma: no cover

    def accepts(self, value) -> bool:
        """Whether a python value already stored in a table fits this type."""
        if self is DType.STR:
            return value is None or isinstance(value, str)
        if self is DType.BOOL:
            return isinstance(value, (bool, np.bool_))
        if self is DType.INT:
            return isinstance(value, (int, np.integer)) and not isinstance(
                value, (bool, np.bool_)
            )
        if self is DType.FLOAT:
            return isinstance(value, (int, float, np.integer, np.floating))
        return False  # pragma: no cover


@dataclass(frozen=True)
class Field:
    """A named, typed column slot in a schema."""

    name: str
    dtype: DType

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("field name must be non-empty")


class Schema:
    """An ordered collection of fields with unique names."""

    def __init__(self, fields: Sequence[Field]):
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise DataError(f"duplicate field names in schema: {dupes}")
        self._fields: List[Field] = list(fields)
        self._by_name = {f.name: f for f in self._fields}

    @property
    def fields(self) -> List[Field]:
        return list(self._fields)

    @property
    def names(self) -> List[str]:
        return [f.name for f in self._fields]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._fields)

    def __getitem__(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise DataError(
                f"no field {name!r}; schema has {self.names}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def row_issues(self, row) -> List[str]:
        """Type problems of one row dict against this schema.

        Returns one human-readable reason per violation (missing key or a
        value of the wrong logical type); an empty list means the row
        conforms.  Extra keys are ignored — projection is the caller's job.
        """
        issues: List[str] = []
        for f in self._fields:
            if f.name not in row:
                issues.append(f"missing field {f.name!r}")
                continue
            value = row[f.name]
            if not f.dtype.accepts(value):
                issues.append(
                    f"field {f.name!r} expects {f.dtype.value}, "
                    f"got {type(value).__name__} {value!r}"
                )
        return issues

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.dtype.value}" for f in self._fields)
        return f"Schema({inner})"
