"""Reference row-at-a-time relational implementations.

These are verbatim snapshots of the pre-vectorization ``GroupBy`` and
``join`` hot paths: Python dict loops over rows, per-group aggregator
calls, per-row key tuples.  They are NOT used by the engine anymore — the
fast paths live in :mod:`repro.tables.kernels` — but they define the
behavioral contract the kernels must reproduce, so they are kept for:

* the property tests in ``tests/tables/test_kernels.py``, which assert the
  vectorized engine produces identical tables, and
* ``benchmarks/test_engine_perf.py``, which records the before/after
  timings written to ``BENCH_engine.json``.

Do not "optimize" this module; its slowness is the point.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.tables.column import Column
from repro.tables.schema import DType
from repro.tables.table import Table
from repro.util.errors import DataError

__all__ = ["legacy_aggregate", "legacy_group_index", "legacy_join", "legacy_sort_by"]


def legacy_group_index(table: Table, keys: Sequence[str]) -> Dict[Tuple, np.ndarray]:
    """Map each distinct key tuple to the row indices holding it (row loop)."""
    n = table.n_rows
    key_cols = [table.column(k).values for k in keys]
    buckets: Dict[Tuple, List[int]] = {}
    for i in range(n):
        key = tuple(c[i] for c in key_cols)
        buckets.setdefault(key, []).append(i)
    return {k: np.asarray(v, dtype=np.intp) for k, v in buckets.items()}


def legacy_aggregate(
    table: Table, keys: Sequence[str], spec: Mapping[str, Tuple[str, str]]
) -> Table:
    """The old ``GroupBy.aggregate``: per-(group x metric) aggregator calls."""
    from repro.tables.groupby import AGGREGATORS, _INT_AGGS

    group_index = legacy_group_index(table, keys)
    keys_sorted = sorted(
        group_index,
        key=lambda kt: tuple(("" if v is None else v) for v in kt),
    )
    out_data: Dict[str, list] = {k: [] for k in keys}
    for out in spec:
        out_data[out] = []
    for key in keys_sorted:
        idx = group_index[key]
        for kname, kval in zip(keys, key):
            out_data[kname].append(kval)
        for out, (src, agg) in spec.items():
            vals = table.column(src).values[idx]
            out_data[out].append(AGGREGATORS[agg](vals))

    cols = []
    for kname in keys:
        dtype = table.column(kname).dtype
        cols.append(Column(kname, out_data[kname], dtype))
    for out, (_src, agg) in spec.items():
        if agg == "first":
            dtype = table.column(spec[out][0]).dtype
        elif agg in _INT_AGGS:
            dtype = DType.INT
        else:
            dtype = DType.FLOAT
        cols.append(Column(out, out_data[out], dtype))
    return Table(cols)


def _key_tuples(table: Table, keys: Sequence[str]) -> List[Tuple]:
    cols = [table.column(k).values for k in keys]
    return [tuple(c[i] for c in cols) for i in range(table.n_rows)]


def legacy_join(
    left: Table,
    right: Table,
    on: Union[str, Sequence[str]],
    how: str = "inner",
    suffix: str = "_right",
) -> Table:
    """The old hash join: per-row key tuples and Python dict probing."""
    if isinstance(on, str):
        on = [on]
    if not on:
        raise ValueError("join needs at least one key column")
    if how not in ("inner", "left"):
        raise DataError(f"unsupported join type {how!r}; use 'inner' or 'left'")
    for k in on:
        ldt, rdt = left.column(k).dtype, right.column(k).dtype
        if ldt is not rdt:
            raise DataError(
                f"join key {k!r} dtype mismatch: left {ldt.value}, right {rdt.value}"
            )

    right_index: Dict[Tuple, List[int]] = {}
    for i, key in enumerate(_key_tuples(right, on)):
        right_index.setdefault(key, []).append(i)

    left_take: List[int] = []
    right_take: List[int] = []  # -1 marks "no match" for left joins
    for i, key in enumerate(_key_tuples(left, on)):
        matches = right_index.get(key)
        if matches:
            for j in matches:
                left_take.append(i)
                right_take.append(j)
        elif how == "left":
            left_take.append(i)
            right_take.append(-1)

    left_idx = np.asarray(left_take, dtype=np.intp)
    right_idx = np.asarray(right_take, dtype=np.intp)
    unmatched = right_idx < 0

    out_cols: List[Column] = []
    for name in left.column_names:
        out_cols.append(left.column(name).take(left_idx))

    taken_names = set(left.column_names)
    for name in right.column_names:
        if name in on:
            continue
        out_name = name if name not in taken_names else f"{name}{suffix}"
        if out_name in taken_names:
            raise DataError(f"join output column collision on {out_name!r}")
        taken_names.add(out_name)
        src = right.column(name)
        if not unmatched.any():
            out_cols.append(src.take(right_idx).rename(out_name))
            continue
        if right.n_rows == 0:
            if src.dtype is DType.STR:
                vals = np.full(len(left_idx), None, dtype=object)
                out_cols.append(Column(out_name, vals, DType.STR))
            else:
                vals = np.full(len(left_idx), np.nan, dtype=np.float64)
                out_cols.append(Column(out_name, vals, DType.FLOAT))
            continue
        safe_idx = np.where(unmatched, 0, right_idx)
        if src.dtype is DType.STR:
            vals = src.values[safe_idx].copy()
            vals[unmatched] = None
            out_cols.append(Column(out_name, vals, DType.STR))
        else:
            vals = src.values[safe_idx].astype(np.float64)
            vals[unmatched] = np.nan
            out_cols.append(Column(out_name, vals, DType.FLOAT))
    return Table(out_cols)


def legacy_sort_by(
    table: Table, names: Union[str, Sequence[str]], descending: bool = False
) -> Table:
    """The old sort, including the ``order[::-1]`` descending-tie bug."""
    if isinstance(names, str):
        names = [names]
    keys = []
    for n in reversed(names):
        vals = table.column(n).values
        if vals.dtype == object:
            vals = np.array([("" if v is None else v) for v in vals])
        keys.append(vals)
    order = np.lexsort(keys)
    if descending:
        order = order[::-1]
    return table.take(order)
