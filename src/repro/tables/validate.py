"""Row-validation gate: quarantine malformed rows instead of crashing.

Real M-Lab extracts are dirty — NULL metrics, duplicate test UUIDs,
impossible timestamps — and the paper's pipeline had to survive them.  The
gate here checks a table against a list of vectorized :class:`Rule` objects
and splits it into a *clean* table and a *quarantine* side table whose
extra ``reason`` column records, per row, every rule it violated.

Default mode logs and continues (the paper's drop-and-count behaviour);
strict mode raises :class:`~repro.util.errors.ValidationFailure` carrying
the full :class:`ValidationReport`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tables.schema import Cols, DType
from repro.tables.table import Table
from repro.util.errors import DataError, ValidationFailure

__all__ = [
    "GateResult",
    "Rule",
    "ValidationReport",
    "finite",
    "in_range",
    "matches_length",
    "not_null",
    "positive",
    "unique",
    "validate_table",
    "within",
]

logger = logging.getLogger(__name__)

#: Extra column appended to quarantine tables.
REASON_COLUMN = Cols.REASON


@dataclass(frozen=True)
class Rule:
    """One named validity predicate over whole columns.

    ``check(table)`` returns a boolean mask that is True where a row is
    BAD.  Rules are vectorized so the gate stays O(rows) with numpy doing
    the work — validation must not become the pipeline's bottleneck.
    """

    name: str
    columns: Sequence[str]
    check: Callable[[Table], np.ndarray]

    def bad_mask(self, table: Table) -> np.ndarray:
        missing = [c for c in self.columns if c not in table]
        if missing:
            raise DataError(
                f"rule {self.name!r} needs columns {missing}; "
                f"table has {table.column_names}"
            )
        mask = np.asarray(self.check(table), dtype=bool)
        if len(mask) != table.n_rows:
            raise DataError(
                f"rule {self.name!r} returned a mask of {len(mask)} rows "
                f"for a table of {table.n_rows}"
            )
        return mask


def finite(column: str) -> Rule:
    """FLOAT column must not hold NaN/inf (NULL metrics in real extracts)."""
    return Rule(
        f"{column}:not-finite",
        (column,),
        lambda t: ~np.isfinite(t.column(column).values.astype(np.float64)),
    )


def positive(column: str) -> Rule:
    """Numeric column must be strictly positive and finite."""

    def check(t: Table) -> np.ndarray:
        vals = t.column(column).values.astype(np.float64)
        return ~(np.isfinite(vals) & (vals > 0))

    return Rule(f"{column}:not-positive", (column,), check)


def in_range(column: str, lo: float, hi: float) -> Rule:
    """Numeric column must lie in [lo, hi] (and be finite)."""

    def check(t: Table) -> np.ndarray:
        vals = t.column(column).values.astype(np.float64)
        return ~(np.isfinite(vals) & (vals >= lo) & (vals <= hi))

    return Rule(f"{column}:outside[{lo},{hi}]", (column,), check)


def within(column: str, windows: Sequence) -> Rule:
    """INT day column must fall inside one of the (lo, hi) ordinal windows.

    Catches clock-skewed timestamps: rows stamped outside every study
    period cannot be attributed to a prewar/wartime window.
    """
    spans = [(int(lo), int(hi)) for lo, hi in windows]

    def check(t: Table) -> np.ndarray:
        vals = t.column(column).values.astype(np.int64)
        ok = np.zeros(len(vals), dtype=bool)
        for lo, hi in spans:
            ok |= (vals >= lo) & (vals <= hi)
        return ~ok

    return Rule(f"{column}:outside-study-windows", (column,), check)


def not_null(column: str) -> Rule:
    """STR column must not be None."""
    return Rule(
        f"{column}:null",
        (column,),
        lambda t: t.column(column).isnull(),
    )


def unique(column: str) -> Rule:
    """Column values must be unique; later duplicates are flagged.

    The first occurrence is kept (it is the one a dedup pass would keep),
    mirroring how duplicate test UUIDs are handled against BigQuery.
    """

    def check(t: Table) -> np.ndarray:
        vals = t.column(column).values
        _, first_index = np.unique(vals, return_index=True)
        keep = np.zeros(len(vals), dtype=bool)
        keep[first_index] = True
        return ~keep

    return Rule(f"{column}:duplicate", (column,), check)


def matches_length(count_column: str, list_column: str, sep: str = "|") -> Rule:
    """INT column must equal the element count of a separated STR column.

    Catches truncated scamper traces whose ``n_hops`` no longer matches
    the hop list actually recorded.
    """

    def check(t: Table) -> np.ndarray:
        counts = t.column(count_column).values.astype(np.int64)
        texts = t.column(list_column).values
        actual = np.fromiter(
            (len(v.split(sep)) if isinstance(v, str) and v else 0 for v in texts),
            dtype=np.int64,
            count=len(texts),
        )
        return counts != actual

    return Rule(
        f"{count_column}:!=len({list_column})", (count_column, list_column), check
    )


@dataclass
class ValidationReport:
    """Per-table account of what the gate kept, dropped, and why."""

    name: str
    n_input: int
    n_passed: int
    n_quarantined: int
    reasons: Dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return self.n_quarantined == 0

    def top_reasons(self, k: int = 3) -> str:
        ranked = sorted(self.reasons.items(), key=lambda kv: (-kv[1], kv[0]))
        return ", ".join(f"{name} x{count}" for name, count in ranked[:k]) or "none"

    def __str__(self) -> str:
        return (
            f"validation[{self.name}]: {self.n_passed}/{self.n_input} rows passed, "
            f"{self.n_quarantined} quarantined ({self.top_reasons()})"
        )


@dataclass
class GateResult:
    """The gate's three outputs: clean rows, quarantined rows, the report.

    Invariant (asserted by tests): ``clean.n_rows + quarantine.n_rows ==
    report.n_input`` — every dropped row is accounted for.
    """

    clean: Table
    quarantine: Table
    report: ValidationReport


def quarantine_schema(table: Table):
    """The quarantine side table's schema: input columns + ``reason``."""
    from repro.tables.schema import Field, Schema

    return Schema(table.schema.fields + [Field(REASON_COLUMN, DType.STR)])


def validate_table(
    table: Table,
    rules: Sequence[Rule],
    name: str = "table",
    strict: bool = False,
    log: Optional[logging.Logger] = None,
) -> GateResult:
    """Split ``table`` into clean and quarantined rows by ``rules``.

    Every row failing at least one rule lands in the quarantine table with
    a ``reason`` column joining the names of all rules it broke.  Strict
    mode raises :class:`ValidationFailure` if anything was quarantined;
    default mode logs one warning line and continues.
    """
    log = log or logger
    n = table.n_rows
    bad_any = np.zeros(n, dtype=bool)
    rule_masks: List[Tuple[str, np.ndarray]] = []
    reason_counts: Dict[str, int] = {}
    for rule in rules:
        bad = rule.bad_mask(table)
        count = int(bad.sum())
        if count:
            reason_counts[rule.name] = reason_counts.get(rule.name, 0) + count
            rule_masks.append((rule.name, bad))
        bad_any |= bad

    n_bad = int(bad_any.sum())
    # reason strings are assembled only for the quarantined rows — no
    # per-row bookkeeping over the (much larger) clean majority
    bad_idx = np.nonzero(bad_any)[0]
    reasons: List[List[str]] = [[] for _ in range(n_bad)]
    for rule_name, bad in rule_masks:
        for j in np.nonzero(bad[bad_idx])[0]:
            reasons[j].append(rule_name)
    report = ValidationReport(
        name=name,
        n_input=n,
        n_passed=n - n_bad,
        n_quarantined=n_bad,
        reasons=reason_counts,
    )
    clean = table.filter(~bad_any)
    quarantined = table.filter(bad_any)
    reason_values = np.empty(n_bad, dtype=object)
    reason_values[:] = ["; ".join(parts) for parts in reasons]
    quarantine = quarantined.with_column(REASON_COLUMN, reason_values, DType.STR)

    if n_bad:
        if strict:
            raise ValidationFailure(report)
        log.warning("%s", report)
    return GateResult(clean=clean, quarantine=quarantine, report=report)
