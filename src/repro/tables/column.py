"""A typed, immutable-by-convention column of values.

STR columns are dictionary-encoded: the backing storage is an int32
``codes`` array plus a sorted pool of distinct strings, with ``-1`` as the
missing-value sentinel (None).  Equality, ``isin``, ``isnull`` and
grouping/sorting kernels operate on the integer codes; the object array of
decoded strings is materialized lazily (and cached) only when ``values`` or
``to_list`` is asked for, so the public API is unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.tables.schema import DType
from repro.util.errors import DataError

__all__ = ["Column"]

#: Code used in dictionary-encoded columns for a missing (None) value.
NULL_CODE = -1


def _coerce(values: Any, dtype: DType) -> np.ndarray:
    np_dtype = dtype.numpy_dtype()
    try:
        return np.asarray(values, dtype=np_dtype)
    except (TypeError, ValueError) as exc:
        raise DataError(f"cannot coerce values to {dtype.value}: {exc}") from exc


def _encode_strings(values: Any) -> "tuple[np.ndarray, np.ndarray]":
    """Dictionary-encode a sequence of str/None into (codes, sorted pool)."""
    n = len(values)
    codes = np.empty(n, dtype=np.int32)
    mapping: dict = {}
    for i, v in enumerate(values):
        if v is None:
            codes[i] = NULL_CODE
        elif isinstance(v, str):
            code = mapping.get(v)
            if code is None:
                code = len(mapping)
                mapping[v] = code
            codes[i] = code
        else:
            raise DataError(
                f"str column got non-string value {v!r} at index {i}"
            )
    if not mapping:
        return codes, np.empty(0, dtype=object)
    pool = np.empty(len(mapping), dtype=object)
    pool[:] = list(mapping)
    order = np.argsort(pool)
    # remap first-appearance codes onto the sorted pool; slot -1 keeps the
    # NULL_CODE sentinel fixed under the fancy index below
    remap = np.empty(len(mapping) + 1, dtype=np.int32)
    remap[order] = np.arange(len(order), dtype=np.int32)
    remap[-1] = NULL_CODE
    return remap[codes], pool[order]


def _infer_dtype(values: Sequence[Any]) -> DType:
    if isinstance(values, np.ndarray) and values.dtype != object:
        return DType.from_numpy(values.dtype)
    for v in values:
        if v is None:
            continue
        if isinstance(v, (bool, np.bool_)):
            return DType.BOOL
        if isinstance(v, (int, np.integer)):
            return DType.INT
        if isinstance(v, (float, np.floating)):
            return DType.FLOAT
        if isinstance(v, str):
            return DType.STR
        raise DataError(f"cannot infer column dtype from value {v!r}")
    raise DataError("cannot infer dtype of an all-None or empty column; pass dtype=")


class Column:
    """A named 1-D array of a single logical :class:`DType`.

    Columns wrap numpy arrays; numeric reductions delegate to numpy.  ``None``
    is allowed only in STR columns (missing geolocation labels); numeric
    missing values are represented as NaN in FLOAT columns.

    STR columns store int32 ``codes`` into a sorted string ``pool`` instead
    of an object array; ``values`` decodes transparently.
    """

    def __init__(self, name: str, values: Any, dtype: Union[DType, None] = None):
        if not name:
            raise ValueError("column name must be non-empty")
        codes = pool = None
        if isinstance(values, Column):
            if dtype is None:
                dtype = values.dtype
            if dtype is DType.STR and values._dtype is DType.STR:
                codes, pool = values._codes, values._pool
            else:
                values = values.values
        if codes is None:
            if np.ndim(values) != 1:
                values = np.atleast_1d(values)
                if values.ndim != 1:
                    raise DataError(f"column {name!r}: values must be 1-D")
            if dtype is None:
                dtype = _infer_dtype(values)
            if dtype is DType.STR:
                codes, pool = _encode_strings(values)
                values = None
            else:
                values = _coerce(values, dtype)
        self._name = name
        self._dtype = dtype
        self._data = values if codes is None else None
        self._codes = codes
        self._pool = pool
        self._decoded: Optional[np.ndarray] = None

    @classmethod
    def from_codes(cls, name: str, codes: np.ndarray, pool: np.ndarray) -> "Column":
        """Build a STR column directly from dictionary storage.

        ``pool`` must be a sorted object array of distinct strings and
        ``codes`` an integer array with entries in ``[-1, len(pool))``
        (``-1`` = None).  No validation beyond dtype coercion is performed —
        this is the zero-copy path used by the kernels and the CSV reader.
        """
        if not name:
            raise ValueError("column name must be non-empty")
        col = cls.__new__(cls)
        col._name = name
        col._dtype = DType.STR
        col._data = None
        col._codes = np.ascontiguousarray(codes, dtype=np.int32)
        col._pool = np.asarray(pool, dtype=object)
        col._decoded = None
        return col

    @classmethod
    def from_interned(
        cls, name: str, codes: Any, pool: Sequence[Optional[str]]
    ) -> "Column":
        """Build a STR column from first-appearance interning.

        ``pool`` lists the distinct strings in the order they were first
        seen (e.g. by a CSV reader's intern dict) and ``codes`` indexes
        into it, with ``-1`` for None.  The pool is re-sorted into the
        canonical dictionary order and the codes remapped accordingly.
        """
        codes = np.asarray(codes, dtype=np.int32)
        pool_arr = np.empty(len(pool), dtype=object)
        pool_arr[:] = list(pool)
        if not len(pool_arr):
            return cls.from_codes(name, codes, pool_arr)
        order = np.argsort(pool_arr)
        remap = np.empty(len(pool_arr) + 1, dtype=np.int32)
        remap[order] = np.arange(len(order), dtype=np.int32)
        remap[-1] = NULL_CODE
        return cls.from_codes(name, remap[codes], pool_arr[order])

    # -- identity ---------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def dtype(self) -> DType:
        return self._dtype

    @property
    def values(self) -> np.ndarray:
        """The backing numpy array (treat as read-only).

        For STR columns this decodes codes through the pool into an object
        array of ``str | None``; the result is cached on the column.
        """
        if self._dtype is DType.STR:
            if self._decoded is None:
                lut = np.empty(len(self._pool) + 1, dtype=object)
                lut[: len(self._pool)] = self._pool
                lut[len(self._pool)] = None
                self._decoded = lut[self._codes]
            return self._decoded
        return self._data

    @property
    def codes(self) -> Optional[np.ndarray]:
        """Dictionary codes (STR columns only; None otherwise). Read-only."""
        return self._codes

    @property
    def pool(self) -> Optional[np.ndarray]:
        """Sorted distinct-string pool (STR columns only). Read-only.

        The pool may be a superset of the values actually present: ``take``
        and ``mask`` share the parent's pool rather than re-encoding.
        """
        return self._pool

    @property
    def nbytes(self) -> int:
        """Bytes of backing storage this column holds right now.

        Numeric columns count their numpy buffer.  STR columns count the
        int32 code array, the pool's pointer array, and the UTF-8 payload
        of every pooled string — plus the decoded object-array cache when
        it has been materialized.  The sum is what the memory-accounting
        layer (``repro.obs.memory``) reports per table.
        """
        if self._dtype is DType.STR:
            total = int(self._codes.nbytes) + int(self._pool.nbytes)
            total += sum(len(s.encode("utf-8")) for s in self._pool)
            if self._decoded is not None:
                total += int(self._decoded.nbytes)
            return total
        return int(self._data.nbytes)

    def memory_breakdown(self) -> dict:
        """Component bytes behind :attr:`nbytes` (keys sorted, JSON-ready)."""
        if self._dtype is DType.STR:
            return {
                "codes_bytes": int(self._codes.nbytes),
                "decoded_cache_bytes": (
                    int(self._decoded.nbytes) if self._decoded is not None else 0
                ),
                "pool_bytes": int(self._pool.nbytes)
                + sum(len(s.encode("utf-8")) for s in self._pool),
                "pool_size": int(len(self._pool)),
            }
        return {"data_bytes": int(self._data.nbytes)}

    def rename(self, name: str) -> "Column":
        if self._dtype is DType.STR:
            return Column.from_codes(name, self._codes, self._pool)
        return Column(name, self._data, self._dtype)

    def __len__(self) -> int:
        if self._dtype is DType.STR:
            return len(self._codes)
        return len(self._data)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __getitem__(self, idx: Any) -> Any:
        if self._dtype is DType.STR:
            result = self._codes[idx]
            if isinstance(result, np.ndarray):
                return Column.from_codes(self._name, result, self._pool)
            return None if result < 0 else self._pool[result]
        result = self._data[idx]
        if isinstance(result, np.ndarray):
            return Column(self._name, result, self._dtype)
        return result

    def take(self, indices: np.ndarray) -> "Column":
        if self._dtype is DType.STR:
            return Column.from_codes(self._name, self._codes[indices], self._pool)
        return Column(self._name, self._data[indices], self._dtype)

    def mask(self, keep: np.ndarray) -> "Column":
        keep = np.asarray(keep, dtype=bool)
        if len(keep) != len(self):
            raise DataError(
                f"mask length {len(keep)} != column length {len(self)}"
            )
        return self.take(keep)

    @staticmethod
    def concat(columns: Sequence["Column"]) -> "Column":
        """Concatenate columns of one dtype; STR columns merge pools."""
        if not columns:
            raise DataError("concat needs at least one column")
        head = columns[0]
        if head._dtype is DType.STR:
            merged = np.unique(np.concatenate([c._pool for c in columns]))
            parts = []
            for c in columns:
                # reindex this column's codes into the merged pool; slot -1
                # keeps the NULL_CODE sentinel fixed
                remap = np.empty(len(c._pool) + 1, dtype=np.int32)
                remap[: len(c._pool)] = np.searchsorted(merged, c._pool)
                remap[-1] = NULL_CODE
                parts.append(remap[c._codes])
            return Column.from_codes(head._name, np.concatenate(parts), merged)
        return Column(
            head._name,
            np.concatenate([c.values for c in columns]),
            head._dtype,
        )

    # -- reductions -------------------------------------------------------
    def _numeric(self) -> np.ndarray:
        if self._dtype is DType.STR:
            raise DataError(f"column {self._name!r} is not numeric")
        return self._data.astype(np.float64)

    def mean(self) -> float:
        """Mean, ignoring NaN."""
        return float(np.nanmean(self._numeric()))

    def median(self) -> float:
        """Median, ignoring NaN."""
        return float(np.nanmedian(self._numeric()))

    def std(self, ddof: int = 1) -> float:
        """Sample standard deviation (ddof=1), ignoring NaN."""
        return float(np.nanstd(self._numeric(), ddof=ddof))

    def sum(self) -> float:
        return float(np.nansum(self._numeric()))

    def min(self) -> float:
        return float(np.nanmin(self._numeric()))

    def max(self) -> float:
        return float(np.nanmax(self._numeric()))

    def nunique(self) -> int:
        """Number of distinct values (None/NaN count as one value each)."""
        if self._dtype is DType.STR:
            return int(np.unique(self._codes).size)
        if self._dtype is DType.FLOAT:
            nan = np.isnan(self._data)
            return int(np.unique(self._data[~nan]).size + bool(nan.any()))
        return int(np.unique(self._data).size)

    def to_list(self) -> list:
        return self.values.tolist()

    def unique(self) -> list:
        """Sorted distinct values (None last, NaN collapsed to one)."""
        if self._dtype is DType.STR:
            present = np.unique(self._codes)
            out: List[Any] = [self._pool[c] for c in present if c >= 0]
            if present.size and present[0] < 0:
                out.append(None)
            return out
        if self._dtype is DType.FLOAT:
            nan = np.isnan(self._data)
            out = np.unique(self._data[~nan]).tolist()
            if nan.any():
                out.append(float("nan"))
            return out
        return np.unique(self._data).tolist()

    # -- elementwise arithmetic --------------------------------------------
    def _arith(self, other: Any, op: Callable, name: str) -> "Column":
        if self._dtype is DType.STR:
            raise DataError(f"arithmetic not supported on str column {self._name!r}")
        if isinstance(other, Column):
            if other.dtype is DType.STR:
                raise DataError(f"arithmetic not supported on str column {other.name!r}")
            if len(other) != len(self):
                raise DataError(
                    f"length mismatch: {len(self)} vs {len(other)}"
                )
            other = other.values
        result = op(self._data.astype(np.float64), other)
        return Column(name or self._name, result, DType.FLOAT)

    def __add__(self, other: Any) -> "Column":
        return self._arith(other, np.add, self._name)

    def __sub__(self, other: Any) -> "Column":
        return self._arith(other, np.subtract, self._name)

    def __mul__(self, other: Any) -> "Column":
        return self._arith(other, np.multiply, self._name)

    def __truediv__(self, other: Any) -> "Column":
        def safe_div(a, b):
            b = np.asarray(b, dtype=np.float64)
            return np.divide(a, b, out=np.full_like(a, np.nan), where=b != 0)

        return self._arith(other, safe_div, self._name)

    def map(self, fn: Callable[[Any], Any], dtype: Optional[DType] = None) -> "Column":
        """Elementwise transform; dtype inferred from results unless given.

        On STR columns ``fn`` is called once per *distinct* value (it must
        be pure), then the results are broadcast through the codes — this is
        what makes per-value lookups like IP→AS resolution O(distinct)
        instead of O(rows).
        """
        if self._dtype is DType.STR:
            lut = np.empty(len(self._pool) + 1, dtype=object)
            for i, v in enumerate(self._pool):
                lut[i] = fn(v)
            lut[len(self._pool)] = fn(None) if (self._codes < 0).any() else None
            return Column(self._name, lut[self._codes], dtype)
        return Column(self._name, [fn(v) for v in self._data], dtype)

    # -- elementwise comparisons (used by Expr) ----------------------------
    def _code_of(self, value: str) -> int:
        """Pool index of ``value``, or -2 if absent (pool is sorted)."""
        i = int(np.searchsorted(self._pool, value))
        if i < len(self._pool) and self._pool[i] == value:
            return i
        return -2

    def _cmp(self, other: Any, op: str) -> np.ndarray:
        ops = {
            "==": np.equal,
            "!=": np.not_equal,
            "<": np.less,
            "<=": np.less_equal,
            ">": np.greater,
            ">=": np.greater_equal,
        }
        if isinstance(other, Column):
            other = other.values
        if self._dtype is DType.STR:
            if op in ("<", "<=", ">", ">="):
                raise DataError("ordered comparison not supported on str columns")
            if other is None or isinstance(other, str):
                if other is None:
                    eq = self._codes == NULL_CODE
                else:
                    code = self._code_of(other)
                    if code < 0:
                        eq = np.zeros(len(self), dtype=bool)
                    else:
                        eq = self._codes == code
                return eq if op == "==" else ~eq
            result = ops[op](self.values, other)
            return np.asarray(result, dtype=bool)
        result = ops[op](self._data, other)
        return np.asarray(result, dtype=bool)

    def isin(self, allowed: Iterable[Any]) -> np.ndarray:
        """Membership test; NaN in ``allowed`` matches NaN values (FLOAT)."""
        allowed_set = set(allowed)
        if self._dtype is DType.STR:
            # Encode the allowed strings against the sorted pool with one
            # searchsorted instead of probing the set per pool entry; only
            # str members can match dictionary values.
            strs = np.array(
                sorted(a for a in allowed_set if isinstance(a, str)),
                dtype=object,
            )
            lut = np.empty(len(self._pool) + 1, dtype=bool)
            if len(strs) and len(self._pool):
                pos = np.minimum(
                    np.searchsorted(strs, self._pool), len(strs) - 1
                )
                lut[:-1] = strs[pos] == self._pool
            else:
                lut[:-1] = False
            lut[len(self._pool)] = None in allowed_set
            return lut[self._codes]
        nums = []
        has_nan = False
        for a in allowed_set:
            if isinstance(a, (float, np.floating)) and np.isnan(a):
                has_nan = True
            elif isinstance(a, (bool, np.bool_, int, np.integer, float, np.floating)):
                nums.append(a)
        if nums:
            result = np.isin(self._data, np.asarray(nums))
        else:
            result = np.zeros(len(self), dtype=bool)
        if has_nan and self._dtype is DType.FLOAT:
            result |= np.isnan(self._data)
        return result

    def isnull(self) -> np.ndarray:
        """True where the value is None (STR) or NaN (FLOAT)."""
        if self._dtype is DType.STR:
            return self._codes == NULL_CODE
        if self._dtype is DType.FLOAT:
            return np.isnan(self._data)
        return np.zeros(len(self), dtype=bool)

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self.values[:5])
        ell = ", ..." if len(self) > 5 else ""
        return f"Column({self._name!r}:{self._dtype.value}, [{preview}{ell}], n={len(self)})"
