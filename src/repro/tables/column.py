"""A typed, immutable-by-convention column of values."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from repro.tables.schema import DType
from repro.util.errors import DataError

__all__ = ["Column"]


def _coerce(values: Any, dtype: DType) -> np.ndarray:
    np_dtype = dtype.numpy_dtype()
    if dtype is DType.STR:
        arr = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            if v is not None and not isinstance(v, str):
                raise DataError(
                    f"str column got non-string value {v!r} at index {i}"
                )
            arr[i] = v
        return arr
    try:
        return np.asarray(values, dtype=np_dtype)
    except (TypeError, ValueError) as exc:
        raise DataError(f"cannot coerce values to {dtype.value}: {exc}") from exc


def _infer_dtype(values: Sequence[Any]) -> DType:
    if isinstance(values, np.ndarray) and values.dtype != object:
        return DType.from_numpy(values.dtype)
    for v in values:
        if v is None:
            continue
        if isinstance(v, (bool, np.bool_)):
            return DType.BOOL
        if isinstance(v, (int, np.integer)):
            return DType.INT
        if isinstance(v, (float, np.floating)):
            return DType.FLOAT
        if isinstance(v, str):
            return DType.STR
        raise DataError(f"cannot infer column dtype from value {v!r}")
    raise DataError("cannot infer dtype of an all-None or empty column; pass dtype=")


class Column:
    """A named 1-D array of a single logical :class:`DType`.

    Columns wrap numpy arrays; numeric reductions delegate to numpy.  ``None``
    is allowed only in STR columns (missing geolocation labels); numeric
    missing values are represented as NaN in FLOAT columns.
    """

    def __init__(self, name: str, values: Any, dtype: Union[DType, None] = None):
        if not name:
            raise ValueError("column name must be non-empty")
        if isinstance(values, Column):
            values = values.values
        if np.ndim(values) != 1:
            values = np.atleast_1d(values)
            if values.ndim != 1:
                raise DataError(f"column {name!r}: values must be 1-D")
        if dtype is None:
            dtype = _infer_dtype(values)
        self._name = name
        self._dtype = dtype
        self._values = _coerce(values, dtype)

    # -- identity ---------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def dtype(self) -> DType:
        return self._dtype

    @property
    def values(self) -> np.ndarray:
        """The backing numpy array (treat as read-only)."""
        return self._values

    def rename(self, name: str) -> "Column":
        return Column(name, self._values, self._dtype)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __getitem__(self, idx: Any) -> Any:
        result = self._values[idx]
        if isinstance(result, np.ndarray):
            return Column(self._name, result, self._dtype)
        return result

    def take(self, indices: np.ndarray) -> "Column":
        return Column(self._name, self._values[indices], self._dtype)

    def mask(self, keep: np.ndarray) -> "Column":
        keep = np.asarray(keep, dtype=bool)
        if len(keep) != len(self):
            raise DataError(
                f"mask length {len(keep)} != column length {len(self)}"
            )
        return Column(self._name, self._values[keep], self._dtype)

    # -- reductions -------------------------------------------------------
    def _numeric(self) -> np.ndarray:
        if self._dtype is DType.STR:
            raise DataError(f"column {self._name!r} is not numeric")
        return self._values.astype(np.float64)

    def mean(self) -> float:
        """Mean, ignoring NaN."""
        return float(np.nanmean(self._numeric()))

    def median(self) -> float:
        """Median, ignoring NaN."""
        return float(np.nanmedian(self._numeric()))

    def std(self, ddof: int = 1) -> float:
        """Sample standard deviation (ddof=1), ignoring NaN."""
        return float(np.nanstd(self._numeric(), ddof=ddof))

    def sum(self) -> float:
        return float(np.nansum(self._numeric()))

    def min(self) -> float:
        return float(np.nanmin(self._numeric()))

    def max(self) -> float:
        return float(np.nanmax(self._numeric()))

    def nunique(self) -> int:
        """Number of distinct values (None/NaN count as one value each)."""
        return len(set(self.to_list()))

    def to_list(self) -> list:
        return self._values.tolist()

    def unique(self) -> list:
        """Sorted distinct values."""
        vals = set(self.to_list())
        return sorted(vals, key=lambda v: (v is None, v))

    # -- elementwise arithmetic --------------------------------------------
    def _arith(self, other: Any, op: Callable, name: str) -> "Column":
        if self._dtype is DType.STR:
            raise DataError(f"arithmetic not supported on str column {self._name!r}")
        if isinstance(other, Column):
            if other.dtype is DType.STR:
                raise DataError(f"arithmetic not supported on str column {other.name!r}")
            if len(other) != len(self):
                raise DataError(
                    f"length mismatch: {len(self)} vs {len(other)}"
                )
            other = other.values
        result = op(self._values.astype(np.float64), other)
        return Column(name or self._name, result, DType.FLOAT)

    def __add__(self, other: Any) -> "Column":
        return self._arith(other, np.add, self._name)

    def __sub__(self, other: Any) -> "Column":
        return self._arith(other, np.subtract, self._name)

    def __mul__(self, other: Any) -> "Column":
        return self._arith(other, np.multiply, self._name)

    def __truediv__(self, other: Any) -> "Column":
        def safe_div(a, b):
            b = np.asarray(b, dtype=np.float64)
            return np.divide(a, b, out=np.full_like(a, np.nan), where=b != 0)

        return self._arith(other, safe_div, self._name)

    def map(self, fn: Callable[[Any], Any], dtype: Optional[DType] = None) -> "Column":
        """Elementwise transform; dtype inferred from results unless given."""
        return Column(self._name, [fn(v) for v in self._values], dtype)

    # -- elementwise comparisons (used by Expr) ----------------------------
    def _cmp(self, other: Any, op: str) -> np.ndarray:
        ops = {
            "==": np.equal,
            "!=": np.not_equal,
            "<": np.less,
            "<=": np.less_equal,
            ">": np.greater,
            ">=": np.greater_equal,
        }
        if isinstance(other, Column):
            other = other.values
        if self._dtype is DType.STR and op in ("<", "<=", ">", ">="):
            raise DataError("ordered comparison not supported on str columns")
        result = ops[op](self._values, other)
        return np.asarray(result, dtype=bool)

    def isin(self, allowed: Iterable[Any]) -> np.ndarray:
        allowed_set = set(allowed)
        return np.fromiter(
            (v in allowed_set for v in self._values), dtype=bool, count=len(self)
        )

    def isnull(self) -> np.ndarray:
        """True where the value is None (STR) or NaN (FLOAT)."""
        if self._dtype is DType.STR:
            return np.fromiter(
                (v is None for v in self._values), dtype=bool, count=len(self)
            )
        if self._dtype is DType.FLOAT:
            return np.isnan(self._values)
        return np.zeros(len(self), dtype=bool)

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._values[:5])
        ell = ", ..." if len(self) > 5 else ""
        return f"Column({self._name!r}:{self._dtype.value}, [{preview}{ell}], n={len(self)})"
