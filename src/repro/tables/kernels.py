"""Vectorized relational kernels: factorize + sorted-run reductions.

This is the engine room under :class:`~repro.tables.groupby.GroupBy`,
``join`` and ``Table.sort_by``.  The design splits a group-by into three
vectorized steps:

1. :func:`factorize` maps the key columns to dense group ids (0..G-1),
   already numbered in the engine's canonical output order (keys ascending
   with ``None`` canonicalized to ``""``, first-occurrence tie-break — the
   exact order the old row-loop implementation produced).
2. :func:`group_sorter` stable-sorts the row indices by group id, giving
   one contiguous run per group.
3. Reduction kernels sweep the runs: either pure-numpy primitives
   (``np.bincount``, ``np.fmin/fmax.reduceat``, pair-unique counting) or
   :func:`segment_reduce`, which calls an arbitrary aggregator once per
   contiguous run.  ``segment_reduce`` with the old ``AGGREGATORS``
   functions reproduces the legacy results *bit for bit* (same value
   sequence per group, same numpy call), which is what keeps the paper
   expectation gates byte-identical; the ``group_sum``/``group_mean``/...
   reduceat kernels trade that guarantee for raw throughput and are used by
   the benchmarks and by callers that opt in.

STR columns never decode here — everything runs on dictionary codes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.tables.column import NULL_CODE, Column
from repro.tables.schema import DType

__all__ = [
    "BATCHED_AGGS",
    "Factorized",
    "factorize",
    "group_sorter",
    "segment_reduce",
    "group_count",
    "group_first_index",
    "group_min",
    "group_max",
    "group_sum",
    "group_mean",
    "group_std",
    "group_percentile",
    "group_moments_exact",
    "group_nunique",
    "group_reduce_batched",
    "sort_ranks",
]


def _identity_and_rank(col: Column) -> Tuple[np.ndarray, int, np.ndarray]:
    """Per-row (identity id, cardinality, sort rank) for one key column.

    * identity — distinct values get distinct ids; ``None`` is its own id,
      distinct from ``""``.
    * rank — orders rows the way the legacy engine sorted group keys:
      ascending with ``None`` canonicalized to ``""``.  When ``""`` is
      itself in the pool, ``None`` and ``""`` get the SAME rank (they tied
      under the old ``sorted()`` key and the tie was broken by first
      occurrence); otherwise ``None`` ranks just below every real string.
    """
    if col.dtype is DType.STR:
        codes = col.codes
        pool = col.pool
        ident = codes.astype(np.int64) + 1  # None -> 0
        # even/odd scheme: code c -> 2c+1; None -> 1 if "" is pool[0]
        # (tie with ""), else 0 (below everything)
        rank = 2 * codes.astype(np.int64) + 1
        none_rank = 1 if (len(pool) and pool[0] == "") else 0
        rank = np.where(codes == NULL_CODE, none_rank, rank)
        return ident, len(pool) + 1, rank
    uniq, inv = np.unique(col.values, return_inverse=True)
    inv = inv.astype(np.int64)
    return inv, len(uniq), inv


def _combine(
    ids: Sequence[np.ndarray], cards: Sequence[int]
) -> Tuple[np.ndarray, int]:
    """Fuse per-key identity ids into one dense id per row (plus the bound).

    Re-densifies after every key so the running product of cardinalities
    can never overflow int64.
    """
    combined = ids[0]
    card = cards[0]
    for nxt, nk in zip(ids[1:], cards[1:]):
        if card * nk >= np.iinfo(np.int64).max // 2:
            uniq, combined = np.unique(combined, return_inverse=True)
            combined = combined.astype(np.int64)
            card = len(uniq)
        combined = combined * nk + nxt
        card = card * nk
    return combined, card


@dataclass(frozen=True)
class Factorized:
    """Dense group ids for a set of key columns.

    ``gids[i]`` is the output-ordered group (0..n_groups-1) of row ``i``;
    ``first_idx[g]`` is the first row belonging to output group ``g``.
    """

    gids: np.ndarray
    n_groups: int
    first_idx: np.ndarray


def factorize(key_columns: Sequence[Column]) -> Factorized:
    """Multi-key factorization in canonical group order.

    Group numbering reproduces the legacy ordering exactly: groups sorted
    by their key tuples ascending with ``None`` treated as ``""``, ties
    (None vs "") broken by first occurrence.  NaN FLOAT keys collapse into
    a single group (the legacy dict keyed on NaN objects was unstable
    there; this is the one documented behavioral deviation).
    """
    with obs.span(
        "kernel.factorize",
        metric="kernel.factorize_ms",
        rows=len(key_columns[0]),
        n_keys=len(key_columns),
    ) as span:
        fact = _factorize_impl(key_columns)
        span.set(groups=fact.n_groups)
        return fact


def _factorize_impl(key_columns: Sequence[Column]) -> Factorized:
    n = len(key_columns[0])
    if n == 0:
        return Factorized(
            np.empty(0, dtype=np.int64), 0, np.empty(0, dtype=np.intp)
        )
    ids: List[np.ndarray] = []
    cards: List[int] = []
    ranks: List[np.ndarray] = []
    for col in key_columns:
        ident, card, rank = _identity_and_rank(col)
        ids.append(ident)
        cards.append(card)
        ranks.append(rank)
    combined, card = _combine(ids, cards)
    if card <= max(4 * n, 1 << 16):
        # Dense-id fast path: counting instead of sorting.  First-occurrence
        # indices come from a reversed fancy assignment (the LAST write per
        # id wins, and reversed order makes that the first row).
        counts = np.bincount(combined, minlength=card)
        present = np.nonzero(counts)[0]
        lut = np.empty(card, dtype=np.int64)
        lut[present] = np.arange(len(present), dtype=np.int64)
        gids = lut[combined]
        first_full = np.empty(card, dtype=np.int64)
        first_full[combined[::-1]] = np.arange(n - 1, -1, -1, dtype=np.int64)
        first_idx = first_full[present]
    else:
        _, first_idx, gids = np.unique(
            combined, return_index=True, return_inverse=True
        )
        gids = gids.astype(np.int64)
    # order groups canonically: per-key rank at the group's first row,
    # first occurrence as the final tie-break (= sorted() stability over
    # the legacy dict's insertion order)
    sort_keys = [first_idx] + [r[first_idx] for r in reversed(ranks)]
    group_order = np.lexsort(tuple(sort_keys))
    pos = np.empty(len(group_order), dtype=np.int64)
    pos[group_order] = np.arange(len(group_order), dtype=np.int64)
    return Factorized(
        gids=pos[gids],
        n_groups=len(group_order),
        first_idx=first_idx[group_order].astype(np.intp),
    )


def group_sorter(fact: Factorized) -> Tuple[np.ndarray, np.ndarray]:
    """Stable row order grouping rows into contiguous runs, plus run starts.

    Returns ``(order, starts)`` where ``order`` is a permutation of row
    indices sorted by group id (ties keep row order, so each run is in
    ascending row order — the same sequence the legacy engine fed each
    aggregator) and ``starts[g]`` is the offset of group ``g``'s run.
    """
    gids = fact.gids
    if fact.n_groups <= 1 << 16:
        # numpy's stable argsort radix-sorts 16-bit keys (~4x faster than
        # the 64-bit comparison sort); group counts are almost always small.
        gids = gids.astype(np.uint16)
    order = np.argsort(gids, kind="stable")
    counts = np.bincount(fact.gids, minlength=fact.n_groups)
    starts = (np.cumsum(counts) - counts).astype(np.intp)
    return order, starts


def segment_reduce(
    values: np.ndarray,
    order: np.ndarray,
    starts: np.ndarray,
    fn: Callable[[np.ndarray], object],
) -> list:
    """Apply ``fn`` to each group's contiguous value run (one call per group).

    The run passed to ``fn`` holds exactly the values the legacy per-group
    loop passed it, in the same order, so any numpy reduction produces
    bit-identical floats.  Cost is O(groups) Python calls instead of the
    legacy O(rows) dict build + O(groups x metrics) fancy indexing.
    """
    sorted_vals = values[order]
    n = len(order)
    bounds = np.append(starts, n)
    return [
        fn(sorted_vals[bounds[g] : bounds[g + 1]]) for g in range(len(starts))
    ]


# -- exact vectorized reductions (no per-group Python call) ----------------


def group_count(fact: Factorized) -> np.ndarray:
    return np.bincount(fact.gids, minlength=fact.n_groups).astype(np.int64)


def group_first_index(fact: Factorized) -> np.ndarray:
    """Row index of each group's first member (for ``first`` aggregation)."""
    return fact.first_idx


def group_min(values: np.ndarray, order: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """NaN-ignoring per-group minimum (all-NaN group -> NaN)."""
    return np.fmin.reduceat(values.astype(np.float64)[order], starts)


def group_max(values: np.ndarray, order: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """NaN-ignoring per-group maximum (all-NaN group -> NaN)."""
    return np.fmax.reduceat(values.astype(np.float64)[order], starts)


def group_sum(values: np.ndarray, order: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Per-group NaN-ignoring sum via ``np.add.reduceat``.

    Throughput kernel: summation is sequential per run rather than numpy's
    pairwise ``nansum``, so the low bits can differ from the legacy
    aggregator.  The engine's default path uses :func:`segment_reduce`
    instead; use this when speed matters more than bit equality.
    """
    vals = values.astype(np.float64)[order]
    return np.add.reduceat(np.nan_to_num(vals, nan=0.0), starts)


def group_mean(values: np.ndarray, order: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Per-group NaN-ignoring mean (throughput kernel; see group_sum)."""
    vals = values.astype(np.float64)[order]
    ok = ~np.isnan(vals)
    total = np.add.reduceat(np.where(ok, vals, 0.0), starts)
    denom = np.add.reduceat(ok.astype(np.float64), starts)
    with np.errstate(invalid="ignore"):
        return total / denom


def group_std(
    values: np.ndarray, order: np.ndarray, starts: np.ndarray, ddof: int = 1
) -> np.ndarray:
    """Per-group NaN-ignoring sample std via the two-pass formula.

    Throughput kernel: uses mean-centered sum of squares per run, so the
    low bits can differ from the legacy ``np.std`` call.  Groups with fewer
    than ``ddof + 1`` non-NaN values yield NaN, matching the legacy
    aggregator's contract.
    """
    vals = values.astype(np.float64)[order]
    ok = ~np.isnan(vals)
    n = np.add.reduceat(ok.astype(np.float64), starts)
    total = np.add.reduceat(np.where(ok, vals, 0.0), starts)
    with np.errstate(invalid="ignore"):
        mean = total / n
    centered = np.where(ok, vals - np.repeat(mean, _run_lengths(starts, len(vals))), 0.0)
    ss = np.add.reduceat(centered * centered, starts)
    out = np.full(len(starts), np.nan)
    good = n > ddof
    with np.errstate(invalid="ignore"):
        out[good] = np.sqrt(ss[good] / (n[good] - ddof))
    return out


def group_percentile(
    values: np.ndarray,
    order: np.ndarray,
    starts: np.ndarray,
    q: float,
) -> np.ndarray:
    """Per-group NaN-ignoring linear-interpolation percentile, vectorized.

    Sorts values within each run once, then gathers the two bracketing
    order statistics per group and interpolates — no per-group Python
    call.  Matches ``np.nanpercentile``'s default (linear) method.
    """
    vals = values.astype(np.float64)[order]
    gids_sorted = np.repeat(
        np.arange(len(starts), dtype=np.int64), _run_lengths(starts, len(vals))
    )
    nan = np.isnan(vals)
    # NaN-aware within-group sort: lexsort by (nan-last, value) within gid
    sorter = np.lexsort((vals, nan, gids_sorted))
    svals = vals[sorter]
    n_valid = np.add.reduceat((~nan).astype(np.int64), starts) if len(vals) else np.zeros(0, np.int64)
    out = np.full(len(starts), np.nan)
    good = n_valid > 0
    if not good.any():
        return out
    pos = (q / 100.0) * (n_valid[good] - 1)
    lo = np.floor(pos).astype(np.int64)
    hi = np.ceil(pos).astype(np.int64)
    base = starts[good]
    vlo = svals[base + lo]
    vhi = svals[base + hi]
    # numpy's two-sided lerp: interpolate from the nearer endpoint so the
    # result is bit-identical to np.nanpercentile even at subnormal edges
    t = pos - lo
    diff = vhi - vlo
    interp = vlo + t * diff
    upper = t >= 0.5
    interp[upper] = vhi[upper] - (1.0 - t[upper]) * diff[upper]
    out[good] = interp
    return out


def group_nunique(fact: Factorized, col: Column) -> np.ndarray:
    """Distinct values per group; None/NaN each count as one value.

    Counts distinct (group, value-id) pairs with one ``np.unique`` — NaNs
    are canonicalized to a single id (fixing the legacy set-of-floats NaN
    multiplicity bug), and STR columns use their dictionary codes directly.
    """
    if col.dtype is DType.STR:
        vid = col.codes.astype(np.int64) + 1
        card = len(col.pool) + 1
    else:
        uniq, inv = np.unique(col.values, return_inverse=True)
        vid = inv.astype(np.int64)
        card = max(len(uniq), 1)
    pairs = np.unique(fact.gids * card + vid)
    return np.bincount(pairs // card, minlength=fact.n_groups).astype(np.int64)


def group_moments_exact(
    values: np.ndarray, order: np.ndarray, starts: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Exact per-group moments: ``(count, sum, sumsq, min, max)``.

    NaN-ignoring.  Both sums use ``math.fsum`` over the group's run, so
    each is the correctly rounded double of the exact mathematical sum —
    independent of row order or chunking.  This is the batch counterpart
    of :class:`repro.obs.live.window.MomentState`: a streaming aggregate
    merged across any partition of the same rows reproduces these arrays
    bit-for-bit.  Empty (all-NaN) groups yield sum/sumsq 0.0 and min/max
    NaN.
    """
    vals = values.astype(np.float64)[order]
    n_groups = len(starts)
    counts = np.zeros(n_groups, dtype=np.int64)
    sums = np.zeros(n_groups, dtype=np.float64)
    sumsqs = np.zeros(n_groups, dtype=np.float64)
    mins = np.full(n_groups, np.nan)
    maxs = np.full(n_groups, np.nan)
    bounds = np.append(starts, len(vals))
    for g in range(n_groups):
        seg = vals[bounds[g] : bounds[g + 1]]
        seg = seg[~np.isnan(seg)]
        if len(seg) == 0:
            continue
        counts[g] = len(seg)
        floats = [float(v) for v in seg]
        sums[g] = math.fsum(floats)
        sumsqs[g] = math.fsum(v * v for v in floats)
        mins[g] = float(np.min(seg))
        maxs[g] = float(np.max(seg))
    return counts, sums, sumsqs, mins, maxs


def _run_lengths(starts: np.ndarray, n: int) -> np.ndarray:
    return np.diff(np.append(starts, n))


#: Named aggregators served by :func:`group_reduce_batched` — the
#: size-class-batched kernel that is bit-identical to the legacy
#: per-group numpy calls (unlike the reduceat throughput kernels above).
BATCHED_AGGS = ("sum", "mean", "median", "std", "p25", "p75", "p90", "p95", "p99")

_PERCENTILE_Q = {"p25": 25.0, "p75": 75.0, "p90": 90.0, "p95": 95.0, "p99": 99.0}


def _size_classes(lengths: np.ndarray):
    """Yield ``(size, group_indices)`` for each distinct run length."""
    for size in np.unique(lengths):
        yield int(size), np.nonzero(lengths == size)[0]


def group_reduce_batched(
    values: np.ndarray,
    order: np.ndarray,
    starts: np.ndarray,
    how: str,
) -> np.ndarray:
    """Per-group reduction, batched by group size class — bit-identical to
    calling the legacy :data:`~repro.tables.groupby.AGGREGATORS` function
    once per group run.

    Groups sharing a run length are stacked into one ``(g, L)`` matrix and
    reduced with a single ``axis=1`` numpy call, turning O(groups) Python
    calls into O(distinct sizes).  Identity holds because numpy's axis-1
    reductions evaluate each row exactly as the 1-D call would:

    * ``sum``/``mean`` — ``np.nansum``/``np.nanmean`` over the raw runs
      (NaNs stay in place, zeroed/dropped the same way per row);
    * ``std``/``median``/percentiles — each run's NaNs are first
      stable-partitioned to its end (the 1-D ``nanmedian``/
      ``nanpercentile`` paths compact NaNs the same way, and ``np.std``/
      order statistics are order-invariant on the remaining multiset),
      then groups are re-batched by *valid* count.  ``std`` with fewer
      than 2 valid values and ``median``/percentiles with none yield NaN,
      matching the legacy aggregators.
    """
    if how not in BATCHED_AGGS:
        raise ValueError(f"no batched kernel for {how!r}; use segment_reduce")
    n_groups = len(starts)
    out = np.full(n_groups, np.nan, dtype=np.float64)
    if n_groups == 0:
        return out
    sorted_vals = values.astype(np.float64)[order]
    n = len(sorted_vals)
    lengths = _run_lengths(starts, n)
    if how in ("sum", "mean"):
        reducer = np.nansum if how == "sum" else np.nanmean
        for size, rows in _size_classes(lengths):
            m = sorted_vals[starts[rows][:, None] + np.arange(size)]
            out[rows] = reducer(m, axis=1)
        return out
    # NaN-compacting path: stable-partition each run's NaNs to its end so
    # the valid prefix keeps row order, then batch groups by valid count.
    nan = np.isnan(sorted_vals)
    gids_sorted = np.repeat(np.arange(n_groups, dtype=np.int64), lengths)
    part = np.argsort(gids_sorted * 2 + nan, kind="stable")
    packed = sorted_vals[part]
    n_valid = lengths - np.add.reduceat(nan.astype(np.int64), starts)
    q = _PERCENTILE_Q.get(how)
    for size, rows in _size_classes(n_valid):
        if size == 0 or (how == "std" and size < 2):
            continue
        m = packed[starts[rows][:, None] + np.arange(size)]
        if how == "std":
            out[rows] = np.std(m, axis=1, ddof=1)
        elif how == "median":
            out[rows] = np.median(m, axis=1)
        else:
            out[rows] = np.percentile(m, q, axis=1)
    return out


def sort_ranks(col: Column, descending: bool = False) -> np.ndarray:
    """Dense sortable ranks for one column, stable under ``descending``.

    Ascending ranks reproduce the legacy ``sort_by`` order exactly
    (``None`` canonicalized to ``""``).  For descending sorts the ranks are
    negated — unlike the old ``order[::-1]``, a stable lexsort over negated
    ranks keeps tied rows in their original order.
    """
    _, _, rank = _identity_and_rank(col)
    return -rank if descending else rank
