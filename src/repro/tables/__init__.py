"""A small columnar table engine (the repo's pandas/BigQuery substitute).

The paper's pipeline is relational: filter tests by period and location,
group by day/oblast/AS, aggregate metrics, join NDT rows with traceroute
rows.  ``repro.tables`` provides exactly those operations over numpy-backed
columns:

>>> from repro.tables import Table, col
>>> t = Table.from_dict({"city": ["Kyiv", "Lviv", "Kyiv"], "rtt": [11.0, 5.5, 26.6]})
>>> t.filter(col("city") == "Kyiv").column("rtt").mean()
18.8
"""

from repro.tables.column import Column
from repro.tables.expr import Expr, col
from repro.tables.groupby import AGGREGATORS, GroupBy
from repro.tables.io import (
    CsvReadResult,
    read_csv,
    read_csv_checked,
    read_jsonl,
    write_csv,
    write_jsonl,
)
from repro.tables.join import join
from repro.tables.plan import Plan, PlanNode, global_plan_cache
from repro.tables.pretty import format_table
from repro.tables.schema import DType, Field, Schema
from repro.tables.table import Table, concat
from repro.tables.validate import (
    GateResult,
    Rule,
    ValidationReport,
    validate_table,
)

__all__ = [
    "AGGREGATORS",
    "Column",
    "CsvReadResult",
    "DType",
    "Expr",
    "Field",
    "GateResult",
    "GroupBy",
    "Plan",
    "PlanNode",
    "Rule",
    "Schema",
    "Table",
    "ValidationReport",
    "col",
    "concat",
    "format_table",
    "global_plan_cache",
    "join",
    "read_csv",
    "read_csv_checked",
    "read_jsonl",
    "validate_table",
    "write_csv",
    "write_jsonl",
]
