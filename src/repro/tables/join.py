"""Hash joins between tables (NDT rows ↔ traceroute rows)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.tables.column import Column
from repro.tables.schema import DType
from repro.tables.table import Table
from repro.util.errors import DataError

__all__ = ["join"]


def _key_tuples(table: Table, keys: Sequence[str]) -> List[Tuple]:
    cols = [table.column(k).values for k in keys]
    return [tuple(c[i] for c in cols) for i in range(table.n_rows)]


def join(
    left: Table,
    right: Table,
    on: Union[str, Sequence[str]],
    how: str = "inner",
    suffix: str = "_right",
) -> Table:
    """Join two tables on equal key columns.

    Parameters
    ----------
    on:
        Key column name(s); must exist in both tables with matching dtypes.
    how:
        ``"inner"`` or ``"left"``.  Left joins fill unmatched right-side
        numeric columns with NaN, string columns with ``None``; unmatched
        INT/BOOL right columns are promoted to FLOAT to hold the NaN.
    suffix:
        Appended to right-side non-key columns whose names collide.
    """
    if isinstance(on, str):
        on = [on]
    if not on:
        raise ValueError("join needs at least one key column")
    if how not in ("inner", "left"):
        raise DataError(f"unsupported join type {how!r}; use 'inner' or 'left'")
    for k in on:
        ldt, rdt = left.column(k).dtype, right.column(k).dtype
        if ldt is not rdt:
            raise DataError(
                f"join key {k!r} dtype mismatch: left {ldt.value}, right {rdt.value}"
            )

    right_index: Dict[Tuple, List[int]] = {}
    for i, key in enumerate(_key_tuples(right, on)):
        right_index.setdefault(key, []).append(i)

    left_take: List[int] = []
    right_take: List[int] = []  # -1 marks "no match" for left joins
    for i, key in enumerate(_key_tuples(left, on)):
        matches = right_index.get(key)
        if matches:
            for j in matches:
                left_take.append(i)
                right_take.append(j)
        elif how == "left":
            left_take.append(i)
            right_take.append(-1)

    left_idx = np.asarray(left_take, dtype=np.intp)
    right_idx = np.asarray(right_take, dtype=np.intp)
    unmatched = right_idx < 0

    out_cols: List[Column] = []
    for name in left.column_names:
        out_cols.append(left.column(name).take(left_idx))

    taken_names = set(left.column_names)
    for name in right.column_names:
        if name in on:
            continue
        out_name = name if name not in taken_names else f"{name}{suffix}"
        if out_name in taken_names:
            raise DataError(f"join output column collision on {out_name!r}")
        taken_names.add(out_name)
        src = right.column(name)
        if not unmatched.any():
            out_cols.append(src.take(right_idx).rename(out_name))
            continue
        # Left join with gaps: take matched rows, then blank the gaps.
        if right.n_rows == 0:
            if src.dtype is DType.STR:
                vals = np.full(len(left_idx), None, dtype=object)
                out_cols.append(Column(out_name, vals, DType.STR))
            else:
                vals = np.full(len(left_idx), np.nan, dtype=np.float64)
                out_cols.append(Column(out_name, vals, DType.FLOAT))
            continue
        safe_idx = np.where(unmatched, 0, right_idx)
        if src.dtype is DType.STR:
            vals = src.values[safe_idx].copy()
            vals[unmatched] = None
            out_cols.append(Column(out_name, vals, DType.STR))
        else:
            vals = src.values[safe_idx].astype(np.float64)
            vals[unmatched] = np.nan
            out_cols.append(Column(out_name, vals, DType.FLOAT))
    return Table(out_cols)
