"""Hash joins between tables (NDT rows ↔ traceroute rows).

Vectorized: key columns are mapped into a shared dense id space (STR keys
via merged dictionary pools, numeric keys via ``np.unique`` over both
sides), right rows are bucketed per id with ``bincount``/stable argsort,
and the match expansion is pure index arithmetic (``repeat`` + cumsum
offsets) — no per-row Python tuples or dict probing.  Output row order is
identical to the old loop: left rows in order, each left row's matches in
ascending right-row order, unmatched left rows (left join) interleaved in
place.  NaN FLOAT keys never match anything, matching the old dict
semantics.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.tables import kernels
from repro.tables.column import NULL_CODE, Column
from repro.tables.schema import DType
from repro.tables.table import Table
from repro.util.errors import DataError

__all__ = ["join", "run_join"]


def _shared_key_ids(
    lcol: Column, rcol: Column
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Per-row ids for one key column, shared across both tables.

    Equal values (including None==None for STR) get equal ids; NaN FLOAT
    values each get a unique id so they match nothing.
    """
    if lcol.dtype is DType.STR:
        merged = np.unique(np.concatenate([lcol.pool, rcol.pool]))

        def ids(col: Column) -> np.ndarray:
            remap = np.empty(len(col.pool) + 1, dtype=np.int64)
            remap[: len(col.pool)] = np.searchsorted(merged, col.pool) + 1
            remap[-1] = 0  # NULL_CODE slot: None joins None
            return remap[col.codes]

        return ids(lcol), ids(rcol), len(merged) + 1
    both = np.concatenate([lcol.values, rcol.values])
    uniq, inv = np.unique(both, return_inverse=True)
    inv = inv.astype(np.int64)
    card = max(len(uniq), 1)
    if lcol.dtype is DType.FLOAT:
        nan = np.isnan(both)
        n_nan = int(nan.sum())
        if n_nan:
            inv[nan] = card + np.arange(n_nan, dtype=np.int64)
            card += n_nan
    n_left = len(lcol)
    return inv[:n_left], inv[n_left:], card


def join(
    left: Table,
    right: Table,
    on: Union[str, Sequence[str]],
    how: str = "inner",
    suffix: str = "_right",
) -> Table:
    """Join two tables on equal key columns.

    Parameters
    ----------
    on:
        Key column name(s); must exist in both tables with matching dtypes.
    how:
        ``"inner"`` or ``"left"``.  Left joins fill unmatched right-side
        numeric columns with NaN, string columns with ``None``; unmatched
        INT/BOOL right columns are promoted to FLOAT to hold the NaN.
    suffix:
        Appended to right-side non-key columns whose names collide.
    """
    from repro.tables.plan import executor as plan_executor
    from repro.tables.plan.nodes import Join, Scan

    if isinstance(on, str):
        on = [on]
    node = Join(Scan(left), Scan(right), on, how, suffix)
    return plan_executor.execute(node)


def run_join(
    left: Table,
    right: Table,
    on: Sequence[str],
    how: str,
    suffix: str,
) -> Table:
    """Validated join execution — the engine entry point the plan
    executor's ``Join`` node dispatches to."""
    if not on:
        raise ValueError("join needs at least one key column")
    if how not in ("inner", "left"):
        raise DataError(f"unsupported join type {how!r}; use 'inner' or 'left'")
    for k in on:
        ldt, rdt = left.column(k).dtype, right.column(k).dtype
        if ldt is not rdt:
            raise DataError(
                f"join key {k!r} dtype mismatch: left {ldt.value}, right {rdt.value}"
            )
    with obs.span(
        "kernel.join",
        metric="kernel.join_ms",
        left_rows=left.n_rows,
        right_rows=right.n_rows,
        how=how,
    ):
        return _join_impl(left, right, on, how, suffix)


def _join_impl(
    left: Table,
    right: Table,
    on: Sequence[str],
    how: str,
    suffix: str,
) -> Table:
    n_left, n_right = left.n_rows, right.n_rows
    lids: List[np.ndarray] = []
    rids: List[np.ndarray] = []
    cards: List[int] = []
    for k in on:
        lid, rid, card = _shared_key_ids(left.column(k), right.column(k))
        lids.append(lid)
        rids.append(rid)
        cards.append(card)
    combined, _card = kernels._combine(
        [np.concatenate([l, r]) for l, r in zip(lids, rids)], cards
    )
    _, dense = np.unique(combined, return_inverse=True)
    dense = dense.astype(np.int64)
    lid, rid = dense[:n_left], dense[n_left:]
    n_ids = int(dense.max()) + 1 if len(dense) else 0

    # bucket right rows per key id: counts + start offsets into rorder
    rcounts = np.bincount(rid, minlength=n_ids)
    rorder = np.argsort(rid, kind="stable")
    rstarts = np.cumsum(rcounts) - rcounts

    cnt = rcounts[lid] if n_ids else np.zeros(n_left, dtype=np.int64)
    cnt_eff = np.maximum(cnt, 1) if how == "left" else cnt
    total = int(cnt_eff.sum())
    left_idx = np.repeat(np.arange(n_left, dtype=np.intp), cnt_eff)
    block_start = np.cumsum(cnt_eff) - cnt_eff
    within = np.arange(total, dtype=np.int64) - np.repeat(block_start, cnt_eff)
    matched = np.repeat(cnt > 0, cnt_eff)
    right_idx = np.full(total, -1, dtype=np.intp)
    if n_right and total:
        gather = np.repeat(rstarts[lid], cnt_eff) + within
        right_idx[matched] = rorder[np.where(matched, gather, 0)][matched]
    unmatched = ~matched

    out_cols: List[Column] = []
    for name in left.column_names:
        out_cols.append(left.column(name).take(left_idx))

    taken_names = set(left.column_names)
    for name in right.column_names:
        if name in on:
            continue
        out_name = name if name not in taken_names else f"{name}{suffix}"
        if out_name in taken_names:
            raise DataError(f"join output column collision on {out_name!r}")
        taken_names.add(out_name)
        src = right.column(name)
        if not unmatched.any():
            out_cols.append(src.take(right_idx).rename(out_name))
            continue
        # Left join with gaps: take matched rows, then blank the gaps.
        if n_right == 0:
            if src.dtype is DType.STR:
                vals = np.full(total, None, dtype=object)
                out_cols.append(Column(out_name, vals, DType.STR))
            else:
                vals = np.full(total, np.nan, dtype=np.float64)
                out_cols.append(Column(out_name, vals, DType.FLOAT))
            continue
        safe_idx = np.where(unmatched, 0, right_idx)
        if src.dtype is DType.STR:
            codes = src.codes[safe_idx].copy()
            codes[unmatched] = NULL_CODE
            out_cols.append(Column.from_codes(out_name, codes, src.pool))
        else:
            vals = src.values[safe_idx].astype(np.float64)
            vals[unmatched] = np.nan
            out_cols.append(Column(out_name, vals, DType.FLOAT))
    return Table(out_cols)
