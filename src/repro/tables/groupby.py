"""Group-by and aggregation over tables.

The grouping itself is vectorized (:func:`repro.tables.kernels.factorize`
maps key columns to dense group ids; no per-row Python loop).  Aggregation
runs on three paths:

* exact vectorized kernels for ``count``/``first``/``min``/``max``/
  ``nunique`` — pure numpy, no per-group Python call;
* :func:`~repro.tables.kernels.group_reduce_batched` for the remaining
  named aggregators (``sum``/``mean``/``median``/``std``/percentiles) —
  groups are batched by size class and reduced with one ``axis=1`` numpy
  call per class, bit-identical to the legacy per-group calls;
* :func:`~repro.tables.kernels.segment_reduce` for custom callables,
  which runs the function once per contiguous group run — the fallback
  that keeps arbitrary aggregators bit-identical to the old loop.

``GroupBy.aggregate`` itself routes through the plan layer (a
``GroupByAgg`` node over a ``Scan``), so eager and lazy aggregation share
one executor; :func:`aggregate_impl` is the actual engine entry point.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Tuple, Union

import numpy as np

from repro import obs
from repro.tables import kernels
from repro.tables.column import Column
from repro.tables.schema import DType
from repro.tables.table import Table
from repro.util.errors import DataError

__all__ = ["AGGREGATORS", "GroupBy", "aggregate_impl"]


def _agg_count(values: np.ndarray) -> int:
    return int(len(values))


def _agg_sum(values: np.ndarray) -> float:
    return float(np.nansum(values.astype(np.float64)))


def _agg_mean(values: np.ndarray) -> float:
    return float(np.nanmean(values.astype(np.float64)))


def _agg_median(values: np.ndarray) -> float:
    return float(np.nanmedian(values.astype(np.float64)))


def _agg_std(values: np.ndarray) -> float:
    vals = values.astype(np.float64)
    vals = vals[~np.isnan(vals)]
    if len(vals) < 2:
        return float("nan")
    return float(np.std(vals, ddof=1))


def _agg_min(values: np.ndarray) -> float:
    return float(np.nanmin(values.astype(np.float64)))


def _agg_max(values: np.ndarray) -> float:
    return float(np.nanmax(values.astype(np.float64)))


def _agg_nunique(values: np.ndarray) -> int:
    """Distinct values; None/NaN count as ONE value each (NaN canonicalized)."""
    seen = set()
    has_nan = False
    for v in values.tolist():
        if isinstance(v, float) and v != v:
            has_nan = True
        else:
            seen.add(v)
    return len(seen) + has_nan


def _agg_first(values: np.ndarray):
    return values[0]


def _percentile(q: float) -> Callable[[np.ndarray], float]:
    def agg(values: np.ndarray) -> float:
        return float(np.nanpercentile(values.astype(np.float64), q))

    return agg


#: Registry of named aggregation functions usable in :meth:`GroupBy.aggregate`.
AGGREGATORS: Dict[str, Callable[[np.ndarray], object]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "mean": _agg_mean,
    "median": _agg_median,
    "std": _agg_std,
    "min": _agg_min,
    "max": _agg_max,
    "nunique": _agg_nunique,
    "first": _agg_first,
    "p25": _percentile(25),
    "p75": _percentile(75),
    "p90": _percentile(90),
    "p95": _percentile(95),
    "p99": _percentile(99),
}

#: Aggregators whose output is integer-typed.
_INT_AGGS = {"count", "nunique"}

#: Aggregators served by exact vectorized kernels (no per-group Python call).
_FAST_AGGS = {"count", "first", "min", "max", "nunique"}


def aggregate_impl(table, keys, spec_items, fact=None):
    """Aggregate ``table`` grouped by ``keys`` over ``[(out, src, how), ...]``.

    The engine entry point shared by eager ``GroupBy.aggregate`` and the
    plan executor (``GroupByAgg`` / ``FusedFilterAgg`` nodes).  ``fact``
    lets an already-built :class:`GroupBy` reuse its factorization.
    """
    spec_items = list(spec_items)
    if not spec_items:
        raise ValueError("aggregate spec must not be empty")
    for out, src, agg in spec_items:
        table.column(src)
        if not callable(agg) and agg not in AGGREGATORS:
            raise DataError(
                f"unknown aggregator {agg!r} for output {out!r}; "
                f"choose from {sorted(AGGREGATORS)}"
            )
        if out in keys:
            raise DataError(f"output {out!r} collides with a group key")

    if fact is None:
        fact = kernels.factorize([table.column(k) for k in keys])
    with obs.span(
        "kernel.groupby",
        metric="kernel.groupby_ms",
        rows=table.n_rows,
        groups=fact.n_groups,
        n_aggs=len(spec_items),
    ):
        order, starts = kernels.group_sorter(fact)
        cols: List[Column] = []
        for kname in keys:
            cols.append(table.column(kname).take(fact.first_idx))
        for out, src, agg in spec_items:
            src_col = table.column(src)
            if agg == "count":
                cols.append(Column(out, kernels.group_count(fact), DType.INT))
            elif agg == "first":
                cols.append(src_col.take(fact.first_idx).rename(out))
            elif agg == "nunique":
                cols.append(
                    Column(out, kernels.group_nunique(fact, src_col), DType.INT)
                )
            elif agg == "min":
                cols.append(
                    Column(
                        out,
                        kernels.group_min(src_col.values, order, starts),
                        DType.FLOAT,
                    )
                )
            elif agg == "max":
                cols.append(
                    Column(
                        out,
                        kernels.group_max(src_col.values, order, starts),
                        DType.FLOAT,
                    )
                )
            elif not callable(agg) and agg in kernels.BATCHED_AGGS:
                cols.append(
                    Column(
                        out,
                        kernels.group_reduce_batched(
                            src_col.values, order, starts, agg
                        ),
                        DType.FLOAT,
                    )
                )
            else:
                fn = agg if callable(agg) else AGGREGATORS[agg]
                results = kernels.segment_reduce(src_col.values, order, starts, fn)
                cols.append(Column(out, results, DType.FLOAT))
        return Table(cols)


class GroupBy:
    """A deferred grouping of a table by one or more key columns.

    Example
    -------
    >>> from repro.tables import Table
    >>> t = Table.from_dict({"k": ["a", "a", "b"], "v": [1.0, 3.0, 5.0]})
    >>> g = t.group_by("k").aggregate({"n": ("v", "count"), "avg": ("v", "mean")})
    >>> g.sort_by("k").to_dicts()
    [{'k': 'a', 'n': 2, 'avg': 2.0}, {'k': 'b', 'n': 1, 'avg': 5.0}]
    """

    def __init__(self, table: Table, keys: List[str]):
        if not keys:
            raise ValueError("group_by needs at least one key column")
        for k in keys:
            table.column(k)  # raises on unknown column
        self._table = table
        self._keys = keys
        self._fact = kernels.factorize([table.column(k) for k in keys])

    @property
    def n_groups(self) -> int:
        return self._fact.n_groups

    def groups(self) -> Dict[Tuple, Table]:
        """Materialize each group as its own table (small group counts only)."""
        order, starts = kernels.group_sorter(self._fact)
        bounds = np.append(starts, len(order))
        key_vals = [self._table.column(k).values for k in self._keys]
        out: Dict[Tuple, Table] = {}
        for g in range(self._fact.n_groups):
            idx = order[bounds[g] : bounds[g + 1]]
            key = tuple(kv[self._fact.first_idx[g]] for kv in key_vals)
            out[key] = self._table.take(idx)
        return out

    def aggregate(
        self, spec: Mapping[str, Tuple[str, Union[str, Callable]]]
    ) -> Table:
        """Aggregate each group.

        Parameters
        ----------
        spec:
            ``{output_name: (input_column, aggregator)}`` where aggregator
            is a key of :data:`AGGREGATORS` or a custom callable
            ``ndarray -> scalar`` (custom callables run on the slow path
            and produce FLOAT output).
        """
        from repro.tables.plan import executor as plan_executor
        from repro.tables.plan.nodes import GroupByAgg, Scan, spec_as_items

        node = GroupByAgg(
            Scan(self._table), tuple(self._keys), spec_as_items(spec)
        )
        return plan_executor.execute(node, fact_hint=self._fact)

    def counts(self, out: str = "count") -> Table:
        """Shorthand: group sizes."""
        first_key = self._keys[0]
        return self.aggregate({out: (first_key, "count")})

    def __repr__(self) -> str:
        return f"GroupBy(keys={self._keys}, n_groups={self.n_groups})"
