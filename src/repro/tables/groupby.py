"""Group-by and aggregation over tables."""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Tuple

import numpy as np

from repro.tables.column import Column
from repro.tables.schema import DType
from repro.tables.table import Table
from repro.util.errors import DataError

__all__ = ["AGGREGATORS", "GroupBy"]


def _agg_count(values: np.ndarray) -> int:
    return int(len(values))


def _agg_sum(values: np.ndarray) -> float:
    return float(np.nansum(values.astype(np.float64)))


def _agg_mean(values: np.ndarray) -> float:
    return float(np.nanmean(values.astype(np.float64)))


def _agg_median(values: np.ndarray) -> float:
    return float(np.nanmedian(values.astype(np.float64)))


def _agg_std(values: np.ndarray) -> float:
    vals = values.astype(np.float64)
    vals = vals[~np.isnan(vals)]
    if len(vals) < 2:
        return float("nan")
    return float(np.std(vals, ddof=1))


def _agg_min(values: np.ndarray) -> float:
    return float(np.nanmin(values.astype(np.float64)))


def _agg_max(values: np.ndarray) -> float:
    return float(np.nanmax(values.astype(np.float64)))


def _agg_nunique(values: np.ndarray) -> int:
    return len(set(values.tolist()))


def _agg_first(values: np.ndarray):
    return values[0]


def _percentile(q: float) -> Callable[[np.ndarray], float]:
    def agg(values: np.ndarray) -> float:
        return float(np.nanpercentile(values.astype(np.float64), q))

    return agg


#: Registry of named aggregation functions usable in :meth:`GroupBy.aggregate`.
AGGREGATORS: Dict[str, Callable[[np.ndarray], object]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "mean": _agg_mean,
    "median": _agg_median,
    "std": _agg_std,
    "min": _agg_min,
    "max": _agg_max,
    "nunique": _agg_nunique,
    "first": _agg_first,
    "p25": _percentile(25),
    "p75": _percentile(75),
    "p90": _percentile(90),
    "p95": _percentile(95),
    "p99": _percentile(99),
}

#: Aggregators whose output is integer-typed.
_INT_AGGS = {"count", "nunique"}


class GroupBy:
    """A deferred grouping of a table by one or more key columns.

    Example
    -------
    >>> from repro.tables import Table
    >>> t = Table.from_dict({"k": ["a", "a", "b"], "v": [1.0, 3.0, 5.0]})
    >>> g = t.group_by("k").aggregate({"n": ("v", "count"), "avg": ("v", "mean")})
    >>> g.sort_by("k").to_dicts()
    [{'k': 'a', 'n': 2, 'avg': 2.0}, {'k': 'b', 'n': 1, 'avg': 5.0}]
    """

    def __init__(self, table: Table, keys: List[str]):
        if not keys:
            raise ValueError("group_by needs at least one key column")
        for k in keys:
            table.column(k)  # raises on unknown column
        self._table = table
        self._keys = keys
        self._group_index = self._build_index()

    def _build_index(self) -> Dict[Tuple, np.ndarray]:
        """Map each distinct key tuple to the row indices holding it."""
        n = self._table.n_rows
        key_cols = [self._table.column(k).values for k in self._keys]
        buckets: Dict[Tuple, List[int]] = {}
        for i in range(n):
            key = tuple(c[i] for c in key_cols)
            buckets.setdefault(key, []).append(i)
        return {k: np.asarray(v, dtype=np.intp) for k, v in buckets.items()}

    @property
    def n_groups(self) -> int:
        return len(self._group_index)

    def groups(self) -> Dict[Tuple, Table]:
        """Materialize each group as its own table (small group counts only)."""
        return {key: self._table.take(idx) for key, idx in self._group_index.items()}

    def aggregate(self, spec: Mapping[str, Tuple[str, str]]) -> Table:
        """Aggregate each group.

        Parameters
        ----------
        spec:
            ``{output_name: (input_column, aggregator)}`` where aggregator is
            a key of :data:`AGGREGATORS`.
        """
        if not spec:
            raise ValueError("aggregate spec must not be empty")
        for out, (src, agg) in spec.items():
            self._table.column(src)
            if agg not in AGGREGATORS:
                raise DataError(
                    f"unknown aggregator {agg!r} for output {out!r}; "
                    f"choose from {sorted(AGGREGATORS)}"
                )
            if out in self._keys:
                raise DataError(f"output {out!r} collides with a group key")

        keys_sorted = sorted(
            self._group_index,
            key=lambda kt: tuple(("" if v is None else v) for v in kt),
        )
        out_data: Dict[str, list] = {k: [] for k in self._keys}
        for out in spec:
            out_data[out] = []
        for key in keys_sorted:
            idx = self._group_index[key]
            for kname, kval in zip(self._keys, key):
                out_data[kname].append(kval)
            for out, (src, agg) in spec.items():
                vals = self._table.column(src).values[idx]
                out_data[out].append(AGGREGATORS[agg](vals))

        cols = []
        for kname in self._keys:
            dtype = self._table.column(kname).dtype
            cols.append(Column(kname, out_data[kname], dtype))
        for out, (_src, agg) in spec.items():
            if agg == "first":
                dtype = self._table.column(spec[out][0]).dtype
            elif agg in _INT_AGGS:
                dtype = DType.INT
            else:
                dtype = DType.FLOAT
            cols.append(Column(out, out_data[out], dtype))
        return Table(cols)

    def counts(self, out: str = "count") -> Table:
        """Shorthand: group sizes."""
        first_key = self._keys[0]
        return self.aggregate({out: (first_key, "count")})

    def __repr__(self) -> str:
        return f"GroupBy(keys={self._keys}, n_groups={self.n_groups})"
