"""The bulk-transfer metric model behind each simulated NDT test.

Each test draws its three NDT metrics from calibrated distributions, then
adjusts them for the conditions of the specific route the test took:

* ``MinRTT`` — lognormal draw around the calibrated mean, plus the actual
  path's extra propagation (alternate routes are longer) and per-link
  degradation penalties;
* ``LossRate`` — beta draw around the calibrated mean, plus loss
  contributed by degraded links on the path;
* ``MeanTput`` — lognormal draw, damped by path loss (weak coupling: NDT7
  uses BBR, which is loss-tolerant, so the calibrated baseline dominates)
  and by outage-day multipliers.

The model deliberately does not impose a Mathis-style loss/throughput law:
NDT's reported loss counts retransmitted segments over a BBR connection,
and the paper's own tables (e.g. Kyiv: 64 Mbps at 1.37% loss) are far off
any Reno-model curve.  Calibration to the published moments, with path
conditions layered on top, preserves the relationships the analyses
measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.distributions import (
    lognormal_params_from_moments,
    sample_beta_loss,
)
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["BulkTransferModel", "MetricParams", "PathConditions"]

#: NDT reports loss as a fraction; clamp to the unit interval.
_MIN_RTT_FLOOR_MS = 0.1
#: Spread (alpha+beta) of the per-test beta loss draw.
_LOSS_CONCENTRATION = 3.0
#: How strongly path loss suppresses throughput (BBR: weakly).
_LOSS_TPUT_DAMPING = 4.0


@dataclass(frozen=True)
class MetricParams:
    """Calibrated metric moments for one (context, day) combination."""

    tput_mean_mbps: float
    tput_std_mbps: float
    rtt_mean_ms: float
    rtt_std_ms: float
    loss_mean: float

    def __post_init__(self) -> None:
        check_positive("tput_mean_mbps", self.tput_mean_mbps)
        check_positive("tput_std_mbps", self.tput_std_mbps)
        check_positive("rtt_mean_ms", self.rtt_mean_ms)
        check_positive("rtt_std_ms", self.rtt_std_ms)
        if not 0.0 <= self.loss_mean < 1.0:
            raise ValueError(f"loss_mean must be in [0, 1), got {self.loss_mean}")


@dataclass(frozen=True)
class PathConditions:
    """What the selected route contributes to this test's metrics."""

    extra_rtt_ms: float = 0.0  # detour length + degraded-link latency
    extra_loss: float = 0.0  # loss added by degraded links
    tput_factor: float = 1.0  # outage-day / capacity multiplier

    def __post_init__(self) -> None:
        check_nonnegative("extra_rtt_ms", self.extra_rtt_ms)
        if not 0.0 <= self.extra_loss <= 1.0:
            raise ValueError(f"extra_loss must be in [0, 1], got {self.extra_loss}")
        if not 0.0 < self.tput_factor <= 1.0:
            raise ValueError(
                f"tput_factor must be in (0, 1], got {self.tput_factor}"
            )


class BulkTransferModel:
    """Draws (tput, min RTT, loss) for one NDT download test."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def measure(
        self, params: MetricParams, conditions: PathConditions = PathConditions()
    ) -> tuple:
        """One test's ``(tput_mbps, min_rtt_ms, loss_rate)``."""
        rtt_mu, rtt_sigma = lognormal_params_from_moments(
            params.rtt_mean_ms, params.rtt_std_ms
        )
        min_rtt = self._rng.lognormal(rtt_mu, rtt_sigma) + conditions.extra_rtt_ms
        min_rtt = max(_MIN_RTT_FLOOR_MS, min_rtt)

        base_loss = sample_beta_loss(
            self._rng, params.loss_mean, _LOSS_CONCENTRATION, 1
        )[0] if params.loss_mean > 0 else 0.0
        loss = float(np.clip(base_loss + conditions.extra_loss, 0.0, 1.0))

        tput_mu, tput_sigma = lognormal_params_from_moments(
            params.tput_mean_mbps, params.tput_std_mbps
        )
        tput = self._rng.lognormal(tput_mu, tput_sigma)
        tput *= conditions.tput_factor
        tput /= 1.0 + _LOSS_TPUT_DAMPING * conditions.extra_loss
        tput = max(0.01, tput)
        return float(tput), float(min_rtt), loss
