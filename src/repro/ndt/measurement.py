"""The NDT result row: the simulation's ``ndt.unified_download`` analogue."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.tables.schema import Cols, DType, Field, Schema
from repro.util.timeutil import Day

__all__ = ["LIVE_STREAM_COLUMNS", "NDT_SCHEMA", "NdtMeasurement"]

#: Column layout of the NDT download table the analyses consume.  ``city``/
#: ``oblast`` carry the geo-DB labels (None for the paper's 11.7% unlabeled
#: tests); ``city_true`` is the simulation's ground truth, used only by
#: validation tests, never by the reproduced analyses.
NDT_SCHEMA = Schema(
    [
        Field(Cols.TEST_ID, DType.INT),
        Field(Cols.DAY, DType.INT),
        Field(Cols.DATE, DType.STR),
        Field(Cols.YEAR, DType.INT),
        Field(Cols.CITY, DType.STR),
        Field(Cols.OBLAST, DType.STR),
        Field(Cols.CITY_TRUE, DType.STR),
        Field(Cols.ASN, DType.INT),
        Field(Cols.CLIENT_IP, DType.STR),
        Field(Cols.SITE, DType.STR),
        Field(Cols.SERVER_IP, DType.STR),
        Field(Cols.PROTOCOL, DType.STR),
        Field(Cols.CCA, DType.STR),
        Field(Cols.TPUT, DType.FLOAT),
        Field(Cols.MIN_RTT, DType.FLOAT),
        Field(Cols.LOSS_RATE, DType.FLOAT),
    ]
)


#: The columns the live replay stream (``repro.obs.live.source``) needs
#: from an NDT table: the day bucket, the scope labels, and the three
#: health metrics.  A table missing any of these cannot be streamed.
LIVE_STREAM_COLUMNS = (
    Cols.DAY,
    Cols.OBLAST,
    Cols.CITY,
    Cols.ASN,
    Cols.SITE,
    Cols.TPUT,
    Cols.MIN_RTT,
    Cols.LOSS_RATE,
)


@dataclass(frozen=True)
class NdtMeasurement:
    """One NDT download test result with its client context."""

    test_id: int
    day: Day
    city: Optional[str]  # geo-DB label (may be None)
    oblast: Optional[str]  # geo-DB label (may be None)
    city_true: str
    asn: int
    client_ip: str
    site: str
    server_ip: str
    protocol: str  # "ndt5" | "ndt7"
    cca: str  # "reno" | "cubic" | "bbr"
    tput_mbps: float
    min_rtt_ms: float
    loss_rate: float

    def __post_init__(self) -> None:
        if self.tput_mbps <= 0:
            raise ValueError(f"tput_mbps must be positive, got {self.tput_mbps}")
        if self.min_rtt_ms <= 0:
            raise ValueError(f"min_rtt_ms must be positive, got {self.min_rtt_ms}")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {self.loss_rate}")
        if (self.city is None) != (self.oblast is None):
            raise ValueError("city and oblast labels must be both set or both None")
        if self.protocol not in ("ndt5", "ndt7"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.cca not in ("reno", "cubic", "bbr"):
            raise ValueError(f"unknown cca {self.cca!r}")

    def to_row(self) -> Dict[str, object]:
        """Flatten into a row matching :data:`NDT_SCHEMA`."""
        return {
            "test_id": self.test_id,
            "day": self.day.ordinal,
            "date": self.day.iso(),
            "year": self.day.date().year,
            "city": self.city,
            "oblast": self.oblast,
            "city_true": self.city_true,
            "asn": self.asn,
            "client_ip": self.client_ip,
            "site": self.site,
            "server_ip": self.server_ip,
            "protocol": self.protocol,
            "cca": self.cca,
            "tput_mbps": self.tput_mbps,
            "min_rtt_ms": self.min_rtt_ms,
            "loss_rate": self.loss_rate,
        }
