"""Heavy-tailed client populations behind each (AS, city) pair.

NDT test volume per client address is strongly skewed: most addresses test
once or twice, while a few (CGNAT gateways, habitual testers, integrations)
account for many tests.  That skew is what gives the paper's Table 2 its
top-1000 connections with large test counts.  Each (AS, city) pool draws
clients by Zipf-weighted rank over its block's addresses.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.netbase.ipaddr import IPv4Address
from repro.topology.iplayer import IpLayer
from repro.util.errors import TopologyError
from repro.util.validation import check_positive

__all__ = ["ClientPool"]


class ClientPool:
    """Zipf-popularity client sampling over allocated client blocks."""

    def __init__(self, iplayer: IpLayer, pool_size: int = 300, zipf_a: float = 1.2):
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        check_positive("zipf_a", zipf_a)
        self._iplayer = iplayer
        self._pool_size = pool_size
        self._zipf_a = zipf_a
        self._cache: Dict[Tuple[int, str], Tuple[List[IPv4Address], np.ndarray]] = {}

    def _pool(self, asn: int, city: str) -> Tuple[List[IPv4Address], np.ndarray]:
        key = (asn, city)
        if key not in self._cache:
            blocks = self._iplayer.blocks_for(asn, city)
            if not blocks:
                raise TopologyError(f"AS{asn} has no client blocks in {city!r}")
            # Interleave ranks across blocks (round-robin) so per-block
            # geo-DB label errors hit an even slice of every popularity
            # level, not the busiest clients all at once.
            addresses: List[IPv4Address] = []
            offsets = [0] * len(blocks)
            while len(addresses) < self._pool_size:
                progressed = False
                for b, block in enumerate(blocks):
                    if len(addresses) >= self._pool_size:
                        break
                    if offsets[b] < block.n_addresses - 2:
                        addresses.append(block.address_at(offsets[b] + 1))
                        offsets[b] += 1
                        progressed = True
                if not progressed:
                    break  # every block exhausted
            ranks = np.arange(1, len(addresses) + 1, dtype=np.float64)
            weights = ranks**-self._zipf_a
            self._cache[key] = (addresses, weights / weights.sum())
        return self._cache[key]

    def sample(self, asn: int, city: str, rng: np.random.Generator) -> IPv4Address:
        """Draw a client address for a test from this (AS, city) population."""
        addresses, probs = self._pool(asn, city)
        return addresses[int(rng.choice(len(addresses), p=probs))]

    def pool_size(self, asn: int, city: str) -> int:
        return len(self._pool(asn, city)[0])

    def top_client(self, asn: int, city: str) -> IPv4Address:
        """The most popular client (rank 1) of a pool."""
        return self._pool(asn, city)[0][0]
