"""The NDT measurement model: clients, bulk-transfer metrics, row schema.

NDT measures a single TCP connection's bulk transport capacity and reports
mean throughput, minimum RTT and loss rate from TCP_INFO.  The simulation
reproduces those three metrics per test from (a) calibrated baseline
distributions per city/AS, (b) war-driven degradation, and (c) the specific
route the test's packets took.
"""

from repro.ndt.clientpool import ClientPool
from repro.ndt.measurement import NDT_SCHEMA, NdtMeasurement
from repro.ndt.tcpmodel import BulkTransferModel, MetricParams, PathConditions

__all__ = [
    "BulkTransferModel",
    "ClientPool",
    "MetricParams",
    "NDT_SCHEMA",
    "NdtMeasurement",
    "PathConditions",
]
