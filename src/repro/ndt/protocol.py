"""NDT protocol versions and congestion control (paper §3's validity note).

NDT5 measured with TCP Reno or Cubic; NDT7 uses BBR when available, and
~90% of NDT volume arrives through the Google-search integration (NDT7).
The paper leans on the congestion-control algorithm mix being *stable*
across 2021-2022 so that prewar/wartime differences are not protocol
artifacts.  The simulation annotates every test with (protocol, CCA) from
a slowly-shifting mix so that `analysis.protocol` can verify the same
stability property on generated data.

Metric values are not conditioned on the CCA here: the calibration targets
already come from the mixed-protocol population the paper measured.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.util.validation import check_fraction

__all__ = ["Cca", "NdtVersion", "ProtocolModel"]


class NdtVersion(enum.Enum):
    NDT5 = "ndt5"
    NDT7 = "ndt7"


class Cca(enum.Enum):
    RENO = "reno"
    CUBIC = "cubic"
    BBR = "bbr"


@dataclass(frozen=True)
class ProtocolModel:
    """Samples each test's (version, CCA).

    ``ndt7_share_2021`` / ``ndt7_share_2022`` bound a linear drift across
    the two years — slow platform migration, not a step change, matching
    "the congestion control algorithm was stable in the period ... studied".
    """

    ndt7_share_2021: float = 0.86
    ndt7_share_2022: float = 0.90
    cubic_share_of_ndt5: float = 0.9  # the rest of NDT5 ran Reno

    def __post_init__(self) -> None:
        check_fraction("ndt7_share_2021", self.ndt7_share_2021)
        check_fraction("ndt7_share_2022", self.ndt7_share_2022)
        check_fraction("cubic_share_of_ndt5", self.cubic_share_of_ndt5)

    def ndt7_share(self, year: int) -> float:
        """The NDT7 share in effect for a year."""
        if year <= 2021:
            return self.ndt7_share_2021
        return self.ndt7_share_2022

    def sample(self, year: int, rng: np.random.Generator) -> Tuple[NdtVersion, Cca]:
        """One test's protocol annotation."""
        if rng.random() < self.ndt7_share(year):
            return NdtVersion.NDT7, Cca.BBR
        if rng.random() < self.cubic_share_of_ndt5:
            return NdtVersion.NDT5, Cca.CUBIC
        return NdtVersion.NDT5, Cca.RENO
