"""Orchestration: files → summaries (cached) → project → findings + report.

This is the whole-program pass behind ``repro lint --flow``.  It reuses
the per-file machinery of the lint engine (file discovery, repo-relative
paths, inline suppressions) so flow diagnostics behave exactly like rule
diagnostics: same fingerprints, same baseline, same ``disable=`` comments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.lint.diagnostics import Diagnostic
from repro.lint.flow.cache import FlowCache, content_hash
from repro.lint.flow.callgraph import Project
from repro.lint.flow.contracts import check_contracts
from repro.lint.flow.effects import (
    DEFAULT_KERNEL_PACKAGES,
    EffectAnalysis,
    check_kernel_purity,
    check_network_seam,
    infer_effects,
)
from repro.lint.flow.report import (
    build_effects_report,
    render_effects_explain,
)
from repro.lint.flow.summarize import ModuleSummary, summarize_source
from repro.lint.suppressions import parse_suppressions

__all__ = ["FlowResult", "analyze_paths"]


@dataclass
class FlowResult:
    """Everything one whole-program analysis produced."""

    project: Project
    analysis: EffectAnalysis
    diagnostics: List[Diagnostic] = field(default_factory=list)
    report: Dict[str, Any] = field(default_factory=dict)
    files_analyzed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def explain(self, needle: str) -> str:
        return render_effects_explain(self.analysis, needle)


def analyze_paths(
    paths: Sequence,
    root: Optional[Path] = None,
    cache_path: Optional[Path] = None,
    kernel_packages: Iterable[str] = DEFAULT_KERNEL_PACKAGES,
) -> FlowResult:
    """Run the whole-program flow analysis over files/directories.

    ``cache_path`` (optional) enables the content-hash summary cache; pass
    the same path across runs to make warm runs skip re-parsing.
    """
    # Imported here, not at module top: the engine imports this package
    # lazily from inside lint_paths, so by now it is fully initialized.
    from repro.lint.engine import _relpath, iter_python_files

    files = iter_python_files(paths)
    cache = FlowCache(cache_path)
    summaries: List[ModuleSummary] = []
    suppressions = {}
    for path in files:
        relpath = _relpath(path, root)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError:
            continue  # the per-file pass already reported unreadable files
        digest = content_hash(source)
        summary = cache.get(relpath, digest)
        if summary is None:
            try:
                summary = summarize_source(source, relpath, digest)
            except SyntaxError:
                continue  # ditto for parse errors
            cache.put(summary)
        summaries.append(summary)
        suppressions[relpath] = parse_suppressions(source)
    cache.save()

    project = Project(summaries)
    analysis = infer_effects(project)
    raw_findings = check_contracts(project)
    raw_findings += check_kernel_purity(analysis, kernel_packages)
    raw_findings += check_network_seam(analysis)
    diagnostics = [
        d for d in raw_findings
        if not (
            d.path in suppressions
            and suppressions[d.path].is_suppressed(d.rule, d.line)
        )
    ]
    diagnostics.sort(key=Diagnostic.sort_key)
    report = build_effects_report(analysis, contract_findings=len(diagnostics))
    return FlowResult(
        project=project,
        analysis=analysis,
        diagnostics=diagnostics,
        report=report,
        files_analyzed=len(summaries),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
    )
