"""The effect lattice: direct effects, transitive propagation, purity gate.

The lattice is the powerset of :data:`EFFECTS` ordered by inclusion —
bottom is the empty set (pure), join is set union.  Inference is a
monotone fixpoint over the call graph:

    effects(f) = direct(f) ∪ ⋃ { effects(g) : f calls g, g not a seam }

Monotonicity (adding a call edge can only grow an effect set) is what the
hypothesis property test in ``tests/lint/flow`` pins down; it is also why
the fixpoint terminates — each iteration only adds elements of a finite
set.

Sanctioned seams are modules whose *job* is the effect: ``util/rng.py``
(seeded randomness), ``repro/obs/`` (the clock shim and metrics),
``repro/storage/`` (atomic artifact writes).  A call into a seam does not
propagate the seam's raw effects to the caller; it records the seam's
name in the caller's ``sanctioned`` set instead, so ``effects.json``
still shows which seams a function ultimately leans on.  The kernel
purity gate (:func:`check_kernel_purity`) then has a precise statement:
functions reachable from ``tables/kernels.py`` / ``stats/`` must have an
*empty raw effect set* — seams are fine, bare effects are findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.flow.callgraph import Project
from repro.lint.flow.summarize import DirectEffect

__all__ = [
    "EFFECTS",
    "SEAMS",
    "EffectAnalysis",
    "check_kernel_purity",
    "check_network_seam",
    "infer_effects",
]

#: The effect alphabet, in canonical report order.
EFFECTS: Tuple[str, ...] = (
    "rng",
    "reads-clock",
    "filesystem-write",
    "global-mutation",
    "network",
)

#: Sanctioned seam name → path fragments owning that seam.
#: ``obs.profile`` must precede ``obs``: :func:`seam_of` matches in
#: insertion order and ``repro/obs/`` would otherwise shadow the
#: profiler's more specific fragment.  The profiler is its own seam so
#: ``effects.json`` distinguishes "leans on the clock shim" from "leans
#: on the sampler/tracemalloc machinery" — both recorded, not propagated.
SEAMS: Dict[str, Tuple[str, ...]] = {
    "util.rng": ("repro/util/rng.py",),
    "obs.profile": ("repro/obs/profile/",),
    "obs.live": ("repro/obs/live/",),
    "obs": ("repro/obs/",),
    "storage": ("repro/storage/",),
}

#: The only seam sanctioned to touch sockets/HTTP (the health service).
NETWORK_SEAM = "obs.live"

#: Path fragments whose functions the purity gate covers (roots).
DEFAULT_KERNEL_PACKAGES: Tuple[str, ...] = (
    "repro/tables/kernels.py",
    "repro/stats/",
    # The lazy layer executes kernels: expression evaluation, the plan
    # nodes/optimizer and the executor must stay effect-free (obs is a
    # sanctioned seam) or optimized plans could diverge from eager runs.
    "repro/tables/expr.py",
    "repro/tables/plan/nodes.py",
    "repro/tables/plan/optimizer.py",
    "repro/tables/plan/executor.py",
)


def seam_of(relpath: str) -> Optional[str]:
    """The seam a file belongs to, if any."""
    for seam, fragments in SEAMS.items():
        if any(fragment in relpath for fragment in fragments):
            return seam
    return None


@dataclass
class EffectAnalysis:
    """Fixpoint result: per-function raw effects and seams leaned on."""

    #: qualname → frozen raw effect set (transitive, seams excluded)
    effects: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: qualname → frozen seam-name set (transitive)
    sanctioned: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    project: Optional[Project] = None

    def effects_of(self, qualname: str) -> FrozenSet[str]:
        return self.effects.get(qualname, frozenset())

    def sanctioned_of(self, qualname: str) -> FrozenSet[str]:
        return self.sanctioned.get(qualname, frozenset())

    def is_parallel_safe(self, qualname: str) -> bool:
        """No raw effects at all — the scheduler's fan-out certificate."""
        return not self.effects.get(qualname)

    def witness_path(
        self, root: str, effect: str
    ) -> Optional[List[Tuple[str, Optional[DirectEffect]]]]:
        """Shortest call chain from ``root`` to a direct source of ``effect``.

        Returns ``[(qualname, None), ..., (qualname, DirectEffect)]`` or
        ``None`` when the root does not carry the effect.  Deterministic:
        BFS over sorted callee lists.
        """
        if self.project is None or effect not in self.effects_of(root):
            return None
        parents: Dict[str, Optional[str]] = {root: None}
        queue = [root]
        while queue:
            current = queue.pop(0)
            info = self.project.functions.get(current)
            if info is not None:
                for direct in info.direct_effects:
                    if direct.effect == effect:
                        chain: List[Tuple[str, Optional[DirectEffect]]] = []
                        node: Optional[str] = current
                        while node is not None:
                            chain.append((node, None))
                            node = parents[node]
                        chain.reverse()
                        chain[-1] = (current, direct)
                        return chain
            for callee in self.project.callees_of(current):
                callee_info = self.project.functions.get(callee)
                if callee_info is not None and seam_of(callee_info.relpath):
                    continue
                if callee not in parents and effect in self.effects_of(callee):
                    parents[callee] = current
                    queue.append(callee)
        return None


def infer_effects(project: Project) -> EffectAnalysis:
    """Run the monotone fixpoint over the whole project call graph."""
    direct: Dict[str, FrozenSet[str]] = {}
    is_seam: Dict[str, Optional[str]] = {}
    for qual, info in project.functions.items():
        direct[qual] = frozenset(e.effect for e in info.direct_effects)
        is_seam[qual] = seam_of(info.relpath)

    effects: Dict[str, FrozenSet[str]] = dict(direct)
    sanctioned: Dict[str, FrozenSet[str]] = {q: frozenset() for q in direct}

    # Round-robin to fixpoint.  The lattice height is |EFFECTS| + |SEAMS|
    # per function, so this terminates quickly; deterministic because the
    # iteration order is sorted and join is commutative anyway.
    order = sorted(project.functions)
    changed = True
    while changed:
        changed = False
        for qual in order:
            raw = set(effects[qual])
            seams = set(sanctioned[qual])
            for callee in project.callees_of(qual):
                callee_seam = is_seam.get(callee)
                if callee_seam is not None:
                    seams.add(callee_seam)
                    continue
                raw |= effects.get(callee, frozenset())
                seams |= sanctioned.get(callee, frozenset())
            if raw != set(effects[qual]) or seams != set(sanctioned[qual]):
                effects[qual] = frozenset(raw)
                sanctioned[qual] = frozenset(seams)
                changed = True
    return EffectAnalysis(effects=effects, sanctioned=sanctioned, project=project)


def _format_witness(
    analysis: EffectAnalysis, root: str, effect: str
) -> str:
    chain = analysis.witness_path(root, effect)
    if not chain:
        return effect
    # Show bare function names; the diagnostic's path/line carry the rest.
    shown = " -> ".join(qual.split(".")[-1] for qual, _ in chain)
    terminal = chain[-1][1]
    if terminal is not None:
        info = analysis.project.functions.get(chain[-1][0]) if analysis.project \
            else None
        where = f"{info.relpath}:{terminal.line}" if info else f"l{terminal.line}"
        return f"{effect} via {shown} ({terminal.detail} at {where})"
    return f"{effect} via {shown}"


def check_kernel_purity(
    analysis: EffectAnalysis,
    kernel_packages: Iterable[str] = DEFAULT_KERNEL_PACKAGES,
) -> List[Diagnostic]:
    """``impure-kernel``: effectful functions reachable from kernels/stats.

    One diagnostic per kernel-package *root* function that carries raw
    effects, anchored at the root's ``def`` line and carrying a witness
    call chain to the nearest direct effect — this is the certificate the
    deterministic parallel scheduler will gate fan-out on.
    """
    assert analysis.project is not None
    findings: List[Diagnostic] = []
    fragments = tuple(kernel_packages)
    for qual in sorted(analysis.project.functions):
        info = analysis.project.functions[qual]
        if not any(fragment in info.relpath for fragment in fragments):
            continue
        raw = analysis.effects_of(qual)
        if not raw:
            continue
        witnesses = "; ".join(
            _format_witness(analysis, qual, effect) for effect in EFFECTS
            if effect in raw
        )
        findings.append(
            Diagnostic(
                rule="impure-kernel",
                severity=Severity.ERROR,
                path=info.relpath,
                line=info.line,
                col=0,
                message=(
                    f"kernel/stats function {info.name!r} is not effect-free: "
                    f"{witnesses}; route the effect through a sanctioned seam "
                    f"(util/rng.py, obs clock, storage) or hoist it out of "
                    f"the kernel"
                ),
            )
        )
    return findings


def check_network_seam(analysis: EffectAnalysis) -> List[Diagnostic]:
    """``unsanctioned-network``: socket/HTTP use outside ``repro/obs/live/``.

    The health service (:data:`NETWORK_SEAM`) is the repo's one sanctioned
    network seam; everything else in ``src/`` is an offline pipeline over
    a synthetic dataset, so a *direct* network effect anywhere else is a
    finding.  Direct effects only — a caller that reaches the network
    through the seam records ``obs.live`` in its sanctioned set instead,
    and flagging every transitive caller of one offender would bury the
    actual call site.  Anchored at the offending call, not the ``def``.
    """
    assert analysis.project is not None
    findings: List[Diagnostic] = []
    for qual in sorted(analysis.project.functions):
        info = analysis.project.functions[qual]
        if seam_of(info.relpath) == NETWORK_SEAM:
            continue
        for direct in info.direct_effects:
            if direct.effect != "network":
                continue
            findings.append(
                Diagnostic(
                    rule="unsanctioned-network",
                    severity=Severity.ERROR,
                    path=info.relpath,
                    line=direct.line,
                    col=0,
                    message=(
                        f"function {info.name!r} touches the network "
                        f"({direct.detail}) outside the sanctioned seam "
                        f"repro/obs/live/; move the I/O behind the health "
                        f"service or drop it"
                    ),
                )
            )
    return findings
