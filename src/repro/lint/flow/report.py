"""The machine-readable ``effects.json`` report and the explain view.

``effects.json`` is to the flow pass what ``provenance.json`` is to
lineage: a schema-validated artifact (``docs/effects.schema.json``)
downstream tooling can gate on.  The planned deterministic parallel
scheduler reads ``parallel_safe`` to decide what may fan out; ``repro
lint effects <function>`` renders the same data for humans, with witness
call chains explaining where each effect comes from.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

from repro import storage
from repro.lint.flow.effects import EFFECTS, EffectAnalysis, seam_of
from repro.util.errors import LintError

__all__ = [
    "EFFECTS_SCHEMA_VERSION",
    "build_effects_report",
    "default_schema_path",
    "render_effects_explain",
    "validate_effects_report",
    "write_effects_report",
]

EFFECTS_SCHEMA_VERSION = 1


def default_schema_path() -> Path:
    """docs/effects.schema.json, resolved relative to the repo layout."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "docs" / "effects.schema.json"
        if candidate.exists():
            return candidate
    raise LintError("docs/effects.schema.json not found above " + str(here))


def build_effects_report(
    analysis: EffectAnalysis, contract_findings: int = 0
) -> Dict[str, Any]:
    """Assemble the JSON-ready effects report (deterministic key order)."""
    assert analysis.project is not None
    project = analysis.project
    functions: List[Dict[str, Any]] = []
    n_pure = 0
    n_parallel_safe = 0
    for qual in sorted(project.functions):
        info = project.functions[qual]
        raw = sorted(
            analysis.effects_of(qual), key=EFFECTS.index
        )
        seams = sorted(analysis.sanctioned_of(qual))
        parallel_safe = not raw
        if not raw and not seams:
            n_pure += 1
        if parallel_safe:
            n_parallel_safe += 1
        functions.append(
            {
                "qualname": qual,
                "path": info.relpath,
                "line": info.line,
                "effects": raw,
                "sanctioned": seams,
                "parallel_safe": parallel_safe,
                "seam": seam_of(info.relpath),
                "n_callees": len(project.callees_of(qual)),
                "n_callers": len(project.callers_of(qual)),
            }
        )
    return {
        "schema_version": EFFECTS_SCHEMA_VERSION,
        "effect_alphabet": list(EFFECTS),
        "summary": {
            "functions": len(functions),
            "pure": n_pure,
            "parallel_safe": n_parallel_safe,
            "with_effects": len(functions) - n_parallel_safe,
            "stage_sites": len(project.stage_sites()),
            "contract_findings": contract_findings,
        },
        "functions": functions,
    }


def validate_effects_report(data: Dict[str, Any]) -> List[str]:
    """Schema-validate a report dict; returns human-readable violations."""
    from repro.obs.report import validate_against_schema

    schema = json.loads(default_schema_path().read_text(encoding="utf-8"))
    return validate_against_schema(data, schema)


def write_effects_report(data: Dict[str, Any], path) -> str:
    """Validate then atomically commit ``effects.json``; returns the path."""
    errors = validate_effects_report(data)
    if errors:
        raise LintError(
            "effects report violates docs/effects.schema.json: "
            + "; ".join(errors[:5])
        )
    rendered = json.dumps(data, indent=2, sort_keys=True) + "\n"
    storage.commit_text(str(path), rendered, label="lint.effects")
    return str(path)


def render_effects_explain(analysis: EffectAnalysis, needle: str) -> str:
    """Human-readable effect explanation for ``repro lint effects <fn>``."""
    assert analysis.project is not None
    project = analysis.project
    matches = project.find_function(needle)
    if not matches:
        return f"no function matching {needle!r} in the analyzed tree"
    lines: List[str] = []
    if len(matches) > 1:
        lines.append(
            f"{needle!r} is ambiguous ({len(matches)} matches); "
            f"showing all:"
        )
    for info in matches:
        qual = info.qualname
        raw = sorted(analysis.effects_of(qual), key=EFFECTS.index)
        seams = sorted(analysis.sanctioned_of(qual))
        lines.append(f"{qual}  ({info.relpath}:{info.line})")
        lines.append(
            "  effects:    " + (", ".join(raw) if raw else "(pure)")
        )
        lines.append(
            "  sanctioned: " + (", ".join(seams) if seams else "(none)")
        )
        lines.append(
            f"  parallel-safe: "
            f"{'yes' if analysis.is_parallel_safe(qual) else 'NO'}"
        )
        for effect in raw:
            chain = analysis.witness_path(qual, effect)
            if chain:
                shown = " -> ".join(q.split(".")[-1] for q, _ in chain)
                terminal = chain[-1][1]
                detail = f" [{terminal.detail}]" if terminal else ""
                lines.append(f"    {effect}: {shown}{detail}")
        callees = project.callees_of(qual)
        callers = project.callers_of(qual)
        lines.append(
            f"  calls {len(callees)} project function(s); "
            f"called by {len(callers)}"
        )
    return "\n".join(lines)
