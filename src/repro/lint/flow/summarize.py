"""Per-file distillation: one AST pass producing a cacheable ModuleSummary.

Everything the whole-program passes need from a file is extracted here in a
single walk and serialized as plain JSON types, so the analyzer can cache
summaries by content hash and skip re-parsing unchanged files on warm runs.

What gets recorded per function (including nested functions and methods):

* the calls it makes, each resolved as far as one file allows — to a
  sibling/enclosing definition (``project`` ref), through the module's
  import table to an absolute dotted path (``absolute`` ref), or left
  ``dynamic`` when the callee is a runtime value;
* its *direct* effects (clock reads, rng, filesystem writes, mutation of
  module-level or closed-over state, network), found by pattern-matching
  call sites and assignment targets against the effect tables below;
* the string keys it reads out of each parameter via ``param["key"]`` /
  ``param.get("key", ...)`` — the raw material of the stage-contract check.

Module-level facts: the import alias table (needed again at link time to
follow re-export chains) and every ``Stage(...)`` construction site with
its literal name, resolved ``fn`` and declared ``inputs``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

__all__ = [
    "CallRef",
    "DirectEffect",
    "FunctionInfo",
    "ModuleSummary",
    "StageSite",
    "module_name_for",
    "summarize_source",
]

SUMMARY_VERSION = 1

#: ``time`` attributes that read a clock (mirrors the no-bare-timing rule).
_CLOCK_READS = frozenset(
    {
        "time", "perf_counter", "monotonic", "process_time",
        "time_ns", "perf_counter_ns", "monotonic_ns", "process_time_ns",
    }
)

#: Absolute dotted call prefixes → direct effect.
_EFFECT_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("random.", "rng"),
    ("socket.", "network"),
    ("urllib.", "network"),
    ("http.", "network"),
    ("requests.", "network"),
    ("ftplib.", "network"),
    ("smtplib.", "network"),
)

#: np.random attributes that construct explicitly *seeded* generators — the
#: one sanctioned shape outside util/rng.py (mirrors the unseeded-random rule).
_SEEDED_CONSTRUCTORS = frozenset({"Generator", "PCG64", "SeedSequence"})

#: os/shutil calls that mutate the filesystem.
_FS_WRITE_CALLS = frozenset(
    {
        "os.remove", "os.unlink", "os.rename", "os.replace", "os.rmdir",
        "os.makedirs", "os.mkdir", "os.truncate", "os.symlink", "os.link",
        "os.chmod", "os.dup2", "shutil.rmtree", "shutil.copy",
        "shutil.copyfile", "shutil.copytree", "shutil.move",
    }
)

#: Clock-reading datetime constructors.
_CLOCK_CALLS = frozenset(
    {"datetime.datetime.now", "datetime.datetime.utcnow", "datetime.date.today"}
)

#: pathlib spellings of an unprotected write (mirrors unsafe-artifact-write).
_WRITE_METHODS = frozenset({"write_text", "write_bytes"})

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "clear", "pop", "popitem",
        "add", "discard", "update", "setdefault", "sort", "reverse",
    }
)

#: Mode characters that make an ``open`` call a write.
_WRITE_MODE_CHARS = frozenset("wax+")

#: The class whose construction sites carry stage contracts.
_STAGE_CLASS = "repro.runtime.pipeline.Stage"


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative posix path.

    ``src/repro/tables/kernels.py`` → ``repro.tables.kernels``;
    ``repro/obs/__init__.py`` → ``repro.obs``.
    """
    parts = relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


@dataclass(frozen=True)
class CallRef:
    """One call site, resolved as far as a single file allows."""

    raw: str  # the dotted name as written ("obs.span", "factorize")
    target: str  # resolved qualname / absolute dotted path ("" when dynamic)
    kind: str  # "project" | "absolute" | "dynamic"
    line: int

    def to_json(self) -> Dict[str, Any]:
        return {"raw": self.raw, "target": self.target,
                "kind": self.kind, "line": self.line}

    @classmethod
    def from_json(cls, d: Dict[str, Any]) -> "CallRef":
        return cls(d["raw"], d["target"], d["kind"], d["line"])


@dataclass(frozen=True)
class DirectEffect:
    """One effect a function performs with its own hands."""

    effect: str  # one of effects.EFFECTS
    line: int
    detail: str  # what matched, e.g. "call to time.perf_counter"

    def to_json(self) -> Dict[str, Any]:
        return {"effect": self.effect, "line": self.line, "detail": self.detail}

    @classmethod
    def from_json(cls, d: Dict[str, Any]) -> "DirectEffect":
        return cls(d["effect"], d["line"], d["detail"])


@dataclass
class FunctionInfo:
    """Everything the whole-program passes need to know about one function."""

    qualname: str  # "repro.runtime.run._build_stages.ingest"
    module: str
    relpath: str
    line: int
    name: str
    params: Tuple[str, ...] = ()
    calls: Tuple[CallRef, ...] = ()
    direct_effects: Tuple[DirectEffect, ...] = ()
    #: param/local name → sorted string keys *hard*-read via ``name[key]``
    #: (raises if absent, so the key must exist on every execution path)
    subscript_reads: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: param/local name → sorted string keys *soft*-read via ``.get(key, ...)``
    #: (tolerates absence — weaker contract obligation than a hard read)
    get_reads: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: names subscripted with a non-literal key (reads unknowable statically)
    dynamic_reads: Tuple[str, ...] = ()
    is_method: bool = False

    def to_json(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "module": self.module,
            "relpath": self.relpath,
            "line": self.line,
            "name": self.name,
            "params": list(self.params),
            "calls": [c.to_json() for c in self.calls],
            "direct_effects": [e.to_json() for e in self.direct_effects],
            "subscript_reads": {k: list(v) for k, v in self.subscript_reads.items()},
            "get_reads": {k: list(v) for k, v in self.get_reads.items()},
            "dynamic_reads": list(self.dynamic_reads),
            "is_method": self.is_method,
        }

    @classmethod
    def from_json(cls, d: Dict[str, Any]) -> "FunctionInfo":
        return cls(
            qualname=d["qualname"],
            module=d["module"],
            relpath=d["relpath"],
            line=d["line"],
            name=d["name"],
            params=tuple(d["params"]),
            calls=tuple(CallRef.from_json(c) for c in d["calls"]),
            direct_effects=tuple(
                DirectEffect.from_json(e) for e in d["direct_effects"]
            ),
            subscript_reads={
                k: tuple(v) for k, v in d["subscript_reads"].items()
            },
            get_reads={k: tuple(v) for k, v in d["get_reads"].items()},
            dynamic_reads=tuple(d["dynamic_reads"]),
            is_method=d["is_method"],
        )


@dataclass
class StageSite:
    """One ``Stage(...)`` construction found in source."""

    relpath: str
    line: int
    col: int
    name: Optional[str]  # literal stage name, None when dynamic
    fn_target: str  # resolved qualname of the fn argument ("" when dynamic)
    inputs: Tuple[str, ...]  # union of literal input names over all branches
    #: one tuple per conditional arm of the ``inputs=`` expression — a plain
    #: literal has one arm; ``(a,) if flag else (b,)`` has two.  A hard read
    #: must be declared in *every* arm or the lineage DAG drops the edge
    #: whenever the omitting arm is taken.
    input_arms: Tuple[Tuple[str, ...], ...] = ()
    inputs_dynamic: bool = False  # a non-literal input element was present
    has_inputs_kw: bool = False

    def to_json(self) -> Dict[str, Any]:
        return {
            "relpath": self.relpath,
            "line": self.line,
            "col": self.col,
            "name": self.name,
            "fn_target": self.fn_target,
            "inputs": list(self.inputs),
            "input_arms": [list(arm) for arm in self.input_arms],
            "inputs_dynamic": self.inputs_dynamic,
            "has_inputs_kw": self.has_inputs_kw,
        }

    @classmethod
    def from_json(cls, d: Dict[str, Any]) -> "StageSite":
        return cls(
            relpath=d["relpath"],
            line=d["line"],
            col=d["col"],
            name=d["name"],
            fn_target=d["fn_target"],
            inputs=tuple(d["inputs"]),
            input_arms=tuple(tuple(arm) for arm in d["input_arms"]),
            inputs_dynamic=d["inputs_dynamic"],
            has_inputs_kw=d["has_inputs_kw"],
        )


@dataclass
class ModuleSummary:
    """The distilled, JSON-round-trippable view of one source file."""

    relpath: str
    module: str
    source_hash: str
    imports: Dict[str, str] = field(default_factory=dict)  # alias → dotted
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    stage_sites: Tuple[StageSite, ...] = ()
    module_level_names: Tuple[str, ...] = ()

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": SUMMARY_VERSION,
            "relpath": self.relpath,
            "module": self.module,
            "source_hash": self.source_hash,
            "imports": dict(self.imports),
            "functions": {q: f.to_json() for q, f in self.functions.items()},
            "stage_sites": [s.to_json() for s in self.stage_sites],
            "module_level_names": list(self.module_level_names),
        }

    @classmethod
    def from_json(cls, d: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            relpath=d["relpath"],
            module=d["module"],
            source_hash=d["source_hash"],
            imports=dict(d["imports"]),
            functions={
                q: FunctionInfo.from_json(f) for q, f in d["functions"].items()
            },
            stage_sites=tuple(StageSite.from_json(s) for s in d["stage_sites"]),
            module_level_names=tuple(d["module_level_names"]),
        )


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _mode_literal(node: ast.Call) -> Optional[str]:
    mode_node: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode_node = kw.value
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None


def _stored_names(fn_node: ast.AST) -> Set[str]:
    """Every name the function body binds, nested scopes excluded.

    Python scoping makes a name local from the function's *first* line if it
    is stored *anywhere* in the body, so binding analysis must not depend on
    traversal order.
    """
    stored: Set[str] = set()

    def walk(node: ast.AST, top: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    stored.add(child.name)
                continue
            if isinstance(child, ast.ClassDef):
                stored.add(child.name)
                continue
            if isinstance(child, ast.Name) and isinstance(
                child.ctx, (ast.Store, ast.Del)
            ):
                stored.add(child.id)
            elif isinstance(child, (ast.Import, ast.ImportFrom)):
                for alias in child.names:
                    stored.add(
                        alias.asname or alias.name.split(".")[0]
                    )
            walk(child, False)

    walk(fn_node, True)
    return stored


def _collect_input_arms(expr: ast.expr) -> Tuple[List[Tuple[str, ...]], bool]:
    """Literal strings of an ``inputs=`` expression, one tuple per IfExp arm.

    A plain tuple/list yields a single arm; conditional expressions yield
    one arm per alternative (nested conditionals flatten).  Returns
    ``(arms, dynamic)`` where ``dynamic`` means a non-literal element or
    shape was present and the literal view is incomplete.
    """
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        literals: List[str] = []
        dynamic = False
        for elt in expr.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                literals.append(elt.value)
            else:
                dynamic = True
        return [tuple(sorted(set(literals)))], dynamic
    if isinstance(expr, ast.IfExp):
        arms: List[Tuple[str, ...]] = []
        dynamic = False
        for arm in (expr.body, expr.orelse):
            sub, dyn = _collect_input_arms(arm)
            arms.extend(sub)
            dynamic = dynamic or dyn
        return arms, dynamic
    if isinstance(expr, ast.Constant) and expr.value in ((), None):
        return [()], False
    return [], True


class _Scope:
    """One lexical scope: names it binds and definitions it contains."""

    def __init__(self, qualname: str, kind: str):
        self.qualname = qualname  # "" for the module scope
        self.kind = kind  # "module" | "function" | "class"
        self.defs: Dict[str, Tuple[str, str]] = {}  # name → (qualname, kind)
        self.bound: Set[str] = set()  # every name assigned in this scope


class _Summarizer(ast.NodeVisitor):
    """The single AST walk behind :func:`summarize_source`."""

    def __init__(self, relpath: str, module: str):
        self.relpath = relpath
        self.module = module
        self.imports: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.stage_sites: List[StageSite] = []
        self.scopes: List[_Scope] = [_Scope("", "module")]
        # Per-function accumulators, stacked for nested defs.
        self._fn_stack: List[Dict[str, Any]] = []

    # -- scope bookkeeping ---------------------------------------------------
    def _qual(self, name: str) -> str:
        path = [s.qualname.rsplit(".", 1)[-1] for s in self.scopes[1:]]
        prefix = [self.module] if self.module else []
        return ".".join(prefix + path + [name])

    def _current_fn(self) -> Optional[Dict[str, Any]]:
        return self._fn_stack[-1] if self._fn_stack else None

    def _is_local(self, name: str) -> bool:
        """Bound in the innermost function (or class-body) scope?"""
        for scope in reversed(self.scopes):
            if scope.kind in ("function", "class"):
                return name in scope.bound
        return name in self.scopes[0].bound

    def _names_shared_state(self, name: str) -> bool:
        """Is ``name`` module-level or closed-over (enclosing-scope) state?"""
        for scope in reversed(self.scopes[:-1]):
            if name in scope.bound or name in scope.defs:
                return scope.kind in ("module", "function")
        return False

    def _shared_kind(self, name: str) -> str:
        for scope in reversed(self.scopes[:-1]):
            if name in scope.bound or name in scope.defs:
                return "module-level" if scope.kind == "module" else "closed-over"
        return "module-level"

    def _is_module_import_alias(self, name: str) -> bool:
        """Does ``name`` resolve to a module-level import?

        ``np.append(...)`` calls a function *from* numpy; it does not mutate
        ``np``.  Without this, every module alias whose attribute happens to
        share a name with ``list.append``/``dict.update`` would read as
        global mutation.
        """
        for scope in reversed(self.scopes[:-1]):
            if name in scope.bound or name in scope.defs:
                return scope.kind == "module" and name in self.imports
        return False

    # -- resolution ----------------------------------------------------------
    def _resolve(self, dotted: str) -> Tuple[str, str]:
        """Resolve a dotted name to ('project'|'absolute'|'dynamic', target)."""
        head, _, rest = dotted.partition(".")
        if head == "self":
            for scope in reversed(self.scopes):
                if scope.kind == "class":
                    target = scope.qualname + ("." + rest if rest else "")
                    return "project", target
            return "dynamic", ""
        for scope in reversed(self.scopes):
            if head in scope.defs:
                qual, _kind = scope.defs[head]
                return "project", qual + ("." + rest if rest else "")
            if head in scope.bound:
                if scope.kind == "module" and head in self.imports:
                    break  # module-level import alias: resolve below
                return "dynamic", ""  # shadowed by a local runtime value
        if head in self.imports:
            target = self.imports[head] + ("." + rest if rest else "")
            return "absolute", target
        return "dynamic", ""

    # -- imports -------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.imports[local] = target
            self.scopes[-1].bound.add(local)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            # Relative import: ``from .x import y`` resolves against this
            # module's package.  An __init__.py *is* its package, so one
            # level of dots drops nothing there; elsewhere it drops the
            # module's own name.
            pkg = self.module.split(".")
            keep = len(pkg) - node.level
            if self.relpath.endswith("__init__.py"):
                keep += 1
            anchor = pkg[: max(keep, 0)]
            base = ".".join(anchor + ([node.module] if node.module else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.imports[local] = f"{base}.{alias.name}" if base else alias.name
            self.scopes[-1].bound.add(local)

    # -- definitions ---------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = self._qual(node.name)
        self.scopes[-1].defs[node.name] = (qual, "class")
        self.scopes[-1].bound.add(node.name)
        for deco in node.decorator_list:
            self.visit(deco)
        for base in node.bases:
            self.visit(base)
        scope = _Scope(qual, "class")
        self.scopes.append(scope)
        for child in node.body:
            self.visit(child)
        self.scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node) -> None:
        qual = self._qual(node.name)
        self.scopes[-1].defs[node.name] = (qual, "function")
        self.scopes[-1].bound.add(node.name)
        in_class = self.scopes[-1].kind == "class"
        args = node.args
        params = tuple(
            a.arg
            for a in (
                list(getattr(args, "posonlyargs", [])) + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
        )
        # Decorator and default expressions evaluate in the enclosing scope.
        for deco in node.decorator_list:
            self.visit(deco)
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            self.visit(default)
        fn_acc: Dict[str, Any] = {
            "calls": [],
            "effects": [],
            "reads": {},
            "get_reads": {},
            "dynamic_reads": set(),
            "globals": set(),
        }
        scope = _Scope(qual, "function")
        scope.bound.update(params)
        # Pre-bind every name the body stores anywhere: Python scoping makes
        # them local from line one, so mutation checks must not depend on
        # whether the binding statement has been walked yet.
        scope.bound.update(_stored_names(node))
        self.scopes.append(scope)
        self._fn_stack.append(fn_acc)
        for child in node.body:
            if isinstance(child, ast.Global):
                fn_acc["globals"].update(child.names)
        for child in node.body:
            self.visit(child)
        self._fn_stack.pop()
        self.scopes.pop()
        self.functions[qual] = FunctionInfo(
            qualname=qual,
            module=self.module,
            relpath=self.relpath,
            line=node.lineno,
            name=node.name,
            params=params,
            calls=tuple(fn_acc["calls"]),
            direct_effects=tuple(fn_acc["effects"]),
            subscript_reads={
                k: tuple(sorted(v)) for k, v in sorted(fn_acc["reads"].items())
            },
            get_reads={
                k: tuple(sorted(v))
                for k, v in sorted(fn_acc["get_reads"].items())
            },
            dynamic_reads=tuple(sorted(fn_acc["dynamic_reads"])),
            is_method=in_class,
        )

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # A lambda body charges its calls/effects to whoever defined it.
        scope = _Scope(self._qual("<lambda>"), "function")
        scope.bound.update(a.arg for a in node.args.args)
        self.scopes.append(scope)
        self.visit(node.body)
        self.scopes.pop()

    # -- name binding and stores ---------------------------------------------
    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            fn = self._current_fn()
            if fn is not None and node.id in fn["globals"]:
                fn["effects"].append(
                    DirectEffect(
                        "global-mutation", node.lineno,
                        f"assignment to global {node.id!r}",
                    )
                )
            else:
                self.scopes[-1].bound.add(node.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store_target(target)
            self.visit(target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target)
        self.visit(node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_store_target(node.target)
        self.visit(node.target)
        if node.value is not None:
            self.visit(node.value)

    def _check_store_target(self, target: ast.expr) -> None:
        """Flag ``shared[k] = v`` / ``shared.attr = v`` on non-local names."""
        fn = self._current_fn()
        if fn is None:
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_store_target(elt)
            return
        via = None
        base: ast.expr = target
        if isinstance(base, ast.Subscript):
            via, base = "subscript", base.value
        elif isinstance(base, ast.Attribute):
            via, base = "attribute", base.value
        if via is None:
            return
        dotted = _dotted_name(base)
        if dotted is None:
            return
        head = dotted.split(".")[0]
        if self._is_local(head):
            return
        if self._is_module_import_alias(head) or head in self.imports:
            # e.g. ``os.environ["X"] = ...`` — interpreter-global state
            # owned by another module (``from os import environ`` included).
            kind, resolved = self._resolve(dotted)
            if kind == "absolute" and not resolved.startswith("repro"):
                fn["effects"].append(
                    DirectEffect(
                        "global-mutation", target.lineno,
                        f"{via} store on module {resolved!r}",
                    )
                )
        elif self._names_shared_state(head):
            fn["effects"].append(
                DirectEffect(
                    "global-mutation", target.lineno,
                    f"{via} store on {self._shared_kind(head)} {head!r}",
                )
            )

    # -- subscript reads (stage-contract raw material) -----------------------
    def visit_Subscript(self, node: ast.Subscript) -> None:
        fn = self._current_fn()
        if (
            fn is not None
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
        ):
            name = node.value.id
            key = node.slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                fn["reads"].setdefault(name, set()).add(key.value)
            else:
                fn["dynamic_reads"].add(name)
        self.generic_visit(node)

    # -- calls ----------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._maybe_stage_site(node)
        self._record_get_read(node)
        fn = self._current_fn()
        dotted = _dotted_name(node.func)
        if fn is not None:
            if dotted is not None:
                kind, target = self._resolve(dotted)
                fn["calls"].append(
                    CallRef(raw=dotted, target=target, kind=kind,
                            line=node.lineno)
                )
                self._detect_call_effects(node, dotted, kind, target)
            self._detect_method_effects(node)
        self.generic_visit(node)

    def _record_get_read(self, node: ast.Call) -> None:
        fn = self._current_fn()
        if (
            fn is not None
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.args
        ):
            key = node.args[0]
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                fn["get_reads"].setdefault(
                    node.func.value.id, set()
                ).add(key.value)
            else:
                fn["dynamic_reads"].add(node.func.value.id)

    def _detect_call_effects(
        self, node: ast.Call, dotted: str, kind: str, target: str
    ) -> None:
        fn = self._current_fn()
        assert fn is not None
        line = node.lineno
        if dotted == "open" and kind == "dynamic":
            mode = _mode_literal(node)
            if mode is not None and (_WRITE_MODE_CHARS & set(mode)):
                fn["effects"].append(
                    DirectEffect("filesystem-write", line,
                                 f"open(..., {mode!r})")
                )
            return
        resolved = target if kind == "absolute" else dotted
        parts = resolved.split(".")
        if resolved in _FS_WRITE_CALLS:
            fn["effects"].append(
                DirectEffect("filesystem-write", line, f"call to {resolved}")
            )
        elif resolved in _CLOCK_CALLS:
            fn["effects"].append(
                DirectEffect("reads-clock", line, f"call to {resolved}")
            )
        elif parts[0] == "time" and len(parts) == 2 and parts[1] in _CLOCK_READS:
            fn["effects"].append(
                DirectEffect("reads-clock", line, f"call to {resolved}")
            )
        elif (
            len(parts) >= 3
            and parts[0] in ("numpy", "np")
            and parts[1] == "random"
            and parts[2] not in _SEEDED_CONSTRUCTORS
        ):
            fn["effects"].append(DirectEffect("rng", line, f"call to {resolved}"))
        else:
            for prefix, effect in _EFFECT_PREFIXES:
                if resolved.startswith(prefix):
                    fn["effects"].append(
                        DirectEffect(effect, line, f"call to {resolved}")
                    )
                    break

    def _detect_method_effects(self, node: ast.Call) -> None:
        """Receiver-based effects: pathlib writes, shared-state mutators."""
        fn = self._current_fn()
        if fn is None or not isinstance(node.func, ast.Attribute):
            return
        attr = node.func.attr
        line = node.lineno
        if attr in _WRITE_METHODS:
            fn["effects"].append(
                DirectEffect("filesystem-write", line, f".{attr}(...) write")
            )
            return
        if attr in _MUTATING_METHODS and isinstance(node.func.value, ast.Name):
            name = node.func.value.id
            if (
                not self._is_local(name)
                and self._names_shared_state(name)
                and not self._is_module_import_alias(name)
            ):
                fn["effects"].append(
                    DirectEffect(
                        "global-mutation", line,
                        f"{name}.{attr}(...) mutates "
                        f"{self._shared_kind(name)} state",
                    )
                )

    # -- Stage(...) construction sites ----------------------------------------
    def _maybe_stage_site(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is None:
            return
        kind, target = self._resolve(dotted)
        if kind != "absolute" or target != _STAGE_CLASS:
            return
        name: Optional[str] = None
        fn_target = ""
        inputs: Set[str] = set()
        inputs_dynamic = False
        has_inputs_kw = False
        slots: Dict[str, ast.expr] = {}
        for i, arg in enumerate(node.args):
            if i == 0:
                slots["name"] = arg
            elif i == 1:
                slots["fn"] = arg
        for kw in node.keywords:
            if kw.arg in ("name", "fn", "inputs"):
                slots[kw.arg] = kw.value
        if "name" in slots:
            v = slots["name"]
            if isinstance(v, ast.Constant) and isinstance(v.value, str):
                name = v.value
        if "fn" in slots:
            fdotted = _dotted_name(slots["fn"])
            if fdotted is not None:
                fkind, ftarget = self._resolve(fdotted)
                if fkind == "project":
                    fn_target = ftarget
        input_arms: Tuple[Tuple[str, ...], ...] = ((),)
        if "inputs" in slots:
            has_inputs_kw = True
            arms, inputs_dynamic = _collect_input_arms(slots["inputs"])
            input_arms = tuple(arms) or ((),)
            for arm in arms:
                inputs.update(arm)
        self.stage_sites.append(
            StageSite(
                relpath=self.relpath,
                line=node.lineno,
                col=node.col_offset,
                name=name,
                fn_target=fn_target,
                inputs=tuple(sorted(inputs)),
                input_arms=input_arms,
                inputs_dynamic=inputs_dynamic,
                has_inputs_kw=has_inputs_kw,
            )
        )


def summarize_source(
    source: str, relpath: str, source_hash: str = ""
) -> ModuleSummary:
    """Distil one file's source into a :class:`ModuleSummary`.

    Raises ``SyntaxError`` when the file does not parse — the analyzer skips
    unparseable files (the per-file pass already reported them).
    """
    tree = ast.parse(source, filename=relpath)
    module = module_name_for(relpath)
    summ = _Summarizer(relpath, module)
    # Pre-register every top-level def/class so forward references resolve:
    # by the time any module code *runs*, the whole module is loaded, so
    # ``def even(): return odd()`` legitimately calls a later definition.
    for child in tree.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summ.scopes[0].defs[child.name] = (summ._qual(child.name), "function")
            summ.scopes[0].bound.add(child.name)
        elif isinstance(child, ast.ClassDef):
            summ.scopes[0].defs[child.name] = (summ._qual(child.name), "class")
            summ.scopes[0].bound.add(child.name)
    for child in tree.body:
        summ.visit(child)
    return ModuleSummary(
        relpath=relpath,
        module=module,
        source_hash=source_hash,
        imports=summ.imports,
        functions=summ.functions,
        stage_sites=tuple(summ.stage_sites),
        module_level_names=tuple(sorted(summ.scopes[0].bound)),
    )
