"""Stage-contract verification: declared ``inputs`` vs actual context reads.

A :class:`~repro.runtime.pipeline.Stage` declares the upstream stages it
reads (``inputs=...``); :mod:`repro.obs.lineage` turns those declarations
into the edges of ``provenance.json``.  Nothing checked them until now —
a drifted declaration silently produces *wrong provenance* while the
pipeline keeps running.  This pass closes the loop:

``undeclared-input``
    the stage's ``fn`` body reads ``context["x"]`` (or ``.get("x", ...)``)
    but ``"x"`` is not declared — the lineage DAG is missing an edge.
``unused-declared-input``
    a declared input is never read — the lineage DAG carries a fake edge.
``unknown-stage-key``
    a declared or read key names no stage constructed anywhere in the
    project (and is not a runner-internal key) — probably a typo.  Only
    checked while every stage name in the project is a literal; one
    dynamically named stage reopens the name universe and stands the
    check down.

Reads are split by strength: ``context["x"]`` is a *hard* read (raises if
the key is absent, so it happens on every execution) while
``context.get("x", ...)`` is a *soft* read that tolerates absence.
Conditional declarations (``inputs=(a,) if flag else (b,)``) are checked
per arm: a hard read must appear in **every** arm — an arm that omits it
drops a real lineage edge whenever that arm is taken — while a soft read
only needs to appear in the union.  Sites whose ``fn`` is a runtime value
(factory results, registry lookups) are checked only for unknown keys,
since their bodies cannot be found statically.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.flow.callgraph import Project
from repro.lint.flow.summarize import FunctionInfo, StageSite

__all__ = ["check_contracts", "known_stage_names"]

#: Context keys the runner itself owns; stage fns may not touch them, but
#: they are not "unknown stages" either.
RUNNER_INTERNAL_KEYS: Tuple[str, ...] = ("__report__", "__last_error__")


def known_stage_names(project: Project) -> Set[str]:
    """Every literal stage name constructed anywhere in the project."""
    return {
        site.name for site in project.stage_sites() if site.name is not None
    }


def _context_param(info: FunctionInfo) -> Optional[str]:
    """The parameter a stage fn receives the context dict through."""
    if info.is_method and info.params and info.params[0] == "self":
        rest = info.params[1:]
        return rest[0] if rest else None
    return info.params[0] if info.params else None


def _site_label(site: StageSite) -> str:
    return f"stage {site.name!r}" if site.name is not None else "stage"


def check_contracts(project: Project) -> List[Diagnostic]:
    """Verify every ``Stage(...)`` site's declared inputs against reality."""
    known = known_stage_names(project)
    any_dynamic_names = any(
        site.name is None for site in project.stage_sites()
    )
    findings: List[Diagnostic] = []
    for site in project.stage_sites():
        findings.extend(
            _check_site(project, site, known, any_dynamic_names)
        )
    return findings


def _check_site(
    project: Project,
    site: StageSite,
    known: Set[str],
    any_dynamic_names: bool,
) -> Iterable[Diagnostic]:
    declared = set(site.inputs)
    arms = [set(arm) for arm in site.input_arms] or [declared]
    info = project.functions.get(site.fn_target) if site.fn_target else None
    reads: Optional[Set[str]] = None
    hard: Set[str] = set()
    if info is not None:
        param = _context_param(info)
        if param is not None:
            if param in info.dynamic_reads:
                reads = None  # non-literal keys: reads are unknowable
            else:
                hard = set(info.subscript_reads.get(param, ()))
                reads = hard | set(info.get_reads.get(param, ()))

    def diag(rule: str, message: str, severity=Severity.ERROR) -> Diagnostic:
        return Diagnostic(
            rule=rule,
            severity=severity,
            path=site.relpath,
            line=site.line,
            col=site.col,
            message=message,
        )

    if reads is not None:
        for key in sorted(reads - declared):
            if key in RUNNER_INTERNAL_KEYS:
                yield diag(
                    "undeclared-input",
                    f"{_site_label(site)} fn reads runner-internal context "
                    f"key {key!r}",
                )
                continue
            yield diag(
                "undeclared-input",
                f"{_site_label(site)} fn reads context[{key!r}] but does not "
                f"declare it in inputs=; the lineage DAG is missing this edge",
            )
        if len(arms) > 1 and not site.inputs_dynamic:
            # A hard read happens on every execution, so every conditional
            # arm of the declaration must carry it.
            for key in sorted(hard & declared):
                if any(key not in arm for arm in arms):
                    yield diag(
                        "undeclared-input",
                        f"{_site_label(site)} fn always reads "
                        f"context[{key!r}] but a conditional arm of inputs= "
                        f"omits it; the lineage DAG drops this edge whenever "
                        f"that arm is taken",
                    )
        if not site.inputs_dynamic:
            for key in sorted(declared - reads):
                yield diag(
                    "unused-declared-input",
                    f"{_site_label(site)} declares input {key!r} but its fn "
                    f"never reads context[{key!r}]; the lineage DAG carries "
                    f"a spurious edge",
                    severity=Severity.WARNING,
                )

    if not any_dynamic_names:
        # Only meaningful when every stage name is literal: then the
        # stage-name universe is closed and unmatched keys are provable
        # typos.  One dynamically named stage anywhere reopens it — any key
        # could name a runtime-built stage — so the check stands down
        # entirely (a typo'd declared input still surfaces as the
        # undeclared-input / unused-declared-input pair).
        candidates = declared | (reads or set())
        for key in sorted(candidates - known - set(RUNNER_INTERNAL_KEYS)):
            yield diag(
                "unknown-stage-key",
                f"{_site_label(site)} references context key {key!r} which "
                f"is not the name of any statically constructed stage",
            )
