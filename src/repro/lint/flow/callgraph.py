"""Link per-file summaries into a project: symbol table + call graph.

Resolution happens in two layers.  The summarizer already pinned every call
to either a ``project`` qualname (same-file definition, ``self.`` method)
or an ``absolute`` dotted path through the module's import table
(``repro.obs.get_logger``, ``numpy.unique``).  This module finishes the
job across files:

* absolute paths into the project are resolved against the real module
  summaries, following re-export chains (``from repro.lint.engine import
  lint_paths`` in a package ``__init__`` makes ``repro.lint.lint_paths``
  an alias) up to a fixed depth;
* ``Class(...)`` constructions resolve to ``Class.__init__`` when one is
  defined, and ``Class.method`` paths to the method;
* everything else (stdlib, numpy, genuinely dynamic) stays an external or
  unresolved edge — recorded, never guessed at.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.flow.summarize import FunctionInfo, ModuleSummary, StageSite

__all__ = ["Project"]

#: How many re-export hops to follow before declaring an alias dynamic.
_MAX_ALIAS_HOPS = 12


class Project:
    """All module summaries, linked: symbol table, call graph, stage sites."""

    def __init__(self, summaries: Iterable[ModuleSummary]):
        self.modules: Dict[str, ModuleSummary] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
            self.functions.update(summary.functions)
        #: caller qualname → sorted callee qualnames (project-internal only)
        self.calls: Dict[str, Tuple[str, ...]] = {}
        #: callee qualname → sorted caller qualnames
        self.callers: Dict[str, Tuple[str, ...]] = {}
        self._link()

    # -- symbol resolution ---------------------------------------------------
    def resolve(self, dotted: str) -> Optional[str]:
        """Project function qualname for an absolute dotted path, if any.

        Follows re-export alias chains through package ``__init__`` import
        tables and resolves class constructions to ``__init__``.
        """
        seen: Set[str] = set()
        path = dotted
        for _ in range(_MAX_ALIAS_HOPS):
            if path in seen:
                return None
            seen.add(path)
            hit = self._resolve_once(path)
            if hit is None:
                return None
            kind, value = hit
            if kind == "function":
                return value
            path = value  # alias hop: try again with the re-export target
        return None

    def _resolve_once(self, dotted: str) -> Optional[Tuple[str, str]]:
        """One resolution step: ('function', qualname) or ('alias', target)."""
        if dotted in self.functions:
            return "function", dotted
        init = f"{dotted}.__init__"
        if init in self.functions:
            return "function", init
        # Split into the longest module prefix we know and a symbol path.
        module, symbol = self._split_module(dotted)
        if module is None or not symbol:
            return None
        summary = self.modules[module]
        head = symbol.split(".", 1)[0]
        rest = symbol[len(head):].lstrip(".")
        if head in summary.imports:
            target = summary.imports[head] + (("." + rest) if rest else "")
            return "alias", target
        return None

    def _split_module(self, dotted: str) -> Tuple[Optional[str], str]:
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            module = ".".join(parts[:cut])
            if module in self.modules:
                return module, ".".join(parts[cut:])
        return None, dotted

    # -- linking --------------------------------------------------------------
    def _link(self) -> None:
        calls: Dict[str, Set[str]] = defaultdict(set)
        callers: Dict[str, Set[str]] = defaultdict(set)
        for qual, info in self.functions.items():
            for call in info.calls:
                target: Optional[str] = None
                if call.kind == "project":
                    target = self._resolve_project_ref(call.target)
                elif call.kind == "absolute":
                    target = self.resolve(call.target)
                if target is not None and target in self.functions:
                    calls[qual].add(target)
                    callers[target].add(qual)
        self.calls = {q: tuple(sorted(c)) for q, c in calls.items()}
        self.callers = {q: tuple(sorted(c)) for q, c in callers.items()}

    def _resolve_project_ref(self, target: str) -> Optional[str]:
        """A summarizer 'project' ref: exact, constructor, or method hop."""
        if target in self.functions:
            return target
        init = f"{target}.__init__"
        if init in self.functions:
            return init
        return None

    # -- queries ---------------------------------------------------------------
    def callees_of(self, qualname: str) -> Tuple[str, ...]:
        return self.calls.get(qualname, ())

    def callers_of(self, qualname: str) -> Tuple[str, ...]:
        return self.callers.get(qualname, ())

    def stage_sites(self) -> List[StageSite]:
        sites: List[StageSite] = []
        for module in sorted(self.modules):
            sites.extend(self.modules[module].stage_sites)
        return sites

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Transitive closure over project call edges."""
        seen: Set[str] = set()
        frontier = [r for r in roots if r in self.functions]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.calls.get(current, ()))
        return seen

    def find_function(self, needle: str) -> List[FunctionInfo]:
        """Functions whose qualname equals or ends with ``needle``.

        Supports ``repro lint effects <function>``: a bare name matches by
        suffix, a dotted path must match whole trailing components.
        """
        if needle in self.functions:
            return [self.functions[needle]]
        suffix = "." + needle
        hits = [
            info for qual, info in self.functions.items()
            if qual.endswith(suffix)
        ]
        return sorted(hits, key=lambda i: i.qualname)
