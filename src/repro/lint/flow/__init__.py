"""``repro.lint.flow`` — whole-program dataflow analysis over ``src/repro``.

The per-file rules in :mod:`repro.lint.rules` see one AST at a time; this
package sees all of them at once.  It builds a project-wide symbol table
and call graph, infers a per-function *effect set* (rng, clock reads,
filesystem writes, global mutation, network) and propagates it
transitively through calls, then verifies two runtime contracts against
the result:

* every ``Stage.fn`` body's ``context[...]`` reads must match the stage's
  declared ``inputs`` — the declarations :mod:`repro.obs.lineage` turns
  into ``provenance.json`` edges, so a drifted declaration is silently
  wrong provenance;
* functions reachable from ``tables/kernels.py`` and ``stats/`` must be
  effect-free except via the sanctioned seams (``util/rng.py``, the
  ``obs/`` clock shim, ``storage/``) — the purity certificate a future
  deterministic parallel scheduler consumes.

Pipeline: :func:`summarize_source` distils one file into a cacheable
:class:`ModuleSummary`; :class:`Project` links summaries into a symbol
table + call graph; :func:`infer_effects` runs the lattice fixpoint;
:func:`check_contracts` / :func:`check_kernel_purity` emit diagnostics
through the ordinary baseline/suppression machinery; and
:func:`build_effects_report` renders the machine-readable
``effects.json`` (schema: ``docs/effects.schema.json``).

Entry point: :func:`repro.lint.flow.analyzer.analyze_paths`, wired into
``repro lint --flow``.  See docs/LINT.md ("Whole-program flow analysis").
"""

from repro.lint.flow.analyzer import FlowResult, analyze_paths
from repro.lint.flow.callgraph import Project
from repro.lint.flow.contracts import check_contracts
from repro.lint.flow.effects import (
    EFFECTS,
    SEAMS,
    EffectAnalysis,
    check_kernel_purity,
    infer_effects,
)
from repro.lint.flow.report import build_effects_report, write_effects_report
from repro.lint.flow.summarize import FunctionInfo, ModuleSummary, summarize_source

__all__ = [
    "EFFECTS",
    "SEAMS",
    "EffectAnalysis",
    "FlowResult",
    "FunctionInfo",
    "ModuleSummary",
    "Project",
    "analyze_paths",
    "build_effects_report",
    "check_contracts",
    "check_kernel_purity",
    "infer_effects",
    "summarize_source",
    "write_effects_report",
]
