"""Content-hash summary cache: warm flow runs skip re-parsing clean files.

One JSON file maps relpath → (sha256 of source, serialized ModuleSummary).
A file whose hash matches is deserialized instead of re-parsed — the
per-file AST walk is the dominant cost of the flow pass, so a warm run
over an unchanged tree does only the (cheap) linking and fixpoint work
and stays well inside the lint perf budget.

The cache is advisory: a missing, corrupt, or version-skewed file is
treated as empty, never an error.  Writes go through ``repro.storage``
like every other artifact.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional

from repro import storage
from repro.lint.flow.summarize import SUMMARY_VERSION, ModuleSummary

__all__ = ["DEFAULT_CACHE_PATH", "FlowCache", "content_hash"]

DEFAULT_CACHE_PATH = "results/.lint-cache/flow-cache.json"
_CACHE_VERSION = 1


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class FlowCache:
    """relpath → cached ModuleSummary, keyed by source content hash."""

    def __init__(self, path: Optional[Path] = None):
        self.path = Path(path) if path is not None else None
        self._entries: Dict[str, Dict] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        if self.path is not None:
            self._load()

    def _load(self) -> None:
        assert self.path is not None
        if not self.path.exists():
            return
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return  # advisory cache: unreadable == empty
        if (
            not isinstance(payload, dict)
            or payload.get("cache_version") != _CACHE_VERSION
            or payload.get("summary_version") != SUMMARY_VERSION
        ):
            return
        entries = payload.get("files")
        if isinstance(entries, dict):
            self._entries = entries

    def get(self, relpath: str, source_hash: str) -> Optional[ModuleSummary]:
        entry = self._entries.get(relpath)
        if entry is None or entry.get("sha256") != source_hash:
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_json(entry["summary"])
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, summary: ModuleSummary) -> None:
        self._entries[summary.relpath] = {
            "sha256": summary.source_hash,
            "summary": summary.to_json(),
        }
        self._dirty = True

    def save(self) -> None:
        """Persist if backed by a path and anything changed."""
        if self.path is None or not self._dirty:
            return
        payload = {
            "cache_version": _CACHE_VERSION,
            "summary_version": SUMMARY_VERSION,
            "files": self._entries,
        }
        storage.commit_text(
            str(self.path),
            json.dumps(payload, sort_keys=True) + "\n",
            label="lint.flowcache",
        )
        self._dirty = False
