"""``unseeded-random``: all randomness flows through the seeded RngHub.

Reproducibility is the whole point of the synthetic substrate: one stray
``np.random.uniform()`` (module-level global state) or ``import random``
makes runs diverge silently.  Outside ``util/rng.py``, this rule flags

* any import of the stdlib ``random`` module,
* any call on ``np.random``/``numpy.random`` *except* explicit seeded
  construction (``Generator``, ``PCG64``, ``SeedSequence``) — so
  ``np.random.default_rng()``, ``np.random.seed(...)`` and every module-level
  distribution call are findings.

Passing an ``np.random.Generator`` around (the repo-wide convention) is
untouched: annotations and ``rng.uniform(...)`` calls never match.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import Rule, register

__all__ = ["UnseededRandomRule"]

#: np.random attributes that *construct* explicitly seeded generators.
_SEEDED_CONSTRUCTORS = frozenset({"Generator", "PCG64", "SeedSequence"})


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class UnseededRandomRule(Rule):
    id = "unseeded-random"
    severity = Severity.ERROR
    description = (
        "direct random.*/np.random.* use outside util/rng.py; draw from a "
        "seeded RngHub stream instead"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if ctx.matches(*ctx.config.rng_allowed_files):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_import(self, ctx: FileContext, node: ast.Import) -> Iterator[Diagnostic]:
        for alias in node.names:
            top = alias.name.split(".")[0]
            if top == "random":
                yield self.diag(
                    ctx,
                    node,
                    "import of stdlib 'random' (unseedable global state); "
                    "use util.rng.RngHub",
                )

    def _check_import_from(
        self, ctx: FileContext, node: ast.ImportFrom
    ) -> Iterator[Diagnostic]:
        if node.module and node.module.split(".")[0] == "random":
            yield self.diag(
                ctx,
                node,
                "import from stdlib 'random' (unseedable global state); "
                "use util.rng.RngHub",
            )

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Diagnostic]:
        name = _dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        if parts[0] == "random" and len(parts) == 2:
            yield self.diag(
                ctx,
                node,
                f"call to stdlib {name}() uses unseeded global state; "
                f"draw from an RngHub stream",
            )
        elif (
            len(parts) >= 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] not in _SEEDED_CONSTRUCTORS
        ):
            yield self.diag(
                ctx,
                node,
                f"call to {name}() bypasses the seeded RngHub; global "
                f"numpy randomness is unreproducible",
            )
