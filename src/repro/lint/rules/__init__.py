"""Built-in rules.  Importing this package registers every rule.

Add a rule by dropping a module here that defines a ``@register``-decorated
:class:`repro.lint.registry.Rule` subclass and importing it below — see
``docs/LINT.md`` for a worked example.
"""

from repro.lint.rules import (  # noqa: F401
    bare_timing,
    float_equality,
    imports,
    mutable_defaults,
    randomness,
    row_loops,
    schema_columns,
    typed_errors,
    unsafe_write,
)
