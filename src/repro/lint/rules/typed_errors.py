"""``typed-errors``: library errors use the util/errors.py hierarchy.

The CLI's exit-code contract (1/3/4/5) and the runtime's degradation logic
both catch :class:`repro.util.errors.ReproError`; an untyped ``raise
RuntimeError`` escapes as a traceback instead of a report line.  This rule
flags, everywhere in ``src/repro``:

* bare ``except:`` handlers (swallow ``KeyboardInterrupt`` and typed errors
  alike),
* raising generic builtins (``Exception``, ``RuntimeError``, ``KeyError``,
  ``OSError``, ...).

Per the documented convention in ``util/errors.py``, ``ValueError`` /
``TypeError`` / ``IndexError`` for *argument validation and index protocols*
stay allowed — except inside the strict packages (``analysis/``,
``runtime/``), which have dedicated typed errors (``AnalysisError``,
``PipelineError``) that run reports depend on.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import Rule, register

__all__ = ["TypedErrorsRule"]

#: Builtins whose raise is a finding anywhere in the library.
_ALWAYS_FLAGGED = frozenset(
    {
        "Exception",
        "BaseException",
        "RuntimeError",
        "KeyError",
        "OSError",
        "IOError",
        "ArithmeticError",
    }
)
#: Additionally flagged inside the strict packages.
_STRICT_FLAGGED = frozenset({"ValueError", "TypeError", "IndexError"})


def _raised_name(node: ast.Raise) -> Optional[str]:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None


@register
class TypedErrorsRule(Rule):
    id = "typed-errors"
    severity = Severity.ERROR
    description = (
        "raise errors from the util/errors.py hierarchy (no generic builtins, "
        "no bare except)"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        strict = ctx.in_package(*ctx.config.typed_error_strict_packages)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.diag(
                    ctx,
                    node,
                    "bare 'except:' swallows everything (even "
                    "KeyboardInterrupt); catch ReproError or a specific type",
                )
            elif isinstance(node, ast.Raise):
                yield from self._check_raise(ctx, node, strict)

    def _check_raise(
        self, ctx: FileContext, node: ast.Raise, strict: bool
    ) -> Iterator[Diagnostic]:
        name = _raised_name(node)
        if name is None:
            return
        if name in _ALWAYS_FLAGGED:
            yield self.diag(
                ctx,
                node,
                f"raise of generic builtin {name}; use a typed error from "
                f"util/errors.py so callers can catch ReproError",
            )
        elif strict and name in _STRICT_FLAGGED:
            yield self.diag(
                ctx,
                node,
                f"raise of builtin {name} inside a strict package; use "
                f"AnalysisError/PipelineError so the run report and exit "
                f"codes see it",
            )
