"""``schema-columns``: column-name string literals must be declared.

Cross-references every string literal at a table call site — ``col("x")``,
the expression-AST leaf constructors (``Comparison``/``IsIn``/``IsNull``),
``.column/select/group_by/sort_by/drop/with_column/rename(...)`` and the
source/aggregator slots of ``.aggregate({out: (src, how)})`` — against
:func:`repro.tables.schema.known_columns`.  Lazy chains need no special
casing: ``ast.walk`` reaches a ``col("tput_mbps")`` nested inside
``t.lazy().filter(...)`` exactly as it does the eager spelling.  A typo'd ``"MeanTput "`` (the
trailing-space kind that silently empties a BigQuery-style extract) becomes a
lint error instead of a corrupted result.

String subscripts (``row["min_rtt_ms"]``) also index plain dicts, so they get
a *near-miss* check only: flagged when the literal is a whitespace/case
variant of a declared column but not exactly one.

Files listed in ``LintConfig.schema_exempt_files`` (the bench micro suite,
whose tables are synthetic by design) are skipped entirely.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import Rule, register

__all__ = ["SchemaColumnsRule"]

#: Table methods whose first argument names existing columns to read.
_READ_METHODS = ("column", "group_by", "select", "sort_by", "drop")
#: Table methods whose string arguments introduce or rename columns; those
#: names must also be declared (``DERIVED_COLUMNS``) so every column the
#: pipeline can produce is registered in one place.
_WRITE_METHODS = ("with_column", "rename")
#: Expression-AST leaf constructors whose first argument is a column name.
#: ``col("x")`` is the idiomatic spelling, but the node classes are public
#: (``repro.tables.expr``), so a typo'd column inside a directly built
#: ``Comparison``/``IsIn``/``IsNull`` — e.g. deep in a lazy chain — must be
#: caught the same way.
_EXPR_LEAVES = ("Comparison", "IsIn", "IsNull")


def _string_args(node: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
    """Yield (node, value) for a str literal or a list/tuple of them."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        yield node, node.value
    elif isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                yield element, element.value


def _normalize(name: str) -> str:
    return name.strip().lower().replace(" ", "_").replace("-", "_")


@register
class SchemaColumnsRule(Rule):
    id = "schema-columns"
    severity = Severity.ERROR
    description = (
        "column-name string literals at table call sites must appear in "
        "tables/schema.py (NDT/trace schemas or DERIVED_COLUMNS)"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        known = ctx.config.known_columns
        if not known or ctx.matches(*ctx.config.schema_exempt_files):
            return
        normalized = {_normalize(k): k for k in known}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, known)
            elif isinstance(node, ast.Subscript):
                yield from self._check_subscript(ctx, node, known, normalized)

    # -- call sites ---------------------------------------------------------
    def _check_call(
        self, ctx: FileContext, call: ast.Call, known
    ) -> Iterator[Diagnostic]:
        func = call.func
        # ``col("x")`` and the expression-AST leaves name columns in their
        # first argument whether called bare or via an attribute path
        # (``expr.col`` / ``expr.Comparison``); lazy chains nest these
        # inside .filter(...) calls, which ast.walk reaches the same way.
        callee = None
        if isinstance(func, ast.Name):
            callee = func.id
        elif isinstance(func, ast.Attribute):
            callee = func.attr
        if callee == "col" and call.args:
            yield from self._check_names(ctx, _string_args(call.args[0]), known, "col()")
            return
        if callee in _EXPR_LEAVES and call.args:
            yield from self._check_names(
                ctx, _string_args(call.args[0]), known, f"{callee}()"
            )
            return
        if not isinstance(func, ast.Attribute):
            return
        method = func.attr
        if method in _READ_METHODS and call.args:
            yield from self._check_names(
                ctx, _string_args(call.args[0]), known, f".{method}()"
            )
        elif method == "with_column" and call.args:
            yield from self._check_names(
                ctx, _string_args(call.args[0]), known, ".with_column()"
            )
        elif method == "rename" and call.args:
            yield from self._check_rename(ctx, call.args[0], known)
        elif method == "aggregate" and call.args:
            yield from self._check_aggregate(ctx, call.args[0], known)

    def _check_names(
        self,
        ctx: FileContext,
        names: Iterable[Tuple[ast.AST, str]],
        known,
        where: str,
    ) -> Iterator[Diagnostic]:
        for node, value in names:
            if value not in known:
                yield self.diag(
                    ctx,
                    node,
                    f"unknown column {value!r} passed to {where}; declare it "
                    f"in tables/schema.py or fix the typo",
                )

    def _check_rename(
        self, ctx: FileContext, arg: ast.AST, known
    ) -> Iterator[Diagnostic]:
        if not isinstance(arg, ast.Dict):
            return
        for key, value in zip(arg.keys, arg.values):
            for node, name in _string_args(key) if key is not None else ():
                if name not in known:
                    yield self.diag(
                        ctx, node, f"rename of unknown column {name!r}"
                    )
            for node, name in _string_args(value):
                if name not in known:
                    yield self.diag(
                        ctx,
                        node,
                        f"rename target {name!r} is not a declared column; "
                        f"add it to DERIVED_COLUMNS in tables/schema.py",
                    )

    def _check_aggregate(
        self, ctx: FileContext, arg: ast.AST, known
    ) -> Iterator[Diagnostic]:
        if not isinstance(arg, ast.Dict):
            return
        aggregators = ctx.config.aggregators
        for key, value in zip(arg.keys, arg.values):
            if key is not None:
                for node, name in _string_args(key):
                    if name not in known:
                        yield self.diag(
                            ctx,
                            node,
                            f"aggregate output {name!r} is not a declared "
                            f"column; add it to DERIVED_COLUMNS in "
                            f"tables/schema.py",
                        )
            if isinstance(value, ast.Tuple) and len(value.elts) == 2:
                src, how = value.elts
                for node, name in _string_args(src):
                    if name not in known:
                        yield self.diag(
                            ctx, node, f"aggregate over unknown column {name!r}"
                        )
                for node, name in _string_args(how):
                    if aggregators and name not in aggregators:
                        yield self.diag(
                            ctx,
                            node,
                            f"unknown aggregator {name!r}; "
                            f"see tables.groupby.AGGREGATORS",
                        )

    # -- subscripts: near-miss (typo) detection only ------------------------
    def _check_subscript(
        self, ctx: FileContext, node: ast.Subscript, known, normalized
    ) -> Iterator[Diagnostic]:
        sub = node.slice
        # py3.8 wraps the subscript in ast.Index; unwrap if present.
        if sub.__class__.__name__ == "Index":
            sub = sub.value  # pragma: no cover - py<3.9 only
        if not (isinstance(sub, ast.Constant) and isinstance(sub.value, str)):
            return
        value = sub.value
        if value in known:
            return
        canonical = normalized.get(_normalize(value))
        if canonical is not None:
            yield self.diag(
                ctx,
                sub,
                f"subscript {value!r} looks like a typo of declared column "
                f"{canonical!r}",
            )
