"""``forbidden-import``: no pandas, no network modules.

The reproduction is a closed system: its own columnar engine instead of
pandas, and a synthetic substrate instead of live M-Lab queries.  An import
of pandas or any network module is always a mistake here (and would break
the no-new-dependency CI environment).  One carve-out: the live health
service (``repro/obs/live/``) is the sanctioned network seam, so the
stdlib network modules — and only those — are allowed there and in the
benchmarks that load-test it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.context import NETWORK_IMPORTS, FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import Rule, register

__all__ = ["ForbiddenImportRule"]


@register
class ForbiddenImportRule(Rule):
    id = "forbidden-import"
    severity = Severity.ERROR
    description = "imports of pandas / network modules are not allowed"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        forbidden = ctx.config.forbidden_imports
        in_network_seam = ctx.in_package(
            *ctx.config.network_allowed_packages
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in forbidden and not (
                        in_network_seam and top in NETWORK_IMPORTS
                    ):
                        yield self.diag(
                            ctx,
                            node,
                            f"forbidden import {alias.name!r}: {forbidden[top]}",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                top = node.module.split(".")[0]
                if (
                    node.level == 0
                    and top in forbidden
                    and not (in_network_seam and top in NETWORK_IMPORTS)
                ):
                    yield self.diag(
                        ctx,
                        node,
                        f"forbidden import {node.module!r}: {forbidden[top]}",
                    )
