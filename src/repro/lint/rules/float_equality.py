"""``float-equality``: no ``==``/``!=`` against float literals.

Metric values (throughput, RTT, loss rate) are floats that went through
arithmetic; comparing them with ``== 0.05`` is order-of-evaluation roulette.
Flags any equality comparison whose operand is a float literal.

Exception: comparison against the literal ``0.0`` is allowed — an exact-zero
test is the standard degenerate-denominator guard (there is nothing to be
"approximately" equal to), and the codebase uses it pervasively for
``if std == 0.0`` style early-outs.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import Rule, register

__all__ = ["FloatEqualityRule"]


def _is_flagged_float(node: ast.AST) -> bool:
    # Unwrap a leading unary minus so `-1.5` is seen as a float literal.
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value != 0.0
    )


@register
class FloatEqualityRule(Rule):
    id = "float-equality"
    severity = Severity.ERROR
    description = (
        "== / != against a nonzero float literal; compare with a tolerance "
        "(math.isclose / np.isclose) or restructure"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_flagged_float(left) or _is_flagged_float(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.diag(
                        ctx,
                        node,
                        f"float literal compared with {symbol}; use a "
                        f"tolerance (math.isclose) or an inequality",
                    )
                    break
