"""``mutable-default``: no mutable default argument values.

A ``def f(rows=[])`` default is created once and shared across calls — a
classic source of cross-run state that breaks the pipeline's determinism
guarantees just as surely as unseeded RNG.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import Rule, register

__all__ = ["MutableDefaultRule"]

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


@register
class MutableDefaultRule(Rule):
    id = "mutable-default"
    severity = Severity.ERROR
    description = "mutable default argument (list/dict/set); default to None"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.diag(
                        ctx,
                        default,
                        f"mutable default argument in {name}(); use None and "
                        f"create the container inside the function",
                    )
