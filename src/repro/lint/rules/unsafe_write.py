"""``unsafe-artifact-write``: on-disk writes go through ``repro.storage``.

A bare ``open(path, "w")`` is how torn files happen: no temp file, no
fsync, no atomic rename, no checksum — a crash mid-write leaves a partial
artifact the next run happily parses.  ``docs/ROBUSTNESS.md`` makes
:mod:`repro.storage` the single sanctioned writer, and this rule is the
enforcement: outside ``repro/storage/`` it flags

* any builtin ``open(...)`` call whose mode literal can create or mutate
  a file (contains ``w``, ``a``, ``x`` or ``+``);
* any ``.write_text(...)`` / ``.write_bytes(...)`` method call (the
  pathlib spelling of the same unprotected write).

Read-only opens (``"r"``, ``"rb"``, or no mode) stay legal — although
:func:`repro.storage.read_text_verified` is what checksum-guarded
artifacts deserve.  Route writes through ``storage.commit_text`` /
``commit_bytes`` / ``commit_json`` / ``append_text`` instead; genuinely
exempt call sites (e.g. a chaos shim that *is* the write path) carry a
``# repro-lint: disable=unsafe-artifact-write`` comment.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import Rule, register

__all__ = ["UnsafeArtifactWriteRule"]

#: Mode characters that make an ``open`` call a write.
_WRITE_MODE_CHARS = frozenset("wax+")

#: pathlib spellings of an unprotected write.
_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


def _mode_literal(node: ast.Call) -> Optional[str]:
    """The mode string of an ``open(...)`` call, when given as a literal."""
    mode_node: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode_node = kw.value
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None


@register
class UnsafeArtifactWriteRule(Rule):
    id = "unsafe-artifact-write"
    severity = Severity.ERROR
    description = (
        "bare open(..., 'w'/'a') or pathlib .write_text/.write_bytes outside "
        "repro/storage/ — no atomic rename, fsync, or checksum; commit "
        "through repro.storage instead"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if ctx.in_package(*ctx.config.storage_writer_files):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_open(ctx, node)
                yield from self._check_write_method(ctx, node)

    def _check_open(self, ctx: FileContext, node: ast.Call) -> Iterator[Diagnostic]:
        if not (isinstance(node.func, ast.Name) and node.func.id == "open"):
            return
        mode = _mode_literal(node)
        if mode is None or not (_WRITE_MODE_CHARS & set(mode)):
            return
        yield self.diag(
            ctx,
            node,
            f"bare open(..., {mode!r}) writes without atomic rename, fsync, "
            f"or checksum; commit through repro.storage "
            f"(commit_text/commit_bytes/append_text)",
        )

    def _check_write_method(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Diagnostic]:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _WRITE_METHODS
        ):
            return
        yield self.diag(
            ctx,
            node,
            f".{node.func.attr}(...) writes without atomic rename, fsync, or "
            f"checksum; commit through repro.storage "
            f"(commit_text/commit_bytes)",
        )
