"""``no-bare-timing``: clock reads go through ``repro.obs``.

Scattered ``time.time()`` / ``time.perf_counter()`` calls are how ad-hoc
timing creeps back in after an observability layer exists: the readings
never reach the trace, the metrics registry, or the run report, and tests
cannot substitute a fake clock.  Outside ``repro/obs/`` (home of the one
sanctioned shim, :mod:`repro.obs.clock`) and ``benchmarks/`` this rule
flags

* any use — call or bare reference — of ``time.time``,
  ``time.perf_counter``, ``time.monotonic``, ``time.process_time`` or
  their ``_ns`` variants,
* ``from time import perf_counter``-style imports of those names (the
  later call sites would otherwise hide behind a bare name).

``time.sleep`` and plain ``import time`` stay legal: sleeping is not
timing, and the module import is how ``sleep`` arrives.  Measure with
``obs.span(...)``/``@obs.traced`` and read clocks via
``repro.obs.clock.monotonic``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import Rule, register

__all__ = ["BareTimingRule"]

#: time-module attributes that read a clock.
_CLOCK_READS = frozenset(
    {
        "time",
        "perf_counter",
        "monotonic",
        "process_time",
        "time_ns",
        "perf_counter_ns",
        "monotonic_ns",
        "process_time_ns",
    }
)


@register
class BareTimingRule(Rule):
    id = "no-bare-timing"
    severity = Severity.ERROR
    description = (
        "direct time.time()/time.perf_counter() use outside repro/obs/ and "
        "benchmarks/; use obs.span or repro.obs.clock"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if ctx.in_package(*ctx.config.timing_allowed_packages):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(ctx, node)
            elif isinstance(node, ast.Attribute):
                yield from self._check_attribute(ctx, node)

    def _check_import_from(
        self, ctx: FileContext, node: ast.ImportFrom
    ) -> Iterator[Diagnostic]:
        if node.module != "time":
            return
        for alias in node.names:
            if alias.name in _CLOCK_READS:
                yield self.diag(
                    ctx,
                    node,
                    f"import of time.{alias.name} hides a clock read behind "
                    f"a bare name; use repro.obs.clock instead",
                )

    def _check_attribute(
        self, ctx: FileContext, node: ast.Attribute
    ) -> Iterator[Diagnostic]:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "time"
            and node.attr in _CLOCK_READS
        ):
            yield self.diag(
                ctx,
                node,
                f"bare time.{node.attr} bypasses the obs layer; time blocks "
                f"with obs.span(...) or read repro.obs.clock.monotonic",
            )
