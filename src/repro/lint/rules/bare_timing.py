"""``no-bare-timing``: clock reads go through ``repro.obs``.

Scattered ``time.time()`` / ``time.perf_counter()`` calls are how ad-hoc
timing creeps back in after an observability layer exists: the readings
never reach the trace, the metrics registry, or the run report, and tests
cannot substitute a fake clock.  Outside ``repro/obs/`` (home of the one
sanctioned shim, :mod:`repro.obs.clock`) and ``benchmarks/`` this rule
flags

* any use — call or bare reference — of ``time.time``,
  ``time.perf_counter``, ``time.monotonic``, ``time.process_time`` or
  their ``_ns`` variants,
* ``from time import perf_counter``-style imports of those names (the
  later call sites would otherwise hide behind a bare name).

``time.sleep`` and plain ``import time`` stay legal: sleeping is not
timing, and the module import is how ``sleep`` arrives.  Measure with
``obs.span(...)``/``@obs.traced`` and read clocks via
``repro.obs.clock.monotonic``.

The rule also guards the downstream sink of ad-hoc timing: ``BENCH_*``
artifact filenames (``BENCH_engine.json``-style literals) anywhere except
the sanctioned writer, :mod:`repro.obs.bench`.  One-off baseline files are
how timing data escapes the benchmark registry — route snapshots through
``repro.obs.bench.write_snapshot`` and history through
``repro bench record``.  Docstrings may of course *mention* the files.

Raw *profiling* machinery gets the same treatment: ``import tracemalloc``
(or any ``tracemalloc.*`` use) and ``sys._current_frames`` outside
``repro/obs/profile/`` and ``benchmarks/`` are findings.  Ad-hoc
profilers have all the problems of ad-hoc timing plus global side effects
(``tracemalloc.start()`` is process-wide); profile through ``--profile``
/ :mod:`repro.obs.profile` instead.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator, Set

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import Rule, register

__all__ = ["BareTimingRule"]

#: time-module attributes that read a clock.
_CLOCK_READS = frozenset(
    {
        "time",
        "perf_counter",
        "monotonic",
        "process_time",
        "time_ns",
        "perf_counter_ns",
        "monotonic_ns",
        "process_time_ns",
    }
)

#: A string literal that names a benchmark artifact file.
_BENCH_ARTIFACT = re.compile(r"BENCH_\w+\.jsonl?$")


def _docstring_nodes(tree: ast.AST) -> Set[int]:
    """ids of Constant nodes that are module/class/function docstrings."""
    out: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                out.add(id(body[0].value))
    return out


@register
class BareTimingRule(Rule):
    id = "no-bare-timing"
    severity = Severity.ERROR
    description = (
        "direct time.time()/time.perf_counter() use outside repro/obs/ and "
        "benchmarks/ (use obs.span or repro.obs.clock), BENCH_* artifact "
        "filenames outside repro/obs/bench.py (use the benchmark registry), "
        "and raw profiling machinery (tracemalloc, sys._current_frames) "
        "outside repro/obs/profile/ (use --profile / repro.obs.profile)"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        timing_exempt = ctx.in_package(*ctx.config.timing_allowed_packages)
        profiling_exempt = ctx.in_package(
            *ctx.config.profiling_allowed_packages
        )
        bench_exempt = ctx.matches(*ctx.config.bench_writer_files)
        docstrings = (
            _docstring_nodes(ctx.tree) if not bench_exempt else set()
        )
        for node in ast.walk(ctx.tree):
            if not timing_exempt:
                if isinstance(node, ast.ImportFrom):
                    yield from self._check_import_from(ctx, node)
                elif isinstance(node, ast.Attribute):
                    yield from self._check_attribute(ctx, node)
            if not profiling_exempt:
                yield from self._check_profiling(ctx, node)
            if not bench_exempt:
                yield from self._check_bench_literal(ctx, node, docstrings)

    def _check_import_from(
        self, ctx: FileContext, node: ast.ImportFrom
    ) -> Iterator[Diagnostic]:
        if node.module != "time":
            return
        for alias in node.names:
            if alias.name in _CLOCK_READS:
                yield self.diag(
                    ctx,
                    node,
                    f"import of time.{alias.name} hides a clock read behind "
                    f"a bare name; use repro.obs.clock instead",
                )

    def _check_attribute(
        self, ctx: FileContext, node: ast.Attribute
    ) -> Iterator[Diagnostic]:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "time"
            and node.attr in _CLOCK_READS
        ):
            yield self.diag(
                ctx,
                node,
                f"bare time.{node.attr} bypasses the obs layer; time blocks "
                f"with obs.span(...) or read repro.obs.clock.monotonic",
            )

    def _check_profiling(
        self, ctx: FileContext, node: ast.AST
    ) -> Iterator[Diagnostic]:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            module = getattr(node, "module", None)
            names = [a.name for a in node.names]
            if module == "tracemalloc" or "tracemalloc" in names or (
                module is not None and module.startswith("tracemalloc.")
            ) or any(n.startswith("tracemalloc.") for n in names):
                yield self.diag(
                    ctx,
                    node,
                    "ad-hoc tracemalloc use outside the profiler seam; "
                    "allocation profiling goes through --profile / "
                    "repro.obs.profile",
                )
        elif isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "sys"
                and node.attr == "_current_frames"
            ):
                yield self.diag(
                    ctx,
                    node,
                    "sys._current_frames outside the profiler seam; stack "
                    "sampling goes through --profile / repro.obs.profile",
                )

    def _check_bench_literal(
        self, ctx: FileContext, node: ast.AST, docstrings: Set[int]
    ) -> Iterator[Diagnostic]:
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and id(node) not in docstrings
            and _BENCH_ARTIFACT.search(node.value)
        ):
            yield self.diag(
                ctx,
                node,
                f"BENCH artifact name {node.value!r} outside the sanctioned "
                f"writer; go through repro.obs.bench (write_snapshot / "
                f"repro bench record)",
            )
