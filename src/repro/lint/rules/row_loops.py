"""``row-loop``: analysis code must not iterate tables row by row.

The columnar engine (``tables/kernels.py``) factorizes group keys and
reduces sorted runs in C; a Python ``for`` over ``.values`` arrays,
``.iter_rows()`` or ``range(t.n_rows)`` silently reintroduces the
interpreter into the per-test hot path.  This rule flags those shapes in
``repro/analysis/`` — the package that runs once per row of a synthetic
dataset that scales to millions of tests.

Flagged iterables (directly, or nested inside ``zip``/``enumerate``):

* ``x.iter_rows()`` — per-row dict materialisation;
* ``range(x.n_rows)`` — indexed row loops;
* a bare ``x.values`` attribute — element-wise iteration over a decoded
  column (``d.values()`` method calls, i.e. dicts, never match).

Loops that are genuinely per-group or per-distinct-value (over a
dictionary ``pool``, ``fact.n_groups``, aggregate tables a few rows long)
are either not matched or carry an inline suppression with a short
justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Tuple

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import Rule, register

__all__ = ["RowLoopRule"]

#: Packages where per-row Python loops are a finding.
_HOT_PACKAGES = ("repro/analysis/",)

#: Wrappers looked through when inspecting a loop's iterable.
_TRANSPARENT_CALLS = frozenset({"zip", "enumerate", "reversed", "sorted"})


def _row_iterable_reason(node: ast.AST) -> Optional[Tuple[ast.AST, str]]:
    """(offending node, reason) if ``node`` yields one element per table row."""
    # x.iter_rows(...)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "iter_rows"
    ):
        return node, "iterates .iter_rows() (one dict per row)"
    # range(x.n_rows)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
        and any(
            isinstance(arg, ast.Attribute) and arg.attr == "n_rows"
            for arg in node.args
        )
    ):
        return node, "loops over range(...n_rows) (one index per row)"
    # a bare `.values` attribute — the Column/ndarray property, never the
    # dict method (that would be a Call)
    if isinstance(node, ast.Attribute) and node.attr == "values":
        return node, "iterates a .values array element-wise"
    # zip(a.values, b.values) / enumerate(col.values) / ...
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _TRANSPARENT_CALLS
    ):
        for arg in node.args:
            found = _row_iterable_reason(arg)
            if found is not None:
                return found
    return None


@register
class RowLoopRule(Rule):
    id = "row-loop"
    severity = Severity.ERROR
    description = (
        "per-row Python loop in analysis/ (.values / .iter_rows() / "
        "range(n_rows)); use tables.kernels or zip(col.to_list())"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if not ctx.in_package(*_HOT_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iter(ctx, node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    yield from self._check_iter(ctx, gen.iter)

    def _check_iter(self, ctx: FileContext, iter_node: ast.AST) -> Iterator[Diagnostic]:
        found = _row_iterable_reason(iter_node)
        if found is None:
            return
        offender, reason = found
        yield self.diag(
            ctx,
            offender,
            f"{reason}; vectorize with tables.kernels (factorize/segment "
            f"reduce) or iterate column lists via zip(col.to_list())",
        )
