"""Inline ``# repro-lint: disable=...`` suppression comments.

Syntax
------
``# repro-lint: disable=rule-a,rule-b``
    As a trailing comment: suppresses those rules on that physical line.
    On a line of its own: suppresses those rules on the *next* line.
``# repro-lint: disable-file=rule-a``
    Anywhere in the file: suppresses those rules for the whole file.
``all`` is accepted in place of a rule list and disables every rule.

Comments are found with :mod:`tokenize`, so a ``#`` inside a string literal
never triggers a (false) suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

__all__ = ["Suppressions", "parse_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_\-, ]+)"
)


@dataclass
class Suppressions:
    """Which rules are switched off where, for one file."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    whole_file: Set[str] = field(default_factory=set)

    def is_suppressed(self, rule: str, line: int) -> bool:
        for ruleset in (self.whole_file, self.by_line.get(line, ())):
            if rule in ruleset or "all" in ruleset:
                return True
        return False


def _parse_rules(raw: str) -> FrozenSet[str]:
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


def parse_suppressions(source: str) -> Suppressions:
    """Extract every suppression directive from one file's source."""
    result = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # The engine only lints files that already parsed with ast, so a
        # tokenize failure here is a pathological edge; treat as "no
        # directives" rather than crashing the run.
        return result
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(tok.string)
        if not match:
            continue
        kind, raw_rules = match.groups()
        rules = _parse_rules(raw_rules)
        if not rules:
            continue
        if kind == "disable-file":
            result.whole_file |= rules
            continue
        line = tok.start[0]
        own_line = tok.line[: tok.start[1]].strip() == ""
        target = line + 1 if own_line else line
        result.by_line.setdefault(target, set()).update(rules)
    return result
