"""The lint engine: walk files, run rules, apply suppressions and baseline.

Two passes share this entry point.  The per-file rule pass runs every
registered rule over each file independently — embarrassingly parallel, so
``jobs > 1`` fans it out across a forked process pool (results are merged
and re-sorted, so diagnostic order is identical at any worker count).  The
optional whole-program flow pass (``flow=True``) runs afterwards over the
same file list and feeds its findings through the same suppression,
baseline, and fingerprint machinery.
"""

from __future__ import annotations

import ast
import multiprocessing
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.context import FileContext, LintConfig
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import Rule, build_rules
from repro.lint.suppressions import parse_suppressions
from repro.util.errors import LintError

__all__ = [
    "EXIT_LINT_FINDINGS",
    "LintRun",
    "changed_python_files",
    "iter_python_files",
    "lint_paths",
]

#: Exit code of ``repro lint`` when findings above the baseline remain.
EXIT_LINT_FINDINGS = 5

#: Rule id used for files the parser rejects (not a registered rule: it can
#: be suppressed or baselined like any other, but never disabled).
PARSE_ERROR_RULE = "parse-error"


@dataclass
class LintRun:
    """Everything one lint invocation produced."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    new: List[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    rule_ids: List[str] = field(default_factory=list)
    baseline_size: int = 0
    jobs: int = 1
    #: populated when the whole-program pass ran: the effects.json "summary"
    #: block, and the full FlowResult for callers that want the report/graph.
    flow_summary: Optional[Dict[str, Any]] = None
    flow_result: Optional[Any] = None

    @property
    def exit_code(self) -> int:
        return EXIT_LINT_FINDINGS if self.new else 0

    @property
    def suppressed_by_baseline(self) -> int:
        return len(self.diagnostics) - len(self.new)


def iter_python_files(paths: Sequence) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        elif not path.exists():
            raise LintError(f"no such file or directory: {path}")
        else:
            candidates = []
        for c in candidates:
            if "__pycache__" in c.parts:
                continue
            seen[c.resolve()] = c
    return sorted(seen.values())


def _relpath(path: Path, root: Optional[Path]) -> str:
    resolved = path.resolve()
    for base in ([root.resolve()] if root else []) + [Path.cwd()]:
        try:
            return resolved.relative_to(base).as_posix()
        except ValueError:
            continue
    return resolved.as_posix()


def lint_file(
    path: Path,
    config: LintConfig,
    rules: Sequence[Rule],
    root: Optional[Path] = None,
) -> List[Diagnostic]:
    """Run every rule over one file, honouring inline suppressions."""
    relpath = _relpath(path, root)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule=PARSE_ERROR_RULE,
                severity=Severity.ERROR,
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = FileContext(path, relpath, source, tree, config)
    suppressions = parse_suppressions(source)
    findings: List[Diagnostic] = []
    for rule in rules:
        for diag in rule.check(ctx):
            if not suppressions.is_suppressed(diag.rule, diag.line):
                findings.append(diag)
    return findings


def changed_python_files(root: Optional[Path] = None) -> List[Path]:
    """The .py files git considers changed: modified, staged, or untracked.

    Backs ``repro lint --changed-only``.  Deleted files are naturally
    excluded (they no longer exist on disk).  Raises :class:`LintError`
    when git is unavailable or the directory is not a work tree.
    """
    base = (root or Path.cwd()).resolve()
    commands = (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "diff", "--name-only", "--cached"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    names: set = set()
    for cmd in commands:
        try:
            proc = subprocess.run(
                cmd, cwd=base, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            raise LintError(
                f"--changed-only needs a git work tree ({' '.join(cmd)} "
                f"failed in {base})"
            ) from exc
        names.update(line.strip() for line in proc.stdout.splitlines())
    return sorted(
        base / name
        for name in names
        if name.endswith(".py") and (base / name).is_file()
    )


# Forked workers inherit their rule set and config through this module-level
# slot (filled by the pool initializer) instead of re-pickling them per task.
_WORKER: Dict[str, Any] = {}


def _pool_init(config: LintConfig, rule_ids: Optional[Sequence[str]],
               root: Optional[Path]) -> None:
    _WORKER["config"] = config
    _WORKER["rules"] = build_rules(rule_ids)
    _WORKER["root"] = root


def _pool_lint_one(path_str: str) -> List[Diagnostic]:
    return lint_file(
        Path(path_str), _WORKER["config"], _WORKER["rules"],
        root=_WORKER["root"],
    )


def _lint_files_parallel(
    files: Sequence[Path],
    config: LintConfig,
    rule_ids: Optional[Sequence[str]],
    root: Optional[Path],
    jobs: int,
) -> List[Diagnostic]:
    """Fan the per-file pass across a forked pool; order-stable by design.

    ``pool.map`` returns results in input order and the caller re-sorts by
    :meth:`Diagnostic.sort_key`, so output is bit-identical to a serial run
    at any worker count.
    """
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(
        processes=jobs,
        initializer=_pool_init,
        initargs=(config, rule_ids, root),
    ) as pool:
        per_file = pool.map(_pool_lint_one, [str(p) for p in files])
    return [diag for file_diags in per_file for diag in file_diags]


def lint_paths(
    paths: Sequence,
    config: Optional[LintConfig] = None,
    rule_ids: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    root: Optional[Path] = None,
    jobs: int = 1,
    flow: bool = False,
    flow_cache: Optional[Path] = None,
) -> LintRun:
    """Lint files/directories and classify findings against the baseline.

    ``jobs`` > 1 runs the per-file rule pass in a forked process pool
    (``jobs=0`` means one worker per CPU); diagnostics are deterministic
    regardless.  ``flow=True`` additionally runs the whole-program pass
    (stage contracts, kernel purity) over the same files, with
    ``flow_cache`` enabling its content-hash summary cache.
    """
    config = config or LintConfig()
    rules = build_rules(rule_ids)
    baseline = baseline or Baseline()
    if jobs == 0:
        jobs = multiprocessing.cpu_count()
    run = LintRun(
        rule_ids=[r.id for r in rules],
        baseline_size=len(baseline),
        jobs=max(jobs, 1),
    )
    files = iter_python_files(paths)
    run.files_checked = len(files)
    if run.jobs > 1 and len(files) > 1 and "fork" in (
        multiprocessing.get_all_start_methods()
    ):
        run.diagnostics.extend(
            _lint_files_parallel(files, config, rule_ids, root, run.jobs)
        )
    else:
        for path in files:
            run.diagnostics.extend(lint_file(path, config, rules, root=root))
    if flow:
        # Imported lazily: the flow package imports engine helpers back.
        from repro.lint.flow import analyze_paths

        result = analyze_paths(paths, root=root, cache_path=flow_cache)
        run.diagnostics.extend(result.diagnostics)
        run.flow_summary = dict(result.report.get("summary", {}))
        run.flow_result = result
    run.diagnostics.sort(key=Diagnostic.sort_key)
    run.new = baseline.new_findings(run.diagnostics)
    return run
