"""The lint engine: walk files, run rules, apply suppressions and baseline."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.context import FileContext, LintConfig
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import Rule, build_rules
from repro.lint.suppressions import parse_suppressions
from repro.util.errors import LintError

__all__ = ["EXIT_LINT_FINDINGS", "LintRun", "iter_python_files", "lint_paths"]

#: Exit code of ``repro lint`` when findings above the baseline remain.
EXIT_LINT_FINDINGS = 5

#: Rule id used for files the parser rejects (not a registered rule: it can
#: be suppressed or baselined like any other, but never disabled).
PARSE_ERROR_RULE = "parse-error"


@dataclass
class LintRun:
    """Everything one lint invocation produced."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    new: List[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    rule_ids: List[str] = field(default_factory=list)
    baseline_size: int = 0

    @property
    def exit_code(self) -> int:
        return EXIT_LINT_FINDINGS if self.new else 0

    @property
    def suppressed_by_baseline(self) -> int:
        return len(self.diagnostics) - len(self.new)


def iter_python_files(paths: Sequence) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        elif not path.exists():
            raise LintError(f"no such file or directory: {path}")
        else:
            candidates = []
        for c in candidates:
            if "__pycache__" in c.parts:
                continue
            seen[c.resolve()] = c
    return sorted(seen.values())


def _relpath(path: Path, root: Optional[Path]) -> str:
    resolved = path.resolve()
    for base in ([root.resolve()] if root else []) + [Path.cwd()]:
        try:
            return resolved.relative_to(base).as_posix()
        except ValueError:
            continue
    return resolved.as_posix()


def lint_file(
    path: Path,
    config: LintConfig,
    rules: Sequence[Rule],
    root: Optional[Path] = None,
) -> List[Diagnostic]:
    """Run every rule over one file, honouring inline suppressions."""
    relpath = _relpath(path, root)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule=PARSE_ERROR_RULE,
                severity=Severity.ERROR,
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = FileContext(path, relpath, source, tree, config)
    suppressions = parse_suppressions(source)
    findings: List[Diagnostic] = []
    for rule in rules:
        for diag in rule.check(ctx):
            if not suppressions.is_suppressed(diag.rule, diag.line):
                findings.append(diag)
    return findings


def lint_paths(
    paths: Sequence,
    config: Optional[LintConfig] = None,
    rule_ids: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    root: Optional[Path] = None,
) -> LintRun:
    """Lint files/directories and classify findings against the baseline."""
    config = config or LintConfig()
    rules = build_rules(rule_ids)
    baseline = baseline or Baseline()
    run = LintRun(rule_ids=[r.id for r in rules], baseline_size=len(baseline))
    for path in iter_python_files(paths):
        run.files_checked += 1
        run.diagnostics.extend(lint_file(path, config, rules, root=root))
    run.diagnostics.sort(key=Diagnostic.sort_key)
    run.new = baseline.new_findings(run.diagnostics)
    return run
