"""The rule base class and the global rule registry."""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Type

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.util.errors import LintError

__all__ = ["Rule", "all_rule_ids", "build_rules", "register"]

_REGISTRY: Dict[str, Type["Rule"]] = {}


class Rule:
    """One static check.

    Subclasses set the three class attributes and implement :meth:`check`,
    yielding a :class:`Diagnostic` per finding.  Register with::

        @register
        class MyRule(Rule):
            id = "my-rule"
            severity = Severity.ERROR
            description = "one line, shown by ``repro lint --list-rules``"
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def diag(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        """Build a diagnostic anchored at ``node``'s position."""
        return Diagnostic(
            rule=self.id,
            severity=severity or self.severity,
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry."""
    if not cls.id:
        raise LintError(f"rule class {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise LintError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def _ensure_rules_loaded() -> None:
    # Importing the package registers every built-in rule exactly once.
    import repro.lint.rules  # noqa: F401


def all_rule_ids() -> List[str]:
    """Sorted ids of every registered rule."""
    _ensure_rules_loaded()
    return sorted(_REGISTRY)


def build_rules(ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the requested rules (all of them by default)."""
    _ensure_rules_loaded()
    if ids is None:
        ids = sorted(_REGISTRY)
    unknown = sorted(set(ids) - set(_REGISTRY))
    if unknown:
        raise LintError(
            f"unknown rule ids {unknown}; available: {sorted(_REGISTRY)}"
        )
    return [_REGISTRY[i]() for i in ids]


def rule_catalogue() -> List[Rule]:
    """One instance of every rule, for ``--list-rules`` style output."""
    return build_rules()
