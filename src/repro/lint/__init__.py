"""``repro.lint`` — an AST-based static-analysis framework for this repo.

The pipeline's conventions (typed errors, seeded RNG, schema-declared column
names) were previously enforced only by review.  This package makes them
machine-checked: a rule registry over Python's ``ast`` module, per-rule
severity, file/line diagnostics, inline ``# repro-lint: disable=<rule>``
suppressions, and a checked-in baseline for grandfathered findings.

Entry points
------------
:func:`repro.lint.engine.lint_paths`  run rules over files/directories
:mod:`repro.lint.cli`                 the ``repro lint`` subcommand

See ``docs/LINT.md`` for the rule catalogue and how to add a rule.
"""

from repro.lint.baseline import Baseline
from repro.lint.context import FileContext, LintConfig
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import EXIT_LINT_FINDINGS, LintRun, lint_paths
from repro.lint.registry import Rule, all_rule_ids, build_rules, register

__all__ = [
    "Baseline",
    "Diagnostic",
    "EXIT_LINT_FINDINGS",
    "FileContext",
    "LintConfig",
    "LintRun",
    "Rule",
    "Severity",
    "all_rule_ids",
    "build_rules",
    "lint_paths",
    "register",
]
