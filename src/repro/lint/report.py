"""Render a :class:`LintRun` as human text or machine-readable JSON."""

from __future__ import annotations

import json
from typing import Dict

from repro.lint.engine import LintRun

__all__ = ["render_json", "render_text"]


def render_text(run: LintRun, verbose: bool = False) -> str:
    """The default terminal report: new findings, then a one-line summary."""
    lines = [d.format() for d in run.new]
    if verbose and run.suppressed_by_baseline:
        lines.append("")
        lines.append("baselined findings (not counted against the gate):")
        lines.extend(
            f"  {d.format()}" for d in run.diagnostics if d not in set(run.new)
        )
    summary = (
        f"{run.files_checked} files checked, {len(run.rule_ids)} rules: "
        f"{len(run.new)} new finding{'s' if len(run.new) != 1 else ''}"
    )
    if run.suppressed_by_baseline:
        summary += f" ({run.suppressed_by_baseline} baselined)"
    lines.append(summary)
    if run.flow_summary:
        fs = run.flow_summary
        lines.append(
            f"flow: {fs.get('functions', 0)} functions analyzed, "
            f"{fs.get('parallel_safe', 0)} parallel-safe, "
            f"{fs.get('stage_sites', 0)} stage sites, "
            f"{fs.get('contract_findings', 0)} flow finding"
            f"{'s' if fs.get('contract_findings', 0) != 1 else ''}"
        )
    return "\n".join(lines)


def render_json(run: LintRun) -> str:
    """A stable JSON document for tooling (``repro lint --format json``)."""
    payload: Dict[str, object] = {
        "files_checked": run.files_checked,
        "rules": list(run.rule_ids),
        "baseline_size": run.baseline_size,
        "counts": {
            "total": len(run.diagnostics),
            "new": len(run.new),
            "baselined": run.suppressed_by_baseline,
        },
        "findings": [d.to_json() for d in run.new],
        "exit_code": run.exit_code,
    }
    if run.flow_summary is not None:
        payload["flow"] = dict(run.flow_summary)
    return json.dumps(payload, indent=2, sort_keys=True)
