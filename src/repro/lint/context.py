"""Per-run configuration and per-file context handed to rules."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Mapping, Tuple

__all__ = ["FileContext", "LintConfig"]

#: Modules whose import anywhere in ``src/repro`` is a finding, with the
#: reason shown in the diagnostic.
DEFAULT_FORBIDDEN_IMPORTS: Mapping[str, str] = {
    "pandas": "use repro.tables instead of pandas",
    "requests": "the reproduction must not touch the network",
    "urllib": "the reproduction must not touch the network",
    "http": "the reproduction must not touch the network",
    "socket": "the reproduction must not touch the network",
    "ftplib": "the reproduction must not touch the network",
    "smtplib": "the reproduction must not touch the network",
    "telnetlib": "the reproduction must not touch the network",
    "xmlrpc": "the reproduction must not touch the network",
    "aiohttp": "the reproduction must not touch the network",
    "httpx": "the reproduction must not touch the network",
}

#: The network modules within :data:`DEFAULT_FORBIDDEN_IMPORTS` — the
#: subset the sanctioned network seam may import.  pandas stays
#: forbidden everywhere.
NETWORK_IMPORTS: FrozenSet[str] = frozenset(
    {
        "requests", "urllib", "http", "socket", "ftplib", "smtplib",
        "telnetlib", "xmlrpc", "aiohttp", "httpx",
    }
)

#: Path fragments allowed to import network modules: the live health
#: service (the repo's one sanctioned network seam — see
#: ``repro.lint.flow.effects.SEAMS``) and the benchmarks that load-test
#: it.  The flow lint's ``unsanctioned-network`` rule enforces the same
#: boundary at the call-graph level.
DEFAULT_NETWORK_ALLOWED: Tuple[str, ...] = ("repro/obs/live/", "benchmarks/")

#: Files (posix-path suffixes) where direct RNG construction is the point.
DEFAULT_RNG_ALLOWED: Tuple[str, ...] = ("repro/util/rng.py",)

#: Path fragments where reading wall/monotonic clocks directly is the point:
#: the obs clock shim wraps them once, and benchmarks time real work.
DEFAULT_TIMING_ALLOWED: Tuple[str, ...] = ("repro/obs/", "benchmarks/")

#: Path fragments where the raw profiling machinery (``tracemalloc``,
#: ``sys._current_frames``) is the implementation: the profiler package
#: itself, and benchmarks measuring its overhead.  Everyone else profiles
#: through ``--profile`` / ``repro.obs.profile``.
DEFAULT_PROFILING_ALLOWED: Tuple[str, ...] = (
    "repro/obs/profile/", "benchmarks/",
)

#: The one file allowed to name ``BENCH_*.json`` artifacts in code: the
#: sanctioned snapshot/history writer.  Everyone else goes through it, so
#: ad-hoc baseline files cannot reappear outside the registry.
DEFAULT_BENCH_WRITER_FILES: Tuple[str, ...] = ("repro/obs/bench.py",)

#: Files whose table column names are synthetic by design (the bench micro
#: suite builds throwaway tables), so the schema-columns cross-reference
#: against the NDT/trace schema does not apply.
DEFAULT_SCHEMA_EXEMPT_FILES: Tuple[str, ...] = ("repro/obs/bench.py",)

#: Where unprotected file writes are the implementation, not a violation:
#: the storage layer itself is the one place allowed to call bare
#: ``open(..., "w")`` — everyone else commits through it.
DEFAULT_STORAGE_WRITER_FILES: Tuple[str, ...] = ("repro/storage/",)

#: Subpackages where raising builtin ``ValueError``/``TypeError``/``KeyError``
#: is a finding even though the repo-wide convention allows them for argument
#: validation: these packages have dedicated typed errors (``AnalysisError``,
#: ``PipelineError``) that run reports and exit codes depend on.
DEFAULT_TYPED_ERROR_STRICT: Tuple[str, ...] = (
    "repro/analysis/",
    "repro/runtime/",
)


def _default_known_columns() -> FrozenSet[str]:
    from repro.tables.schema import known_columns

    return known_columns()


def _default_aggregators() -> FrozenSet[str]:
    from repro.tables.groupby import AGGREGATORS

    return frozenset(AGGREGATORS)


@dataclass(frozen=True)
class LintConfig:
    """Knobs shared by every rule in one lint run."""

    known_columns: FrozenSet[str] = field(default_factory=_default_known_columns)
    aggregators: FrozenSet[str] = field(default_factory=_default_aggregators)
    forbidden_imports: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_FORBIDDEN_IMPORTS)
    )
    network_allowed_packages: Tuple[str, ...] = DEFAULT_NETWORK_ALLOWED
    rng_allowed_files: Tuple[str, ...] = DEFAULT_RNG_ALLOWED
    typed_error_strict_packages: Tuple[str, ...] = DEFAULT_TYPED_ERROR_STRICT
    timing_allowed_packages: Tuple[str, ...] = DEFAULT_TIMING_ALLOWED
    profiling_allowed_packages: Tuple[str, ...] = DEFAULT_PROFILING_ALLOWED
    bench_writer_files: Tuple[str, ...] = DEFAULT_BENCH_WRITER_FILES
    schema_exempt_files: Tuple[str, ...] = DEFAULT_SCHEMA_EXEMPT_FILES
    storage_writer_files: Tuple[str, ...] = DEFAULT_STORAGE_WRITER_FILES


class FileContext:
    """One parsed source file plus everything a rule needs to inspect it."""

    def __init__(
        self,
        path: Path,
        relpath: str,
        source: str,
        tree: ast.AST,
        config: LintConfig,
    ):
        self.path = path
        self.relpath = relpath  # repo-relative posix path used in diagnostics
        self.source = source
        self.tree = tree
        self.config = config
        self._parents: Dict[int, ast.AST] = {}

    def matches(self, *suffixes: str) -> bool:
        """Whether this file's relpath ends with any of the given suffixes."""
        return any(self.relpath.endswith(s) for s in suffixes)

    def in_package(self, *prefixes: str) -> bool:
        """Whether this file lives under any of the given path fragments."""
        return any(p in self.relpath for p in prefixes)

    def enclosing_function(self, node: ast.AST):
        """The innermost function/lambda containing ``node``, or None."""
        if not self._parents:
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[id(child)] = parent
        current = self._parents.get(id(node))
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return current
            current = self._parents.get(id(current))
        return None
