"""The checked-in baseline of grandfathered findings.

A baseline entry is the fingerprint of one known finding (rule + path +
message, no line numbers so unrelated edits don't churn the file).  The lint
gate fails only on findings *not* in the baseline; shrinking the baseline to
empty is the goal, growing it needs an explicit ``--write-baseline``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Sequence

from repro import storage
from repro.lint.diagnostics import Diagnostic
from repro.util.errors import LintError

__all__ = ["Baseline", "DEFAULT_BASELINE_PATH"]

DEFAULT_BASELINE_PATH = "lint-baseline.json"
_VERSION = 1


class Baseline:
    """A set of grandfathered finding fingerprints, JSON round-trippable."""

    def __init__(self, entries: Iterable[dict] = ()):
        self._entries: List[dict] = []
        self._fingerprints = set()
        for e in entries:
            self._add(e)

    def _add(self, entry: dict) -> None:
        missing = {"rule", "path", "message"} - set(entry)
        if missing:
            raise LintError(f"baseline entry {entry!r} lacks keys {sorted(missing)}")
        fp = f"{entry['rule']}::{entry['path']}::{entry['message']}"
        if fp not in self._fingerprints:
            self._fingerprints.add(fp)
            self._entries.append(
                {"rule": entry["rule"], "path": entry["path"], "message": entry["message"]}
            )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, diagnostic: Diagnostic) -> bool:
        return diagnostic.fingerprint() in self._fingerprints

    def new_findings(self, diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
        """The subset of ``diagnostics`` not grandfathered by this baseline."""
        return [d for d in diagnostics if d not in self]

    @classmethod
    def from_diagnostics(cls, diagnostics: Sequence[Diagnostic]) -> "Baseline":
        return cls(
            {"rule": d.rule, "path": d.path, "message": d.message}
            for d in sorted(diagnostics, key=Diagnostic.sort_key)
        )

    @classmethod
    def load(cls, path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise LintError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) or "findings" not in payload:
            raise LintError(f"baseline {path} is not a {{version, findings}} object")
        version = payload.get("version")
        if version != _VERSION:
            raise LintError(
                f"baseline {path} has version {version!r}, expected {_VERSION}"
            )
        findings = payload["findings"]
        if not isinstance(findings, list):
            raise LintError(f"baseline {path}: 'findings' must be a list")
        return cls(findings)

    def save(self, path) -> None:
        path = Path(path)
        payload = {
            "version": _VERSION,
            "findings": sorted(
                self._entries, key=lambda e: (e["path"], e["rule"], e["message"])
            ),
        }
        storage.commit_text(
            str(path),
            json.dumps(payload, indent=2) + "\n",
            label="lint.baseline",
        )
