"""Diagnostics: what a lint rule reports, and how it prints."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

__all__ = ["Diagnostic", "Severity"]


class Severity(enum.Enum):
    """How bad a finding is; orderable (``ERROR > WARNING``)."""

    WARNING = "warning"
    ERROR = "error"

    def __lt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        order = [Severity.WARNING, Severity.ERROR]
        return order.index(self) < order.index(other)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation at a file/line/column position."""

    rule: str
    severity: Severity
    path: str  # repo-relative posix path
    line: int  # 1-based
    col: int  # 0-based, as reported by ast
    message: str

    def fingerprint(self) -> str:
        """Identity used for baseline matching.

        Deliberately excludes the line/column so unrelated edits that shift
        code do not churn the baseline file.
        """
        return f"{self.rule}::{self.path}::{self.message}"

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.value} [{self.rule}] {self.message}"
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule, self.message)
