"""The ``repro lint`` subcommand.

Exit codes: 0 clean (or every finding baselined), 5 findings above the
baseline, 1 framework error (bad baseline file, unknown rule id).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import DEFAULT_BASELINE_PATH, Baseline
from repro.lint.engine import lint_paths
from repro.lint.registry import build_rules
from repro.lint.report import render_json, render_text

__all__ = ["configure_parser", "cmd_lint"]


def configure_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``lint`` subparser to the main CLI."""
    lint = sub.add_parser(
        "lint",
        help="run the repo's static-analysis rules (exit 5 on new findings)",
        description=(
            "AST-based static analysis: schema-aware column checking, "
            "seeded-RNG and typed-error enforcement, forbidden imports, "
            "float equality, mutable defaults.  See docs/LINT.md."
        ),
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="diagnostic output format (default: %(default)s)",
    )
    lint.add_argument(
        "--baseline", default=DEFAULT_BASELINE_PATH,
        help="baseline file of grandfathered findings (default: %(default)s)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file; report every finding as new",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="write all current findings to the baseline file and exit 0",
    )
    lint.add_argument(
        "--rules", default=None, metavar="ID[,ID...]",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.add_argument(
        "--verbose", action="store_true",
        help="also show baselined findings in text output",
    )


def _selected_rules(spec: Optional[str]) -> Optional[List[str]]:
    if spec is None:
        return None
    return [part.strip() for part in spec.split(",") if part.strip()]


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in build_rules():
            print(f"{rule.id:18s} {rule.severity.value:7s} {rule.description}")
        return 0
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        baseline = Baseline.load(args.baseline)
    run = lint_paths(
        args.paths,
        rule_ids=_selected_rules(args.rules),
        baseline=baseline,
        root=Path.cwd(),
    )
    if args.write_baseline:
        Baseline.from_diagnostics(run.diagnostics).save(args.baseline)
        print(
            f"wrote {len(run.diagnostics)} finding(s) to {args.baseline}; "
            f"lint now passes until new findings appear"
        )
        return 0
    if args.format == "json":
        print(render_json(run))
    else:
        print(render_text(run, verbose=args.verbose))
    return run.exit_code
