"""The ``repro lint`` subcommand.

Exit codes: 0 clean (or every finding baselined), 5 findings above the
baseline, 1 framework error (bad baseline file, unknown rule id).

Besides the per-file rule pass this front-end drives the whole-program
flow pass (``--flow``), the forked per-file pool (``--jobs``), git-aware
incremental linting (``--changed-only``), and the effect-explanation
view (``repro lint effects <function>``).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import DEFAULT_BASELINE_PATH, Baseline
from repro.lint.engine import changed_python_files, lint_paths
from repro.lint.registry import build_rules
from repro.lint.report import render_json, render_text

__all__ = ["configure_parser", "cmd_lint"]

#: Where ``--flow`` drops the machine-readable effect certificate.
DEFAULT_EFFECTS_OUT = "results/effects.json"


def configure_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``lint`` subparser to the main CLI."""
    lint = sub.add_parser(
        "lint",
        help="run the repo's static-analysis rules (exit 5 on new findings)",
        description=(
            "AST-based static analysis: schema-aware column checking, "
            "seeded-RNG and typed-error enforcement, forbidden imports, "
            "float equality, mutable defaults.  See docs/LINT.md."
        ),
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help=(
            "files or directories to lint (default: src); or "
            "'effects <function>' to explain one function's inferred effects"
        ),
    )
    lint.add_argument(
        "--flow", action="store_true",
        help=(
            "also run the whole-program flow pass: stage-contract "
            "verification, kernel purity, effects.json"
        ),
    )
    lint.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help=(
            "worker processes for the per-file rule pass "
            "(0 = one per CPU; default: %(default)s)"
        ),
    )
    lint.add_argument(
        "--changed-only", action="store_true",
        help="lint only .py files git reports as modified/staged/untracked",
    )
    lint.add_argument(
        "--effects-out", default=DEFAULT_EFFECTS_OUT, metavar="PATH",
        help=(
            "where --flow writes the schema-validated effects report "
            "(default: %(default)s)"
        ),
    )
    lint.add_argument(
        "--no-flow-cache", action="store_true",
        help="disable the flow pass's content-hash summary cache",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="diagnostic output format (default: %(default)s)",
    )
    lint.add_argument(
        "--baseline", default=DEFAULT_BASELINE_PATH,
        help="baseline file of grandfathered findings (default: %(default)s)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file; report every finding as new",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="write all current findings to the baseline file and exit 0",
    )
    lint.add_argument(
        "--rules", default=None, metavar="ID[,ID...]",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.add_argument(
        "--verbose", action="store_true",
        help="also show baselined findings in text output",
    )


def _selected_rules(spec: Optional[str]) -> Optional[List[str]]:
    if spec is None:
        return None
    return [part.strip() for part in spec.split(",") if part.strip()]


def _cmd_effects(args: argparse.Namespace) -> int:
    """``repro lint effects <function>`` — explain one function's effects."""
    from repro.lint.flow import analyze_paths
    from repro.util.errors import LintError

    if len(args.paths) < 2:
        raise LintError(
            "usage: repro lint effects <function> [paths...] — name the "
            "function to explain (qualname or bare name)"
        )
    needle = args.paths[1]
    paths = args.paths[2:] or ["src"]
    result = analyze_paths(
        paths, root=Path.cwd(), cache_path=_flow_cache_path(args)
    )
    rendered = result.explain(needle)
    print(rendered)
    return 0 if result.analysis.project.find_function(needle) else 1


def _flow_cache_path(args: argparse.Namespace) -> Optional[Path]:
    if getattr(args, "no_flow_cache", False):
        return None
    from repro.lint.flow.cache import DEFAULT_CACHE_PATH

    return Path(DEFAULT_CACHE_PATH)


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in build_rules():
            print(f"{rule.id:18s} {rule.severity.value:7s} {rule.description}")
        return 0
    if args.paths and args.paths[0] == "effects":
        return _cmd_effects(args)
    paths = list(args.paths)
    if args.changed_only:
        # Restrict to changed files under the requested (or default) lint
        # roots: tests and benchmarks are not part of the gate, and a
        # changed-file run must never flag more than a full run would.
        roots = [Path.cwd() / p for p in paths]
        paths = [
            f
            for f in changed_python_files(Path.cwd())
            if any(f == r or r in f.parents for r in roots)
        ]
        if not paths:
            print("0 files changed; nothing to lint")
            return 0
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        baseline = Baseline.load(args.baseline)
    run = lint_paths(
        paths,
        rule_ids=_selected_rules(args.rules),
        baseline=baseline,
        root=Path.cwd(),
        jobs=args.jobs,
        flow=args.flow,
        flow_cache=_flow_cache_path(args) if args.flow else None,
    )
    if args.write_baseline:
        Baseline.from_diagnostics(run.diagnostics).save(args.baseline)
        print(
            f"wrote {len(run.diagnostics)} finding(s) to {args.baseline}; "
            f"lint now passes until new findings appear"
        )
        return 0
    if args.flow and run.flow_result is not None and args.effects_out:
        from repro.lint.flow.report import write_effects_report

        write_effects_report(run.flow_result.report, args.effects_out)
    if args.format == "json":
        print(render_json(run))
    else:
        print(render_text(run, verbose=args.verbose))
    return run.exit_code
