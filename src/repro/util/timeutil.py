"""Calendar-day handling for the measurement windows.

The paper's unit of aggregation is the calendar day.  We represent days as
integer *ordinals* (``datetime.date.toordinal``) wrapped in a tiny value type
so that tables can store them in numpy integer columns while analyses can
still render ISO dates.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Iterator, List, Union

__all__ = ["Day", "DayGrid", "Period", "day_range", "parse_day"]

DayLike = Union["Day", _dt.date, str, int]


@dataclass(frozen=True, order=True)
class Day:
    """A calendar day, stored as a proleptic-Gregorian ordinal."""

    ordinal: int

    @classmethod
    def of(cls, value: DayLike) -> "Day":
        """Coerce a date, ISO string, ordinal int, or Day into a Day."""
        if isinstance(value, Day):
            return value
        if isinstance(value, _dt.datetime):
            return cls(value.date().toordinal())
        if isinstance(value, _dt.date):
            return cls(value.toordinal())
        if isinstance(value, str):
            return cls(_dt.date.fromisoformat(value).toordinal())
        if isinstance(value, int):
            if value <= 0:
                raise ValueError(f"day ordinal must be positive, got {value}")
            return cls(value)
        raise TypeError(f"cannot interpret {type(value).__name__} as a Day")

    def date(self) -> _dt.date:
        """The day as a ``datetime.date``."""
        return _dt.date.fromordinal(self.ordinal)

    def iso(self) -> str:
        """ISO-8601 string, e.g. ``'2022-02-24'``."""
        return self.date().isoformat()

    def plus(self, days: int) -> "Day":
        """The day ``days`` after (or before, if negative) this one."""
        return Day(self.ordinal + days)

    def __sub__(self, other: "Day") -> int:
        return self.ordinal - other.ordinal

    def weekday(self) -> int:
        """Monday == 0 ... Sunday == 6."""
        return self.date().weekday()

    def week_start(self) -> "Day":
        """The Monday of this day's ISO week (for weekly aggregation)."""
        return Day(self.ordinal - self.weekday())

    def __str__(self) -> str:
        return self.iso()


def parse_day(value: DayLike) -> Day:
    """Module-level alias for :meth:`Day.of`."""
    return Day.of(value)


def day_range(start: DayLike, end: DayLike) -> List[Day]:
    """All days from ``start`` to ``end`` inclusive."""
    lo, hi = Day.of(start), Day.of(end)
    if hi < lo:
        raise ValueError(f"end day {hi.iso()} precedes start day {lo.iso()}")
    return [Day(o) for o in range(lo.ordinal, hi.ordinal + 1)]


@dataclass(frozen=True)
class Period:
    """A named, inclusive span of days (e.g. the paper's *prewar* window)."""

    name: str
    start: Day
    end: Day

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"period {self.name!r}: end {self.end.iso()} precedes "
                f"start {self.start.iso()}"
            )

    @classmethod
    def of(cls, name: str, start: DayLike, end: DayLike) -> "Period":
        return cls(name, Day.of(start), Day.of(end))

    @property
    def n_days(self) -> int:
        return self.end - self.start + 1

    def contains(self, day: DayLike) -> bool:
        d = Day.of(day)
        return self.start <= d <= self.end

    def days(self) -> List[Day]:
        return day_range(self.start, self.end)

    def ordinals(self) -> range:
        """The period as a ``range`` of day ordinals (handy for numpy masks)."""
        return range(self.start.ordinal, self.end.ordinal + 1)

    def __iter__(self) -> Iterator[Day]:
        return iter(self.days())

    def __str__(self) -> str:
        return f"{self.name} [{self.start.iso()} .. {self.end.iso()}]"


class DayGrid:
    """A fixed, contiguous day axis with fast day↔index mapping.

    Time-series aggregation (Figures 2, 4, 6) buckets tests onto this grid.
    """

    def __init__(self, start: DayLike, end: DayLike):
        self.start = Day.of(start)
        self.end = Day.of(end)
        if self.end < self.start:
            raise ValueError("DayGrid end precedes start")

    def __len__(self) -> int:
        return self.end - self.start + 1

    def index_of(self, day: DayLike) -> int:
        d = Day.of(day)
        idx = d - self.start
        if not 0 <= idx < len(self):
            raise ValueError(f"{d.iso()} outside grid {self.start.iso()}..{self.end.iso()}")
        return idx

    def day_at(self, index: int) -> Day:
        if not 0 <= index < len(self):
            raise IndexError(f"grid index {index} out of range 0..{len(self) - 1}")
        return self.start.plus(index)

    def days(self) -> List[Day]:
        return day_range(self.start, self.end)

    def __iter__(self) -> Iterator[Day]:
        return iter(self.days())

    def __repr__(self) -> str:
        return f"DayGrid({self.start.iso()}..{self.end.iso()}, n={len(self)})"
