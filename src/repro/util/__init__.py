"""Shared low-level utilities: deterministic RNG streams, dates, units.

Everything in :mod:`repro` that needs randomness draws it from a
:class:`~repro.util.rng.RngHub` substream so that a single master seed
reproduces the entire synthetic dataset and every downstream analysis.
"""

from repro.util.errors import CalibrationError, DataError, ReproError, TopologyError
from repro.util.rng import RngHub
from repro.util.timeutil import Day, DayGrid, Period, day_range, parse_day
from repro.util.units import (
    bytes_to_megabits,
    mbps_to_bytes_per_sec,
    ms_to_seconds,
    seconds_to_ms,
)

__all__ = [
    "CalibrationError",
    "DataError",
    "Day",
    "DayGrid",
    "Period",
    "ReproError",
    "RngHub",
    "TopologyError",
    "bytes_to_megabits",
    "day_range",
    "mbps_to_bytes_per_sec",
    "ms_to_seconds",
    "parse_day",
    "seconds_to_ms",
]
