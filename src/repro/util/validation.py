"""Small argument-validation helpers.

These raise plain ``ValueError``/``TypeError`` (not :class:`ReproError`):
they signal caller bugs, not data/runtime conditions.
"""

from __future__ import annotations

from typing import Iterable, TypeVar

import numpy as np

T = TypeVar("T")

__all__ = ["check_fraction", "check_positive", "check_nonnegative", "check_member"]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it."""
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it."""
    if not np.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_member(name: str, value: T, allowed: Iterable[T]) -> T:
    """Require ``value`` to be one of ``allowed``; return it."""
    allowed = list(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value
