"""Deterministic, named random-number substreams.

The synthetic dataset is assembled by many independent components (arrival
processes, the damage model, the TCP model, geolocation noise, ...).  If they
all shared one ``numpy.random.Generator``, adding a draw in one component
would silently reshuffle every other component's output.  :class:`RngHub`
avoids that by deriving an independent generator per *name*: the stream for
``hub.stream("ndt.tcp")`` depends only on the master seed and the string
``"ndt.tcp"``.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngHub"]


class RngHub:
    """Factory of deterministic, independently seeded numpy generators.

    Parameters
    ----------
    seed:
        Master seed.  Two hubs with the same seed produce identical streams
        for identical names.

    Examples
    --------
    >>> hub = RngHub(7)
    >>> a = hub.stream("damage").integers(0, 100, 3)
    >>> b = RngHub(7).stream("damage").integers(0, 100, 3)
    >>> (a == b).all()
    True
    """

    def __init__(self, seed: int):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this hub was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object,
        so draws within one component advance a private stream.
        """
        if not name:
            raise ValueError("stream name must be a non-empty string")
        if name not in self._streams:
            self._streams[name] = np.random.Generator(
                np.random.PCG64(self._derive(name))
            )
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name``, at its initial state.

        Unlike :meth:`stream` this does not cache; every call restarts the
        substream.  Useful when a component must be re-runnable in isolation.
        """
        if not name:
            raise ValueError("stream name must be a non-empty string")
        return np.random.Generator(np.random.PCG64(self._derive(name)))

    def child(self, name: str) -> "RngHub":
        """Derive a sub-hub whose streams are independent of this hub's.

        Used when a component itself owns multiple sub-components (e.g. one
        hub per simulated year).
        """
        return RngHub(self._derive(name))

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self._seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")

    def __repr__(self) -> str:
        return f"RngHub(seed={self._seed}, streams={sorted(self._streams)})"
