"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one type at an API boundary without swallowing programming errors
(``TypeError``/``ValueError`` raised by argument validation deliberately do
*not* use this hierarchy).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DataError(ReproError):
    """A table, column, or dataset is malformed or used inconsistently."""


class TopologyError(ReproError):
    """The AS graph or IP layer is invalid (unknown AS, no route, ...)."""


class CalibrationError(ReproError):
    """Calibration targets are missing or internally inconsistent."""


class AnalysisError(ReproError):
    """An analysis step cannot proceed (empty period, missing column, ...)."""
