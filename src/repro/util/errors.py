"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one type at an API boundary without swallowing programming errors
(``TypeError``/``ValueError`` raised by argument validation deliberately do
*not* use this hierarchy).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DataError(ReproError):
    """A table, column, or dataset is malformed or used inconsistently."""


class TopologyError(ReproError):
    """The AS graph or IP layer is invalid (unknown AS, no route, ...)."""


class CalibrationError(ReproError):
    """Calibration targets are missing or internally inconsistent."""


class AnalysisError(ReproError):
    """An analysis step cannot proceed (empty period, missing column, ...)."""


class PipelineError(ReproError):
    """The staged pipeline runtime cannot orchestrate a run."""


class StageFailure(PipelineError):
    """A named pipeline stage exhausted its retries and gave up.

    Carries the stage name, attempt count, and the final cause so a run
    report (or an operator reading a log line) can tell *which* stage of
    *which* run died and why, without unpacking a raw traceback.
    """

    def __init__(self, stage: str, attempts: int, cause: BaseException):
        self.stage = stage
        self.attempts = attempts
        self.cause = cause
        plural = "s" if attempts != 1 else ""
        super().__init__(
            f"stage {stage!r} failed after {attempts} attempt{plural}: "
            f"{type(cause).__name__}: {cause}"
        )


class NumericsError(ReproError, ArithmeticError):
    """A numeric routine failed to converge or left its domain.

    Also derives from ``ArithmeticError`` so callers that treated the old
    untyped raises as arithmetic failures keep working unchanged.
    """


class LintError(ReproError):
    """The static-analysis framework cannot run (bad baseline, bad rule id)."""


class ValidationFailure(DataError):
    """Strict-mode ingest rejected a table because rows failed validation.

    ``report`` is the :class:`repro.tables.validate.ValidationReport` that
    describes every quarantined row.
    """

    def __init__(self, report):
        self.report = report
        super().__init__(
            f"validation of {report.name!r} failed: "
            f"{report.n_quarantined}/{report.n_input} rows quarantined "
            f"({report.top_reasons()})"
        )
