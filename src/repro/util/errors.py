"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one type at an API boundary without swallowing programming errors
(``TypeError``/``ValueError`` raised by argument validation deliberately do
*not* use this hierarchy).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DataError(ReproError):
    """A table, column, or dataset is malformed or used inconsistently."""


class TopologyError(ReproError):
    """The AS graph or IP layer is invalid (unknown AS, no route, ...)."""


class CalibrationError(ReproError):
    """Calibration targets are missing or internally inconsistent."""


class AnalysisError(ReproError):
    """An analysis step cannot proceed (empty period, missing column, ...)."""


class PipelineError(ReproError):
    """The staged pipeline runtime cannot orchestrate a run."""


class StageFailure(PipelineError):
    """A named pipeline stage exhausted its retries and gave up.

    Carries the stage name, attempt count, and the final cause so a run
    report (or an operator reading a log line) can tell *which* stage of
    *which* run died and why, without unpacking a raw traceback.

    ``attempt_durations`` / ``attempt_started`` record the elapsed
    seconds and the start offset (seconds since the first attempt began)
    of every failed attempt, in order — without them a run report could
    say a stage "failed after 3 attempts" but not how much wall time the
    retries burned or how backoff spaced them.
    """

    def __init__(
        self,
        stage: str,
        attempts: int,
        cause: BaseException,
        attempt_durations=(),
        attempt_started=(),
    ):
        self.stage = stage
        self.attempts = attempts
        self.cause = cause
        self.attempt_durations = tuple(attempt_durations)
        self.attempt_started = tuple(attempt_started)
        plural = "s" if attempts != 1 else ""
        detail = ""
        if self.attempt_durations:
            total = sum(self.attempt_durations)
            detail = f" over {total:.2f}s"
        super().__init__(
            f"stage {stage!r} failed after {attempts} attempt{plural}{detail}: "
            f"{type(cause).__name__}: {cause}"
        )

    def retry_latency_s(self) -> float:
        """Wall time from first attempt start to last attempt start.

        Zero when there was a single attempt or timing was not recorded.
        """
        if len(self.attempt_started) < 2:
            return 0.0
        return self.attempt_started[-1] - self.attempt_started[0]


class StorageError(ReproError):
    """The artifact storage layer cannot read or write an on-disk artifact.

    Raised for I/O failures on the sanctioned write path (temp-file
    creation, fsync, rename).  Transient injected faults (``EIO`` /
    ``ENOSPC`` from the chaos filesystem) surface as this type, so the
    runtime's retry machinery can declare it in ``retry_on``.
    """


class ArtifactCorruptError(StorageError):
    """An on-disk artifact failed integrity verification.

    Torn writes, truncation, and bit-rot are *detected*, never silently
    accepted: a framed artifact with a bad magic, a short payload, or a
    checksum mismatch raises this type.  ``path`` is the offending file
    and ``quarantined_to`` is where the storage layer moved it (``None``
    when quarantine was disabled or impossible).
    """

    def __init__(self, path, reason: str, quarantined_to=None):
        self.path = str(path)
        self.reason = reason
        self.quarantined_to = quarantined_to
        msg = f"corrupt artifact {self.path}: {reason}"
        if quarantined_to:
            msg += f" (quarantined to {quarantined_to})"
        super().__init__(msg)


class CheckpointCorruptError(ArtifactCorruptError, PipelineError):
    """Every generation of a stage checkpoint failed verification.

    Also derives from :class:`PipelineError` so callers that treated the
    old untyped "corrupt checkpoint" failures as pipeline errors keep
    working; the pipeline itself catches this type on the resume path and
    falls back to a clean re-run of the stage.
    """


class NumericsError(ReproError, ArithmeticError):
    """A numeric routine failed to converge or left its domain.

    Also derives from ``ArithmeticError`` so callers that treated the old
    untyped raises as arithmetic failures keep working unchanged.
    """


class LintError(ReproError):
    """The static-analysis framework cannot run (bad baseline, bad rule id)."""


class ValidationFailure(DataError):
    """Strict-mode ingest rejected a table because rows failed validation.

    ``report`` is the :class:`repro.tables.validate.ValidationReport` that
    describes every quarantined row.
    """

    def __init__(self, report):
        self.report = report
        super().__init__(
            f"validation of {report.name!r} failed: "
            f"{report.n_quarantined}/{report.n_input} rows quarantined "
            f"({report.top_reasons()})"
        )
