"""Unit conversions used throughout the NDT model.

NDT reports throughput in Mbps, RTT in milliseconds, and loss as a fraction.
The TCP model internally works in bytes and seconds; these helpers keep the
conversions in one place and explicit.
"""

from __future__ import annotations

__all__ = [
    "MEGABIT",
    "bytes_to_megabits",
    "megabits_to_bytes",
    "mbps_to_bytes_per_sec",
    "bytes_per_sec_to_mbps",
    "ms_to_seconds",
    "seconds_to_ms",
]

#: Bits per megabit (decimal, as used by speed-test tools).
MEGABIT = 1_000_000


def bytes_to_megabits(n_bytes: float) -> float:
    """Convert a byte count to megabits."""
    return n_bytes * 8.0 / MEGABIT


def megabits_to_bytes(megabits: float) -> float:
    """Convert megabits to bytes."""
    return megabits * MEGABIT / 8.0


def mbps_to_bytes_per_sec(mbps: float) -> float:
    """Convert a rate in Mbps to bytes/second."""
    return megabits_to_bytes(mbps)


def bytes_per_sec_to_mbps(bps: float) -> float:
    """Convert a rate in bytes/second to Mbps."""
    return bytes_to_megabits(bps)


def ms_to_seconds(ms: float) -> float:
    """Milliseconds → seconds."""
    return ms / 1000.0


def seconds_to_ms(seconds: float) -> float:
    """Seconds → milliseconds."""
    return seconds * 1000.0
