"""The benchmark registry: one history, one comparison, one writer.

Before this module, performance numbers lived in disconnected one-off
snapshots: ``BENCH_engine.json`` (vectorized-engine speedups) and
``BENCH_obs.json`` (disabled-instrumentation overhead), each written by a
different benchmark file, with no trend and no gate.  This module unifies
them:

* :class:`BenchRegistry` — an in-process accumulator benchmarks record
  wall-clock results into (``benchmarks/bench_common.py`` exposes the
  shared session instance, so every benchmark module feeds it for free);
* :func:`append_history` — an **append-only** JSONL history
  (``BENCH_history.jsonl`` at the repo root): one run record per line,
  keyed by an *externally supplied* sha/timestamp (``--sha``/``--ts`` or
  the ``REPRO_BENCH_SHA``/``REPRO_BENCH_TS`` env vars) so the file stays
  deterministic and diffable — no clock reads at record time;
* :func:`compare` — noise-tolerant baseline comparison: a benchmark
  regresses when it slows beyond a configurable threshold (default
  +20%), and sub-``min_seconds`` timings are ignored entirely because a
  3ms kernel cannot be compared across runs with a wall clock;
* :func:`write_snapshot` — the **one sanctioned writer** of
  ``BENCH_*.json`` files.  The ``no-bare-timing`` lint rule flags
  ``BENCH_*`` path literals anywhere else, so ad-hoc baseline files
  cannot quietly reappear.

``repro bench run|compare|record`` is the CLI face (exit code 6 on
regressions); ``make bench-compare`` wires the comparison into the
default test flow.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro import storage

logger = logging.getLogger(__name__)

__all__ = [
    "BenchRegistry",
    "ComparisonResult",
    "DEFAULT_MIN_SECONDS",
    "DEFAULT_THRESHOLD",
    "EXIT_PERF_REGRESSION",
    "Regression",
    "append_history",
    "baseline_path",
    "cmd_bench",
    "compare",
    "configure_parser",
    "history_path",
    "load_history",
    "load_legacy_baselines",
    "render_comparison",
    "repo_root",
    "session_registry",
    "write_snapshot",
]

#: ``repro bench compare`` exit code when regressions exceed the threshold
#: (0-5 are taken: ok, typed error, usage, generation, analysis, lint).
EXIT_PERF_REGRESSION = 6

#: A benchmark regresses when ``current > baseline * (1 + threshold)``.
DEFAULT_THRESHOLD = 0.20

#: Timings under this floor (both sides) are never compared: wall-clock
#: noise on millisecond kernels would fire the gate randomly.
DEFAULT_MIN_SECONDS = 0.01

_LEGACY_BASENAMES = (
    "BENCH_engine.json", "BENCH_obs.json", "BENCH_storage.json",
    "BENCH_profile.json", "BENCH_live.json",
)
_HISTORY_BASENAME = "BENCH_history.jsonl"


def repo_root() -> Path:
    """The repository root in the dev layout (``src/repro/obs/`` → root)."""
    return Path(__file__).resolve().parents[3]


def baseline_path(kind: str, root: Optional[Path] = None) -> Path:
    """Path of a one-off snapshot: ``engine``/``obs``/``storage``/``profile``/``live``."""
    names = {
        "engine": _LEGACY_BASENAMES[0],
        "obs": _LEGACY_BASENAMES[1],
        "storage": _LEGACY_BASENAMES[2],
        "profile": _LEGACY_BASENAMES[3],
        "live": _LEGACY_BASENAMES[4],
    }
    if kind not in names:
        raise ValueError(
            f"unknown baseline kind {kind!r}; use "
            f"engine|obs|storage|profile|live"
        )
    return (root or repo_root()) / names[kind]


def history_path(root: Optional[Path] = None) -> Path:
    """Path of the append-only run-record history."""
    return (root or repo_root()) / _HISTORY_BASENAME


class BenchRegistry:
    """Accumulates ``name -> {seconds, meta...}`` benchmark rows for one run."""

    def __init__(self):
        self._records: Dict[str, Dict[str, Any]] = {}

    def __len__(self) -> int:
        return len(self._records)

    def record(self, name: str, seconds: float, **meta: Any) -> None:
        """Record one benchmark timing (last write wins per name)."""
        if not name:
            raise ValueError("benchmark name must be non-empty")
        seconds = float(seconds)
        if seconds < 0:
            raise ValueError(f"benchmark {name!r}: negative seconds {seconds}")
        self._records[name] = {"seconds": seconds, **meta}

    def as_benchmarks(self) -> Dict[str, Dict[str, Any]]:
        """A name-sorted copy, ready for :func:`append_history`."""
        return {n: dict(self._records[n]) for n in sorted(self._records)}


_session = BenchRegistry()


def session_registry() -> BenchRegistry:
    """The process-wide registry benchmark modules record into."""
    return _session


# -- snapshots and history ---------------------------------------------------
def write_snapshot(path, payload: Dict[str, Any]) -> str:
    """Write a ``BENCH_*.json`` snapshot — the one sanctioned writer.

    Keeps the historical human-readable format (indent 2, trailing
    newline) the legacy baselines used, so migrating the writers does not
    churn the checked-in files.  Commits atomically through
    :mod:`repro.storage` — a crash mid-write leaves the previous snapshot,
    never a torn JSON file.
    """
    path = Path(path)
    storage.commit_text(
        str(path),
        json.dumps(payload, indent=2) + "\n",
        label=f"bench.{path.name}",
    )
    return str(path)


def _seconds_entry(value: Any) -> Optional[float]:
    if isinstance(value, dict):
        value = value.get("seconds")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def _floor_entry(value: Any) -> Optional[float]:
    """A row's own noise floor in seconds (``floor_ms`` key), if declared."""
    if not isinstance(value, dict):
        return None
    floor = value.get("floor_ms")
    if isinstance(floor, (int, float)) and not isinstance(floor, bool):
        if floor < 0:
            raise ValueError(f"floor_ms must be >= 0, got {floor}")
        return float(floor) / 1000.0
    return None


def load_legacy_baselines(root: Optional[Path] = None) -> Dict[str, Dict[str, Any]]:
    """Unify the ad-hoc ``BENCH_*.json`` snapshots into registry rows.

    Engine rows keep the vectorized path's time (``after_s``); the
    encode/decode row sums its two phases; obs rows keep the disabled-path
    op times; storage rows keep the committed-path times (the durability
    cost the 5% budget bounds).  Missing files are simply skipped, so a
    fresh clone without recorded baselines still works.
    """
    out: Dict[str, Dict[str, Any]] = {}
    engine = baseline_path("engine", root)
    if engine.exists():
        data = json.loads(engine.read_text(encoding="utf-8"))
        for name, row in data.get("benchmarks", {}).items():
            if "after_s" in row:
                out[f"engine.{name}"] = {
                    "seconds": float(row["after_s"]),
                    "rows": row.get("rows"),
                }
            elif "encode_s" in row:
                out[f"engine.{name}"] = {
                    "seconds": float(row["encode_s"]) + float(row["decode_s"]),
                    "rows": row.get("rows"),
                }
    obs_file = baseline_path("obs", root)
    if obs_file.exists():
        data = json.loads(obs_file.read_text(encoding="utf-8"))
        for name, row in data.get("benchmarks", {}).items():
            if isinstance(row, dict) and "op_s_disabled" in row:
                out[f"obs.{name}_disabled"] = {
                    "seconds": float(row["op_s_disabled"]),
                    "rows": row.get("rows"),
                }
    storage_file = baseline_path("storage", root)
    if storage_file.exists():
        data = json.loads(storage_file.read_text(encoding="utf-8"))
        for name, row in data.get("benchmarks", {}).items():
            if isinstance(row, dict) and "committed_s" in row:
                out[f"storage.{name}_committed"] = {
                    "seconds": float(row["committed_s"]),
                    "rows": row.get("rows"),
                }
    profile_file = baseline_path("profile", root)
    if profile_file.exists():
        data = json.loads(profile_file.read_text(encoding="utf-8"))
        for name, row in data.get("benchmarks", {}).items():
            # Hotspot rows gate per-span-name *self* time, so a hot path
            # regression inside one stage fires even when end-to-end wall
            # time hides it behind savings elsewhere.
            if isinstance(row, dict) and "self_s" in row:
                out[name] = {
                    "seconds": float(row["self_s"]),
                    "calls": row.get("calls"),
                }
    live_file = baseline_path("live", root)
    if live_file.exists():
        data = json.loads(live_file.read_text(encoding="utf-8"))
        for name, row in data.get("benchmarks", {}).items():
            # Live-service rows already use the registry shape and carry
            # their own per-key noise floor (``floor_ms``): request
            # latencies gate at a tighter floor than the 10ms default,
            # which would skip every sub-10ms p50/p99 row as noise.
            if isinstance(row, dict) and "seconds" in row:
                out[name] = dict(row)
    return out


def external_run_key() -> Dict[str, str]:
    """The externally supplied (sha, timestamp) identity for run records."""
    return {
        "sha": os.environ.get("REPRO_BENCH_SHA", "unknown"),
        "timestamp": os.environ.get("REPRO_BENCH_TS", "unknown"),
    }


def append_history(
    benchmarks: Dict[str, Dict[str, Any]],
    sha: str,
    timestamp: str,
    path=None,
) -> Dict[str, Any]:
    """Append one run record to the JSONL history; returns the record.

    The history is append-only by construction: records only ever reach
    the file through :func:`repro.storage.append_text` (one write of a
    complete line, then fsync), and readers tolerate — skip and warn on —
    any torn tail a crash mid-append may still leave.
    """
    record = {
        "sha": sha,
        "timestamp": timestamp,
        "benchmarks": {n: benchmarks[n] for n in sorted(benchmarks)},
    }
    path = Path(path) if path is not None else history_path()
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    storage.append_text(str(path), line, label=f"bench-history.{path.name}")
    return record


def load_history(path=None) -> List[Dict[str, Any]]:
    """All run records, oldest first; missing file → empty list.

    A torn tail — the partial last line a crash mid-append can leave —
    is skipped with a warning and counted (``bench.history_torn_lines``),
    never parsed into a half-record baseline.
    """
    from repro import obs

    path = Path(path) if path is not None else history_path()
    if not path.exists():
        return []
    out: List[Dict[str, Any]] = []
    lines = storage.read_text(str(path)).splitlines()
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            obs.counter("bench.history_torn_lines").inc()
            logger.warning(
                "%s:%d: skipping malformed history line (%s)%s",
                path, lineno, exc,
                " — torn tail from an interrupted append"
                if lineno == len(lines) else "",
            )
            continue
        if not isinstance(record, dict):
            obs.counter("bench.history_torn_lines").inc()
            logger.warning(
                "%s:%d: skipping non-object history line", path, lineno
            )
            continue
        out.append(record)
    return out


# -- comparison --------------------------------------------------------------
@dataclass(frozen=True)
class Regression:
    """One benchmark that slowed beyond the threshold."""

    name: str
    baseline_s: float
    current_s: float

    @property
    def ratio(self) -> float:
        return self.current_s / self.baseline_s if self.baseline_s else float("inf")


@dataclass
class ComparisonResult:
    """Everything one baseline comparison found."""

    threshold: float
    min_seconds: float
    regressions: List[Regression] = field(default_factory=list)
    improvements: List[Regression] = field(default_factory=list)
    compared: int = 0
    skipped_noise: List[str] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else EXIT_PERF_REGRESSION


def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> ComparisonResult:
    """Compare two ``name -> seconds|{seconds: ...}`` maps.

    Noise tolerance is explicit: benchmarks where *either* side is under
    the noise floor are reported under ``skipped_noise`` and never gate,
    and a slowdown only counts when it exceeds ``threshold`` (fractional,
    e.g. 0.2 = +20%).  The floor is ``min_seconds`` (10ms) by default,
    but a registry row may declare its own ``floor_ms`` — sub-10ms
    measurements that are *not* wall-clock noise (e.g. the live health
    service's request percentiles, timed over thousands of requests)
    would otherwise never gate.  When both sides declare ``floor_ms``
    the larger (more tolerant) one wins.  Symmetric speedups land in
    ``improvements`` for the report but never fail anything.
    """
    result = ComparisonResult(threshold=threshold, min_seconds=min_seconds)
    for name in sorted(set(current) | set(baseline)):
        cur_s = _seconds_entry(current.get(name))
        base_s = _seconds_entry(baseline.get(name))
        if cur_s is None and base_s is None:
            continue
        if base_s is None:
            result.added.append(name)
            continue
        if cur_s is None:
            result.missing.append(name)
            continue
        floors = [
            f for f in (
                _floor_entry(current.get(name)),
                _floor_entry(baseline.get(name)),
            )
            if f is not None
        ]
        floor_s = max(floors) if floors else min_seconds
        if cur_s < floor_s or base_s < floor_s:
            result.skipped_noise.append(name)
            continue
        result.compared += 1
        if cur_s > base_s * (1.0 + threshold):
            result.regressions.append(Regression(name, base_s, cur_s))
        elif cur_s < base_s / (1.0 + threshold):
            result.improvements.append(Regression(name, base_s, cur_s))
    return result


def render_comparison(result: ComparisonResult) -> str:
    """The ``repro bench compare`` text report."""
    lines = [
        f"bench compare: {result.compared} compared, threshold "
        f"+{result.threshold:.0%}, noise floor {result.min_seconds * 1000:g}ms"
    ]
    for reg in result.regressions:
        lines.append(
            f"  REGRESSION {reg.name}: {reg.baseline_s:.4f}s -> "
            f"{reg.current_s:.4f}s ({reg.ratio:.2f}x)"
        )
    for imp in result.improvements:
        lines.append(
            f"  improved   {imp.name}: {imp.baseline_s:.4f}s -> "
            f"{imp.current_s:.4f}s ({imp.ratio:.2f}x)"
        )
    if result.skipped_noise:
        lines.append(
            f"  skipped (under noise floor): {', '.join(result.skipped_noise)}"
        )
    if result.added:
        lines.append(f"  new benchmarks (no baseline): {', '.join(result.added)}")
    if result.missing:
        lines.append(f"  missing from current run: {', '.join(result.missing)}")
    lines.append("PASS" if result.ok else "FAIL: performance regressions")
    return "\n".join(lines)


# -- the built-in micro suite ------------------------------------------------
def run_micro_suite(
    rows: int = 200_000, repeat: int = 3, registry: Optional[BenchRegistry] = None
) -> BenchRegistry:
    """Time the engine's hot relational kernels on a synthetic table.

    This is ``repro bench run``: a fast, self-contained measurement of
    group-by / join / isin / sort on a dictionary-encoded workload shaped
    like the NDT tables (a few hundred string keys over many rows).
    Imports are local so the obs package stays import-light for everyone
    who never benchmarks.
    """
    import numpy as np

    from repro.obs.clock import monotonic
    from repro.tables.join import join
    from repro.tables.schema import DType
    from repro.tables.table import Table

    registry = registry if registry is not None else BenchRegistry()
    rng = np.random.Generator(np.random.PCG64(20220224))
    keys = np.array([f"city_{i:03d}" for i in range(300)], dtype=object)
    big = Table.from_dict(
        {
            "k": keys[rng.integers(0, len(keys), rows)].tolist(),
            "k2": rng.integers(0, 40, rows),
            "v": rng.normal(50.0, 20.0, rows),
        },
        dtypes={"k": DType.STR, "k2": DType.INT, "v": DType.FLOAT},
    )
    right = Table.from_dict(
        {"k": keys.tolist(), "w": rng.normal(0.0, 1.0, len(keys))},
        dtypes={"k": DType.STR, "w": DType.FLOAT},
    )
    allowed = {f"city_{i:03d}" for i in range(0, 300, 7)}
    suite = {
        "micro.groupby_mean": lambda: big.group_by("k").aggregate(
            {"m": ("v", "mean"), "n": ("v", "count")}
        ),
        "micro.join_inner": lambda: join(big, right, on="k"),
        "micro.filter_isin": lambda: big.column("k").isin(allowed),
        "micro.sort_by": lambda: big.sort_by(["k", "k2"]),
    }
    for name, fn in suite.items():
        best = float("inf")
        for _ in range(max(1, repeat)):
            t0 = monotonic()
            fn()
            best = min(best, monotonic() - t0)
        registry.record(name, best, rows=rows, repeat=repeat)
    return registry


# -- CLI ---------------------------------------------------------------------
def configure_parser(sub: argparse._SubParsersAction) -> None:
    bench = sub.add_parser(
        "bench",
        help="run / compare / record benchmark registry entries",
        description=(
            "The benchmark registry over BENCH_history.jsonl: run the "
            "built-in micro suite, compare current numbers against the "
            "recorded baseline (exit 6 on regressions beyond the "
            "threshold), or append a new run record.  See "
            "docs/OBSERVABILITY.md."
        ),
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    run = bench_sub.add_parser(
        "run", help="time the built-in engine micro suite"
    )
    run.add_argument(
        "--rows", type=int, default=200_000,
        help="synthetic table size (default: %(default)s)",
    )
    run.add_argument(
        "--repeat", type=int, default=3,
        help="best-of repetitions per benchmark (default: %(default)s)",
    )
    run.add_argument(
        "--json", action="store_true", help="print the rows as JSON"
    )
    run.add_argument(
        "--record", action="store_true",
        help="append the results to the history (see 'record' for keying)",
    )
    _add_key_args(run)

    comp = bench_sub.add_parser(
        "compare", help="compare current numbers against the recorded baseline"
    )
    comp.add_argument(
        "--current", default=None, metavar="PATH",
        help="JSON of current numbers (a run record or name->seconds map; "
        "default: the unified BENCH_engine/BENCH_obs snapshots)",
    )
    comp.add_argument(
        "--history", default=None, metavar="PATH",
        help="history file holding the baseline (default: BENCH_history.jsonl)",
    )
    comp.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="regression threshold as a fraction (default: %(default)s)",
    )
    comp.add_argument(
        "--min-seconds", type=float, default=DEFAULT_MIN_SECONDS,
        help="noise floor; faster timings never gate (default: %(default)s)",
    )

    rec = bench_sub.add_parser(
        "record", help="append a run record to the history"
    )
    rec.add_argument(
        "--input", default=None, metavar="PATH",
        help="JSON of numbers to record (default: the unified "
        "BENCH_engine/BENCH_obs snapshots)",
    )
    rec.add_argument(
        "--history", default=None, metavar="PATH",
        help="history file to append to (default: BENCH_history.jsonl)",
    )
    _add_key_args(rec)


def _add_key_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sha", default=None,
        help="run key: commit sha (default: REPRO_BENCH_SHA env, else 'unknown')",
    )
    parser.add_argument(
        "--ts", default=None,
        help="run key: timestamp (default: REPRO_BENCH_TS env, else 'unknown')",
    )


def _run_key(args) -> Dict[str, str]:
    key = external_run_key()
    if getattr(args, "sha", None):
        key["sha"] = args.sha
    if getattr(args, "ts", None):
        key["timestamp"] = args.ts
    return key


def _load_benchmarks_arg(path: Optional[str]) -> Dict[str, Any]:
    """Current/recorded numbers from a file, or the unified legacy snapshots."""
    if path is None:
        return load_legacy_baselines()
    from repro.util.errors import ReproError

    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except FileNotFoundError:
        raise ReproError(f"no such file: {path}") from None
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path} is not valid JSON: {exc}") from exc
    if "benchmarks" in data:
        return data["benchmarks"]
    return data


def _cmd_run(args) -> int:
    registry = run_micro_suite(rows=args.rows, repeat=args.repeat)
    benchmarks = registry.as_benchmarks()
    if args.json:
        print(json.dumps({"benchmarks": benchmarks}, indent=2, sort_keys=True))
    else:
        for name, row in benchmarks.items():
            print(f"{name:<24s} {row['seconds'] * 1000:>10.3f} ms  "
                  f"(rows={row.get('rows')}, best of {row.get('repeat')})")
    if args.record:
        key = _run_key(args)
        path = history_path()
        record = append_history(benchmarks, key["sha"], key["timestamp"], path)
        print(
            f"recorded {len(record['benchmarks'])} benchmark(s) to "
            f"{path} (sha {key['sha']})"
        )
    return 0


def _cmd_compare(args) -> int:
    current = _load_benchmarks_arg(args.current)
    history = load_history(args.history)
    if not history:
        print(
            "bench compare: no baseline recorded yet "
            f"({args.history or history_path()}); run 'repro bench record' first",
            file=sys.stderr,
        )
        return 0
    baseline = history[-1].get("benchmarks", {})
    result = compare(
        current, baseline,
        threshold=args.threshold, min_seconds=args.min_seconds,
    )
    print(render_comparison(result))
    return result.exit_code


def _cmd_record(args) -> int:
    benchmarks = _load_benchmarks_arg(args.input)
    if not benchmarks:
        print("bench record: nothing to record (no snapshots found)",
              file=sys.stderr)
        return 1
    key = _run_key(args)
    path = Path(args.history) if args.history else history_path()
    record = append_history(benchmarks, key["sha"], key["timestamp"], path)
    print(
        f"recorded {len(record['benchmarks'])} benchmark(s) to {path} "
        f"(sha {key['sha']}, ts {key['timestamp']})"
    )
    return 0


def cmd_bench(args) -> int:
    handlers = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "record": _cmd_record,
    }
    return handlers[args.bench_command](args)
