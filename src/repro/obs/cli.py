"""The ``repro obs`` subcommand: inspect observability artifacts offline.

``summarize``  Digest a JSONL trace and/or a ``run_report.json`` into the
               per-stage table, histogram percentiles, and the self-time
               hotspot list without rerunning anything.
``profile``    Render (or build from a trace) the span-attributed
               hotspot profile: top self-time table, per-stage roll-up,
               ``--allocs`` allocation hotspots, ``--flame`` collapsed
               stacks.  Schema-checked against ``docs/profile.schema.json``.
``diff``       Compare two metrics snapshots (or the ``metrics`` section
               of two run reports): counter/gauge deltas and histogram
               count/sum drift between runs.
``validate``   Check a ``run_report.json`` against the checked-in schema
               (``docs/run_report.schema.json``); exit 1 on violations.
``lineage``    Render ``provenance.json`` (text or ``--dot`` Graphviz)
               after checking it against ``docs/provenance.schema.json``.
``mem``        Generate a dataset at the session's seed/scale and print
               the per-column memory accounting (top-N columns by bytes).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Any, Dict, List

from repro.obs.export import read_spans_jsonl
from repro.obs.metrics import diff_snapshots, percentile_from_snapshot
from repro.obs.report import render_run_report, validate_run_report
from repro.util.errors import ReproError

__all__ = ["cmd_obs", "configure_parser"]


def configure_parser(sub: argparse._SubParsersAction) -> None:
    obs = sub.add_parser(
        "obs",
        help="summarize / diff / validate observability artifacts",
        description=(
            "Offline tools over the artifacts a traced run writes under "
            "--obs-dir: the JSONL span trace, the metrics snapshot, and "
            "run_report.json.  See docs/OBSERVABILITY.md."
        ),
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    summ = obs_sub.add_parser(
        "summarize", help="per-stage table and hottest spans from artifacts"
    )
    summ.add_argument(
        "--report", default=None, metavar="PATH",
        help="run_report.json to render (default: none)",
    )
    summ.add_argument(
        "--trace", default=None, metavar="PATH",
        help="JSONL trace to digest (default: none)",
    )
    summ.add_argument(
        "--top", type=int, default=10, help="span count to show (default: 10)"
    )

    prof = obs_sub.add_parser(
        "profile",
        help="span-attributed self-time hotspots (profile.json / trace)",
        description=(
            "Without --trace, loads <obs-dir>/profile.json (as written by "
            "a --profile run).  With --trace PATH, profiles an existing "
            "JSONL trace retroactively and writes the schema-validated "
            "document to --out (default: profile.json next to the trace). "
            "Output is byte-stable for a given trace."
        ),
    )
    prof.add_argument(
        "--trace", default=None, metavar="PATH",
        help="build the profile from this JSONL trace instead of loading "
             "profile.json",
    )
    prof.add_argument(
        "--profile-json", default=None, metavar="PATH",
        help="profile.json to load (default: <obs-dir>/profile.json)",
    )
    prof.add_argument(
        "--out", default=None, metavar="PATH",
        help="where to write the built profile (only with --trace)",
    )
    prof.add_argument(
        "--top", type=int, default=15,
        help="hotspot rows to show (default: %(default)s)",
    )
    prof.add_argument(
        "--allocs", action="store_true",
        help="also show the allocation hotspot table",
    )
    prof.add_argument(
        "--flame", action="store_true",
        help="print collapsed stacks (<obs-dir>/samples.collapsed) for "
             "flamegraph tooling instead of the table",
    )

    diff = obs_sub.add_parser(
        "diff", help="metric deltas between two snapshots or run reports"
    )
    diff.add_argument("before", help="metrics.json or run_report.json")
    diff.add_argument("after", help="metrics.json or run_report.json")

    val = obs_sub.add_parser(
        "validate", help="check run_report.json against the schema"
    )
    val.add_argument("report", help="path to run_report.json")
    val.add_argument(
        "--schema", default=None,
        help="schema path (default: docs/run_report.schema.json)",
    )

    lin = obs_sub.add_parser(
        "lineage", help="render provenance.json (schema-checked)"
    )
    lin.add_argument(
        "provenance", nargs="?", default=None, metavar="PATH",
        help="provenance.json path (default: <obs-dir>/provenance.json)",
    )
    lin.add_argument(
        "--dot", action="store_true",
        help="emit the DAG as Graphviz DOT instead of text",
    )
    lin.add_argument(
        "--no-validate", action="store_true",
        help="skip the schema check (render even a malformed document)",
    )

    mem = obs_sub.add_parser(
        "mem", help="per-column memory accounting for a generated dataset"
    )
    mem.add_argument(
        "--top", type=int, default=15,
        help="columns to show, ranked by bytes (default: %(default)s)",
    )
    mem.add_argument(
        "--ingest", action="store_true",
        help="account the sanitized (post-ingest) tables instead of raw ones",
    )


def _load_json(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        raise ReproError(f"no such file: {path}") from None
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path} is not valid JSON: {exc}") from exc


def _load_snapshot(path: str) -> Dict[str, Any]:
    """A metrics snapshot, from either metrics.json or a run report.

    A run report whose ``metrics`` section was trimmed (older producer,
    hand-filtered file) degrades to an empty snapshot with a warning —
    the diff still runs over whatever the other side has.
    """
    data = _load_json(path)
    if "counters" in data or "histograms" in data:
        return data
    if "metrics" in data:
        return data["metrics"] or {}
    if "stages" in data or "schema_version" in data:
        print(
            f"warning: {path} is a run report without a metrics section; "
            f"treating it as an empty snapshot",
            file=sys.stderr,
        )
        return {}
    raise ReproError(
        f"{path} is neither a metrics snapshot nor a run report "
        f"(expected 'counters' or 'metrics' keys)"
    )


def _summarize_trace(path: str, top: int) -> str:
    # Shared with `repro obs profile`: the same self-time attribution,
    # so existing trace files can be profiled retroactively.
    from repro.obs.profile.selftime import render_self_time, self_time_profile

    spans = read_spans_jsonl(path)
    profile = self_time_profile(spans)
    open_names = sorted(
        {s["name"] for s in spans if s.get("end_s") is None}
    )
    lines: List[str] = [
        f"trace {path}: {profile.n_spans} spans "
        f"({profile.n_open} left open)"
    ]
    if open_names:
        lines.append(f"open span names: {', '.join(open_names)}")
    lines.append(render_self_time(profile, top=top, title="self-time"))
    return "\n".join(lines)


def _fmt_pct(v: float) -> str:
    return "nan" if math.isnan(v) else f"{v:.3f}"


def _summarize_histograms(snapshot: Dict[str, Any]) -> str:
    """p50/p95 per histogram (empty histograms report NaN, not zeros)."""
    histograms = snapshot.get("histograms") or {}
    lines = [
        f"{'histogram':<36s} {'count':>6s} {'p50':>10s} {'p95':>10s} {'max':>10s}"
    ]
    for name in sorted(histograms):
        h = histograms[name]
        p50 = percentile_from_snapshot(h, 50.0)
        p95 = percentile_from_snapshot(h, 95.0)
        hmax = h.get("max")
        lines.append(
            f"{name:<36s} {int(h.get('count', 0)):>6d} {_fmt_pct(p50):>10s} "
            f"{_fmt_pct(p95):>10s} "
            f"{'-' if hmax is None else format(hmax, '.3f'):>10s}"
        )
    return "\n".join(lines)


def _cmd_summarize(args: argparse.Namespace) -> int:
    if args.report is None and args.trace is None:
        print(
            "error: obs summarize needs --report and/or --trace",
            file=sys.stderr,
        )
        return 2
    parts: List[str] = []
    if args.report is not None:
        report = _load_json(args.report)
        parts.append(render_run_report(report).rstrip("\n"))
        metrics = report.get("metrics") or {}
        if metrics.get("histograms"):
            parts.append(_summarize_histograms(metrics))
    if args.trace is not None:
        parts.append(_summarize_trace(args.trace, args.top))
    print("\n\n".join(parts))
    return 0


def _default_obs_dir(args: argparse.Namespace) -> str:
    import os

    return getattr(args, "obs_dir", None) or os.path.join("results", "obs")


def _cmd_profile(args: argparse.Namespace) -> int:
    import os

    from repro.obs.profile import (
        build_from_trace_file,
        render_profile,
        validate_profile,
        write_profile,
    )

    obs_dir = _default_obs_dir(args)
    if args.flame:
        if args.profile_json:
            obs_dir = os.path.dirname(os.path.abspath(args.profile_json))
        collapsed = os.path.join(obs_dir, "samples.collapsed")
        try:
            with open(collapsed, "r", encoding="utf-8") as fh:
                body = fh.read()
        except FileNotFoundError:
            raise ReproError(
                f"no such file: {collapsed} (run with --profile to collect "
                f"samples)"
            ) from None
        print(body, end="")
        return 0

    if args.trace is not None:
        data = build_from_trace_file(args.trace)
        out = args.out or os.path.join(
            os.path.dirname(os.path.abspath(args.trace)), "profile.json"
        )
        errors = validate_profile(data)
        if errors:
            for err in errors:
                print(f"schema violation: {err}", file=sys.stderr)
            return 1
        write_profile(data, out)
        print(f"wrote {out}", file=sys.stderr)
    else:
        path = args.profile_json or os.path.join(obs_dir, "profile.json")
        data = _load_json(path)
        errors = validate_profile(data)
        if errors:
            for err in errors:
                print(f"schema violation: {err}", file=sys.stderr)
            return 1
    print(render_profile(data, top=args.top, allocs=args.allocs), end="")
    return 0


def _fmt_value(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def _cmd_diff(args: argparse.Namespace) -> int:
    before = _load_snapshot(args.before)
    after = _load_snapshot(args.after)
    delta = diff_snapshots(before, after)
    lines: List[str] = [f"metrics diff: {args.before} -> {args.after}"]
    changed = False
    for kind in ("counters", "gauges"):
        for name, d in delta[kind].items():
            changed = True
            lines.append(
                f"  {kind[:-1]} {name}: {_fmt_value(d['before'])} -> "
                f"{_fmt_value(d['after'])} ({d['delta']:+g})"
            )
    for name, d in delta["histograms"].items():
        changed = True
        lines.append(
            f"  histogram {name}: count {d['count_delta']:+d}, "
            f"sum {d['sum_delta']:+.6g}"
        )
    for name in delta["added"]:
        changed = True
        lines.append(f"  added {name}")
    for name in delta["removed"]:
        changed = True
        lines.append(f"  removed {name}")
    if not changed:
        lines.append("  (no differences)")
    print("\n".join(lines))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    data = _load_json(args.report)
    schema = _load_json(args.schema) if args.schema else None
    errors = validate_run_report(data, schema)
    if errors:
        for err in errors:
            print(f"schema violation: {err}", file=sys.stderr)
        return 1
    stages = len(data.get("stages", []))
    print(f"{args.report}: valid (schema v{data.get('schema_version')}, "
          f"{stages} stages)")
    return 0


def _cmd_lineage(args: argparse.Namespace) -> int:
    import os

    from repro.obs import lineage as lineage_mod

    path = args.provenance or os.path.join(
        getattr(args, "obs_dir", os.path.join("results", "obs")),
        "provenance.json",
    )
    data = _load_json(path)
    rc = 0
    if not args.no_validate:
        errors = lineage_mod.validate_provenance(data)
        for err in errors:
            print(f"schema violation: {err}", file=sys.stderr)
        rc = 1 if errors else 0
    if args.dot:
        print(lineage_mod.provenance_to_dot(data), end="")
    else:
        print(lineage_mod.render_provenance(data))
    return rc


def _cmd_mem(args: argparse.Namespace) -> int:
    # Lazy imports: the generator only loads when someone actually asks
    # for the memory view, keeping plain `repro obs` artifact tools light.
    from repro.obs.memory import render_memory_report, table_memory
    from repro.synth.generator import DatasetGenerator, GeneratorConfig

    config = GeneratorConfig(
        seed=getattr(args, "seed", 20220224),
        scale=getattr(args, "scale", 0.25),
    )
    dataset = DatasetGenerator(config).generate()
    label = "raw"
    if args.ingest:
        from repro.runtime.ingest import sanitize_dataset

        dataset, _gates = sanitize_dataset(dataset)
        label = "ingested"
    tables = [
        table_memory(dataset.ndt, name="ndt"),
        table_memory(dataset.traces, name="traces"),
    ]
    print(
        f"dataset seed {config.seed}, scale {config.scale} ({label} tables)"
    )
    print(render_memory_report(tables, top=args.top))
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    handlers = {
        "summarize": _cmd_summarize,
        "profile": _cmd_profile,
        "diff": _cmd_diff,
        "validate": _cmd_validate,
        "lineage": _cmd_lineage,
        "mem": _cmd_mem,
    }
    return handlers[args.obs_command](args)
