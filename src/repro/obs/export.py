"""Trace export: JSONL span records and the Chrome ``chrome://tracing`` view.

Two formats, one source of truth:

* **JSONL** — one :meth:`SpanRecord.to_dict` object per line, in span
  *start* order.  Greppable, streamable, and what ``repro obs summarize``
  reads back.
* **Chrome trace JSON** — the Trace Event Format's complete-event
  (``"ph": "X"``) encoding, loadable in ``chrome://tracing`` or Perfetto
  for a flame-graph view of a run.  Times are microseconds relative to
  the tracer epoch; nesting falls out of the timestamps, so parent ids
  ride along in ``args`` only.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional

from repro import storage
from repro.obs.trace import SpanRecord, Tracer

__all__ = [
    "read_spans_jsonl",
    "spans_to_chrome",
    "write_chrome_trace",
    "write_spans_jsonl",
]


def _records(tracer_or_spans) -> List[SpanRecord]:
    if isinstance(tracer_or_spans, Tracer):
        return list(tracer_or_spans.spans)
    return list(tracer_or_spans)


def write_spans_jsonl(tracer_or_spans, path: str) -> int:
    """Write spans as JSONL (one object per line, atomic); returns the count."""
    records = _records(tracer_or_spans)
    lines = [json.dumps(rec.to_dict(), sort_keys=True) + "\n" for rec in records]
    storage.commit_text(path, "".join(lines), label="trace.spans")
    return len(records)


def read_spans_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace back into plain dicts (blank lines skipped)."""
    out: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def spans_to_chrome(
    tracer_or_spans, process_name: str = "repro"
) -> Dict[str, Any]:
    """The Trace Event Format document for a tracer's spans.

    Open spans (no end time) are exported as zero-duration events so a
    crashed run's trace still loads.
    """
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for rec in _records(tracer_or_spans):
        end_s = rec.end_s if rec.end_s is not None else rec.start_s
        args: Dict[str, Any] = {k: rec.attrs[k] for k in sorted(rec.attrs)}
        args["span_id"] = rec.span_id
        if rec.parent_id is not None:
            args["parent_id"] = rec.parent_id
        events.append(
            {
                "name": rec.name,
                "ph": "X",
                "ts": rec.start_s * 1e6,
                "dur": (end_s - rec.start_s) * 1e6,
                "pid": 0,
                "tid": 0,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    tracer_or_spans, path: str, process_name: str = "repro"
) -> str:
    """Write the Chrome trace view next to the JSONL export."""
    doc = spans_to_chrome(tracer_or_spans, process_name=process_name)
    storage.commit_text(
        path,
        json.dumps(doc, sort_keys=True) + "\n",
        label="trace.chrome",
    )
    return path
