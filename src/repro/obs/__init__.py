"""``repro.obs`` — tracing, metrics, lineage, and run reports.

The pillars (see ``docs/OBSERVABILITY.md``):

* **tracing** — ``obs.span("stage.ingest", rows=...)`` / ``@obs.traced``
  record nested monotonic-clock spans, exported as JSONL and as a Chrome
  ``chrome://tracing`` view;
* **metrics** — ``obs.counter("ingest.rows_quarantined")``,
  ``obs.histogram("kernel.groupby_ms")``: a process-local registry with
  deterministic JSON snapshots, diffable between runs.
  :mod:`repro.obs.memory` rides on this pillar, publishing per-table
  byte accounting as ``table.bytes.*`` gauges;
* **lineage** — :mod:`repro.obs.lineage` fingerprints every table
  entering/leaving a pipeline stage and folds the stage graph into a
  deterministic ``provenance.json``;
* **run report** — :mod:`repro.obs.report` folds the pipeline's stage
  results, the metrics snapshot, and the hottest spans into
  ``run_report.json`` + a rendered text table at pipeline exit.
  :mod:`repro.obs.bench` tracks performance over time in the same spirit
  (``BENCH_history.jsonl`` + ``repro bench compare``).

Everything is **off by default** and free when off: ``obs.span`` returns
a shared no-op, metric handles are null objects, ``obs.active_lineage()``
is ``None``, and ``@obs.traced`` calls straight through — the table-engine
hot path pays one module-global check.  ``obs.enable(trace=...,
metrics=..., lineage=...)`` (wired to ``--trace`` / ``--metrics`` on the
CLI) turns the pillars on independently; a span created with
``metric="kernel.groupby_ms"`` feeds that histogram even when tracing
itself is off, so ``--metrics`` alone still sees kernel timings.

This package depends only on the standard library (plus numpy in the
lineage/bench submodules, which import lazily), and no repro module
below it — it is importable from anywhere in the tree without cycles.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Iterable, Optional, Union

from repro.obs import clock as _clockmod
from repro.obs.logcfg import (
    configure_logging,
    current_stage,
    get_logger,
    set_run_context,
    stage_scope,
)
from repro.obs.metrics import (
    NULL_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    merge_snapshots,
)
from repro.obs.trace import NULL_SPAN, Span, SpanRecord, Tracer

__all__ = [
    "configure_logging",
    "counter",
    "current_stage",
    "disable",
    "enable",
    "enabled",
    "active_lineage",
    "gauge",
    "get_logger",
    "histogram",
    "lineage_recorder",
    "metrics_enabled",
    "metrics_registry",
    "metrics_snapshot",
    "reset",
    "set_run_context",
    "span",
    "stage_scope",
    "traced",
    "tracer",
]


class _State:
    """The process-local toggle every instrumented call site checks."""

    __slots__ = ("tracer", "registry", "metrics_on", "clock",
                 "lineage_rec", "lineage_on")

    def __init__(self):
        self.tracer: Optional[Tracer] = None
        self.registry: Optional[MetricsRegistry] = None
        self.metrics_on = False
        self.clock = _clockmod.monotonic
        self.lineage_rec = None  # LineageRecorder, imported lazily
        self.lineage_on = False


_state = _State()


def _observe_metric(name: str, duration_ms: float) -> None:
    if _state.metrics_on and _state.registry is not None:
        _state.registry.histogram(name).observe(duration_ms)


def _observe_leak(_span_name: str) -> None:
    if _state.metrics_on and _state.registry is not None:
        _state.registry.counter("trace.spans_leaked").inc()


# -- lifecycle ---------------------------------------------------------------
def enable(
    trace: bool = True,
    metrics: bool = True,
    clock: Callable[[], float] = None,
    lineage: bool = False,
) -> None:
    """Turn pillars on (idempotent; existing tracer/registry/recorder kept)."""
    if clock is not None:
        _state.clock = clock
    if trace and _state.tracer is None:
        _state.tracer = Tracer(
            clock=_state.clock, observe=_observe_metric, on_leak=_observe_leak
        )
    if metrics:
        if _state.registry is None:
            _state.registry = MetricsRegistry()
        _state.metrics_on = True
    if lineage:
        if _state.lineage_rec is None:
            from repro.obs.lineage import LineageRecorder

            _state.lineage_rec = LineageRecorder()
        _state.lineage_on = True


def disable() -> None:
    """Turn the pillars off; recorded data stays readable until :func:`reset`."""
    _state.tracer = None
    _state.metrics_on = False
    _state.lineage_on = False


def reset() -> None:
    """Disable and drop all recorded spans, metrics, and lineage (tests)."""
    disable()
    _state.registry = None
    _state.lineage_rec = None
    _state.clock = _clockmod.monotonic


def enabled() -> bool:
    """Whether tracing is on — the cheap guard for hot-path call sites."""
    return _state.tracer is not None


def metrics_enabled() -> bool:
    return _state.metrics_on


def tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` while tracing is disabled."""
    return _state.tracer


def active_lineage():
    """The active lineage recorder, or ``None`` while lineage is off.

    This is the hot-path gate: the pipeline checks ``obs.active_lineage()
    is not None`` once per run, so runs without lineage never fingerprint.
    (Named ``active_lineage`` because the bare name ``lineage`` is taken
    by the :mod:`repro.obs.lineage` submodule.)
    """
    return _state.lineage_rec if _state.lineage_on else None


def lineage_recorder():
    """This run's recorder regardless of the on/off flag (export path)."""
    return _state.lineage_rec


def metrics_registry() -> Optional[MetricsRegistry]:
    """The registry holding this run's metrics (``None`` if never enabled)."""
    return _state.registry


def metrics_snapshot() -> dict:
    """Snapshot of the current registry (empty shape if none exists)."""
    if _state.registry is None:
        return MetricsRegistry().snapshot()
    return _state.registry.snapshot()


# -- tracing -----------------------------------------------------------------
class _MetricOnlySpan:
    """Times a block for a histogram when tracing is off but metrics on."""

    __slots__ = ("_metric", "_t0")

    name = ""

    def __init__(self, metric: str):
        self._metric = metric
        self._t0 = 0.0

    def set(self, **_attrs: Any) -> "_MetricOnlySpan":
        return self

    def __enter__(self) -> "_MetricOnlySpan":
        self._t0 = _state.clock()
        return self

    def __exit__(self, *_exc) -> bool:
        _observe_metric(self._metric, (_state.clock() - self._t0) * 1000.0)
        return False


def span(
    name: str, metric: Optional[str] = None, **attrs: Any
) -> Union[Span, "_MetricOnlySpan"]:
    """Open a span on the active tracer; a free no-op when disabled.

    ``metric`` names a histogram that receives the span's duration in
    milliseconds on close (created on first use).
    """
    if _state.tracer is not None:
        return _state.tracer.span(name, metric=metric, **attrs)
    if metric is not None and _state.metrics_on:
        return _MetricOnlySpan(metric)
    return NULL_SPAN


def traced(
    name: Optional[Union[str, Callable]] = None,
    metric: Optional[str] = None,
    **attrs: Any,
):
    """Decorator form of :func:`span`: one span per call of the function.

    Usable bare (``@traced``, span named after the function) or
    parameterized (``@traced("analysis.fig2")``).  When observability is
    off the wrapped function is called directly — no span, no timing.
    """

    def decorate(fn: Callable) -> Callable:
        span_name = name if isinstance(name, str) else f"fn.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if _state.tracer is None and not (
                metric is not None and _state.metrics_on
            ):
                return fn(*args, **kwargs)
            with span(span_name, metric=metric, **attrs):
                return fn(*args, **kwargs)

        wrapper.__wrapped_span_name__ = span_name
        return wrapper

    if callable(name):
        return decorate(name)
    return decorate


# -- metrics -----------------------------------------------------------------
def counter(name: str) -> Counter:
    """The named counter (a null object while metrics are disabled)."""
    if not _state.metrics_on:
        return NULL_METRIC
    return _state.registry.counter(name)


def gauge(name: str) -> Gauge:
    if not _state.metrics_on:
        return NULL_METRIC
    return _state.registry.gauge(name)


def histogram(name: str, bounds: Optional[Iterable[float]] = None) -> Histogram:
    if not _state.metrics_on:
        return NULL_METRIC
    return _state.registry.histogram(name, bounds)
