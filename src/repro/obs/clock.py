"""The sanctioned monotonic clock.

Every duration the repo measures flows through :func:`monotonic` (or a
span, which uses it internally).  Direct ``time.time()`` /
``time.perf_counter()`` calls outside ``repro/obs/`` and ``benchmarks/``
are a lint finding (``no-bare-timing``): ad-hoc timing reads bypass the
tracer, cannot be attributed to a stage, and are invisible in run
reports.  Keeping the one real clock read here also gives tests a single
seam — most obs classes accept a ``clock=`` callable instead of touching
this module.
"""

from __future__ import annotations

import time

__all__ = ["monotonic", "wall_time"]


def monotonic() -> float:
    """Seconds on a monotonic high-resolution clock (for durations)."""
    return time.perf_counter()


def wall_time() -> float:
    """Seconds since the epoch (for timestamps in exported artifacts)."""
    return time.time()
