"""One logging setup for the whole repo: run-id and stage on every line.

Every module keeps using ``logging.getLogger(__name__)`` (or the
:func:`get_logger` convenience); what changes is that exactly one place —
:func:`configure_logging`, called once by the CLI — installs a handler on
the ``repro`` parent logger with a single format::

    2022-02-24 06:00:00 W [run=1a2b3c4d/ingest] repro.runtime.ingest: ...

The run id and current stage are injected by a :class:`logging.Filter`
reading module-level context that the pipeline updates via
:func:`stage_scope`; modules never format them by hand.  Verbosity comes
from the ``REPRO_LOG`` environment variable (``debug`` / ``info`` /
``warn`` / ``error``) unless an explicit ``verbosity`` argument wins.
"""

from __future__ import annotations

import logging
import os
import sys
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "configure_logging",
    "current_stage",
    "get_logger",
    "set_run_context",
    "stage_scope",
]

ENV_VAR = "REPRO_LOG"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warn": logging.WARNING,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

LOG_FORMAT = (
    "%(asctime)s %(levelname).1s [run=%(run_id)s/%(stage)s] "
    "%(name)s: %(message)s"
)
DATE_FORMAT = "%Y-%m-%d %H:%M:%S"

#: Mutable run context the filter stamps onto every record.
_context = {"run_id": "-", "stage": "-"}


class _RunContextFilter(logging.Filter):
    """Injects ``run_id`` / ``stage`` fields into every log record."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.run_id = _context["run_id"]
        record.stage = _context["stage"]
        return True


def set_run_context(
    run_id: Optional[str] = None, stage: Optional[str] = None
) -> None:
    """Update the fields stamped onto subsequent log lines."""
    if run_id is not None:
        _context["run_id"] = run_id or "-"
    if stage is not None:
        _context["stage"] = stage or "-"


def current_stage() -> str:
    """The stage name log lines are currently attributed to (``-`` if none)."""
    return _context["stage"]


@contextmanager
def stage_scope(stage: str) -> Iterator[None]:
    """Attribute log lines (and nested scopes) to ``stage`` while inside."""
    previous = _context["stage"]
    _context["stage"] = stage or "-"
    try:
        yield
    finally:
        _context["stage"] = previous


def _resolve_level(verbosity: Optional[str]) -> int:
    raw = verbosity if verbosity is not None else os.environ.get(ENV_VAR, "info")
    level = _LEVELS.get(str(raw).strip().lower())
    if level is None:
        # An env-var typo must not kill a run; fall back loudly.
        sys.stderr.write(
            f"repro: unknown {ENV_VAR} level {raw!r}; "
            f"using 'info' (choices: {', '.join(sorted(set(_LEVELS)))})\n"
        )
        return logging.INFO
    return level


def configure_logging(
    verbosity: Optional[str] = None,
    run_id: Optional[str] = None,
    stream=None,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree; returns the parent logger.

    Idempotent: calling it again replaces the previously installed
    handler instead of stacking duplicates, so tests and repeated CLI
    invocations in one process stay single-line.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(_resolve_level(verbosity))
    if run_id is not None:
        set_run_context(run_id=run_id)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(LOG_FORMAT, DATE_FORMAT))
    handler.addFilter(_RunContextFilter())
    for old in [h for h in logger.handlers if getattr(h, "_repro_obs", False)]:
        logger.removeHandler(old)
    handler._repro_obs = True
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """``logging.getLogger`` with the repo's conventions documented in one place.

    Exists so modules can signal "this logger is wired into the obs
    format" without importing ``logging`` themselves; the returned logger
    is the plain stdlib object.
    """
    return logging.getLogger(name)
