"""Data-plane lineage: content fingerprints and the provenance DAG.

The paper's conclusions are longitudinal — prewar vs. wartime, 2021 vs.
2022 — and such claims only hold up when every derived table can be traced
back to its exact inputs.  This module gives every :class:`~repro.tables.
table.Table` entering or leaving a pipeline stage a **stable content
fingerprint**, and folds the stage graph into a deterministic
``provenance.json``:

* :func:`fingerprint_column` hashes a column's *logical* content.  STR
  columns are hashed through their dictionary encoding — canonicalized
  codes plus the UTF-8 pool payload — so fingerprinting a million-row
  string column never materializes a million Python strings.  Two columns
  with equal values always hash equal, even when one carries a superset
  pool inherited from ``take``/``mask``.
* :func:`fingerprint_table` combines per-column fingerprints (in column
  order, names included) into one table fingerprint plus a row count.
* :class:`LineageRecorder` accumulates one node per pipeline stage —
  stage name, status, declared input fingerprints, output fingerprint(s) —
  and renders the DAG as canonical JSON (byte-stable across reruns of the
  same configuration: no wall-clock anywhere) or Graphviz DOT.

Everything here is free when lineage is off: the pipeline checks
``obs.active_lineage() is not None`` once per run, and fingerprinting
happens only on the recorder path.  Like the rest of ``repro.obs``, this module
depends on numpy and the standard library only; tables arrive duck-typed
(``column_names`` / ``column`` / ``n_rows``), never imported.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro import storage

__all__ = [
    "LineageRecorder",
    "PROVENANCE_SCHEMA_VERSION",
    "default_provenance_schema_path",
    "fingerprint_column",
    "fingerprint_table",
    "fingerprint_value",
    "provenance_to_dot",
    "provenance_to_json",
    "render_provenance",
    "validate_provenance",
    "write_provenance",
]

PROVENANCE_SCHEMA_VERSION = 1

#: Hex digits kept from the sha256 digest; 64 bits of fingerprint is far
#: beyond collision risk for the handful of tables one run produces while
#: keeping provenance.json human-diffable.
_FINGERPRINT_LEN = 16


def _hash_str_column(h: "hashlib._Hash", codes: np.ndarray, pool: np.ndarray) -> None:
    """Feed a dictionary-encoded column into ``h`` in canonical form.

    ``take``/``mask`` share the parent's pool, so the same logical values
    can sit behind different (superset) pools.  Canonicalize by remapping
    codes onto the subset of pool entries actually referenced — a pure
    integer operation — then hash the remapped codes and only the used
    strings.  The pool is sorted, so the used subset keeps a deterministic
    order.
    """
    codes = np.ascontiguousarray(codes, dtype=np.int32)
    used = np.unique(codes)
    used_nonneg = used[used >= 0]
    if len(used_nonneg) < len(pool):
        remap = np.searchsorted(used_nonneg, codes)
        remap[codes < 0] = -1
        codes = np.ascontiguousarray(remap, dtype=np.int32)
        pool = pool[used_nonneg]
    h.update(b"codes\x00")
    h.update(codes.tobytes())
    h.update(b"pool\x00")
    for s in pool:
        h.update(s.encode("utf-8"))
        h.update(b"\x00")


def fingerprint_column(column: Any) -> str:
    """A stable hex fingerprint of one column's logical content.

    Covers dtype and values (order-sensitive).  STR columns hash codes and
    pool without decoding; numeric columns hash the raw buffer, so NaN
    payloads and signed zeros are distinguished exactly as the engine's
    byte-identity tests distinguish them.
    """
    h = hashlib.sha256()
    dtype = getattr(column, "dtype", None)
    h.update(str(getattr(dtype, "value", dtype)).encode("utf-8"))
    h.update(b"\x00")
    codes = getattr(column, "codes", None)
    if codes is not None:
        _hash_str_column(h, codes, column.pool)
    else:
        values = np.ascontiguousarray(column.values)
        h.update(str(values.dtype).encode("utf-8"))
        h.update(b"\x00")
        h.update(values.tobytes())
    return h.hexdigest()[:_FINGERPRINT_LEN]


def fingerprint_table(table: Any) -> Dict[str, Any]:
    """Fingerprint a table: per-column digests plus one combined digest.

    The combined digest covers column names, order, and content, so a
    rename, a reorder, or a single changed cell all change it — while the
    per-column map pins *which* columns changed.
    """
    columns: Dict[str, str] = {}
    h = hashlib.sha256()
    for name in table.column_names:
        fp = fingerprint_column(table.column(name))
        columns[name] = fp
        h.update(name.encode("utf-8"))
        h.update(b"\x00")
        h.update(fp.encode("ascii"))
        h.update(b"\x00")
    return {
        "fingerprint": h.hexdigest()[:_FINGERPRINT_LEN],
        "n_rows": int(table.n_rows),
        "columns": columns,
    }


def fingerprint_value(value: Any) -> Optional[Dict[str, Any]]:
    """Fingerprint a stage value, if it is table- or dataset-shaped.

    Tables yield :func:`fingerprint_table`; datasets (anything exposing
    ``ndt`` and ``traces`` tables) yield a combined digest over both, with
    per-table entries under ``tables``.  Anything else — report text,
    scalars — returns ``None`` and is recorded without a fingerprint.
    """
    if hasattr(value, "column_names") and hasattr(value, "n_rows"):
        return fingerprint_table(value)
    ndt = getattr(value, "ndt", None)
    traces = getattr(value, "traces", None)
    if ndt is not None and traces is not None and hasattr(ndt, "column_names"):
        tables = {"ndt": fingerprint_table(ndt), "traces": fingerprint_table(traces)}
        h = hashlib.sha256()
        for name in sorted(tables):
            h.update(name.encode("utf-8"))
            h.update(b"\x00")
            h.update(tables[name]["fingerprint"].encode("ascii"))
            h.update(b"\x00")
        return {
            "fingerprint": h.hexdigest()[:_FINGERPRINT_LEN],
            "n_rows": sum(t["n_rows"] for t in tables.values()),
            "tables": tables,
        }
    return None


class LineageRecorder:
    """Accumulates the provenance DAG for one run.

    One node per executed stage, in pipeline order.  Output fingerprints
    are cached by stage name, so a stage declared as another's input is
    fingerprinted once, not re-hashed per consumer.
    """

    def __init__(self):
        self.run_id = ""
        self.config_key = ""
        self._stages: List[Dict[str, Any]] = []
        self._outputs: Dict[str, Optional[Dict[str, Any]]] = {}

    def __len__(self) -> int:
        return len(self._stages)

    def set_run(self, run_id: str = "", config_key: str = "") -> None:
        """Stamp run identity (config-hash key) onto the provenance doc."""
        if run_id:
            self.run_id = run_id
        if config_key:
            self.config_key = config_key

    def output_fingerprint(self, stage: str) -> Optional[Dict[str, Any]]:
        """The cached output fingerprint of an already-recorded stage."""
        return self._outputs.get(stage)

    def record_stage(
        self,
        name: str,
        value: Any = None,
        inputs: Optional[Dict[str, Any]] = None,
        status: str = "ok",
    ) -> None:
        """Record one stage execution.

        ``inputs`` maps upstream stage names to their values; values for
        stages this recorder already saw are resolved from the fingerprint
        cache without re-hashing.  ``value`` is the stage's own output.
        """
        out = fingerprint_value(value) if value is not None else None
        self._outputs[name] = out
        in_fps: Dict[str, Any] = {}
        for in_name in sorted(inputs or {}):
            if in_name in self._outputs:
                fp = self._outputs[in_name]
            else:
                in_value = (inputs or {})[in_name]
                fp = fingerprint_value(in_value) if in_value is not None else None
            in_fps[in_name] = (
                {"fingerprint": fp["fingerprint"], "n_rows": fp["n_rows"]}
                if fp
                else None
            )
        self._stages.append(
            {
                "stage": name,
                "status": status,
                "inputs": in_fps,
                "output": out,
            }
        )

    def to_provenance(self) -> Dict[str, Any]:
        """The JSON-ready provenance document (schema-pinned)."""
        return {
            "schema_version": PROVENANCE_SCHEMA_VERSION,
            "run_id": self.run_id,
            "config_key": self.config_key,
            "stages": list(self._stages),
        }


def provenance_to_json(data: Dict[str, Any]) -> str:
    """The one canonical byte-stable encoding of a provenance document."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")) + "\n"


def write_provenance(recorder: LineageRecorder, path: str) -> str:
    """Write ``provenance.json`` (canonical form, atomic); returns the path.

    Provenance is the oracle the crash-matrix harness compares against, so
    it gets the full commit discipline: temp file, fsync, rename, checksum
    sidecar.  A killed run leaves either the previous document or none.
    """
    storage.commit_text(
        path,
        provenance_to_json(recorder.to_provenance()),
        label="lineage.provenance",
        sidecar=True,
    )
    return path


# -- rendering ---------------------------------------------------------------
def render_provenance(data: Dict[str, Any]) -> str:
    """A text view of the DAG: one line per stage with in/out digests."""
    lines = [
        f"provenance — run {data.get('run_id') or '-'} "
        f"(config {data.get('config_key') or '-'})"
    ]
    stages = data.get("stages", [])
    if not stages:
        lines.append("  (no stages recorded)")
        return "\n".join(lines)
    for node in stages:
        out = node.get("output")
        out_txt = (
            f"{out['fingerprint']} ({out['n_rows']} rows)" if out else "-"
        )
        ins = node.get("inputs") or {}
        in_txt = ", ".join(
            f"{k}:{v['fingerprint']}" if v else f"{k}:-" for k, v in ins.items()
        ) or "-"
        lines.append(
            f"  {node.get('stage', '?'):<24s} {node.get('status', '?'):<7s} "
            f"in [{in_txt}] -> {out_txt}"
        )
    return "\n".join(lines)


def provenance_to_dot(data: Dict[str, Any]) -> str:
    """The DAG in Graphviz DOT form (``repro obs lineage --dot``)."""
    lines = ["digraph provenance {", "  rankdir=LR;", "  node [shape=box];"]
    for node in data.get("stages", []):
        stage = node.get("stage", "?")
        out = node.get("output")
        label = stage
        if out:
            label += f"\\n{out['fingerprint']}\\n{out['n_rows']} rows"
        color = "" if node.get("status") in ("ok", "cached") else ", color=red"
        lines.append(f'  "{stage}" [label="{label}"{color}];')
        for in_name in node.get("inputs") or {}:
            lines.append(f'  "{in_name}" -> "{stage}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


# -- schema validation -------------------------------------------------------
def default_provenance_schema_path() -> str:
    """``docs/provenance.schema.json`` at the repo root (dev layout)."""
    return str(
        Path(__file__).resolve().parents[3] / "docs" / "provenance.schema.json"
    )


def validate_provenance(
    data: Dict[str, Any], schema: Optional[Dict[str, Any]] = None
) -> List[str]:
    """Check a provenance dict against the checked-in schema."""
    from repro.obs.report import validate_against_schema

    if schema is None:
        with open(default_provenance_schema_path(), "r", encoding="utf-8") as fh:
            schema = json.load(fh)
    return validate_against_schema(data, schema)
