"""The run report: one deterministic JSON + text account of a pipeline run.

At pipeline exit the CLI folds three sources into ``run_report.json``:

* the pipeline's per-stage results (status, attempts, retry latencies,
  rows in/out) — duck-typed from :class:`repro.runtime.pipeline.RunReport`
  so this module never imports the runtime (obs sits below everything);
* the metrics snapshot (checkpoint hits, quarantine counts, kernel
  histograms);
* the tracer's ten hottest spans.

"Deterministic" means structurally: stable key order (``sort_keys``),
stable stage order (pipeline order), a fixed schema
(``docs/run_report.schema.json``) — wall-clock durations of course vary
between runs, which is exactly what ``repro obs diff`` is for.  The
rendered ``run_report.txt`` is the same data as a fixed-width table.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro import storage
from repro.obs.trace import Tracer

__all__ = [
    "SCHEMA_VERSION",
    "build_run_report",
    "default_schema_path",
    "render_run_report",
    "validate_against_schema",
    "validate_run_report",
    "write_run_report",
]

SCHEMA_VERSION = 1

#: Counter names the report surfaces as first-class sections.
_CHECKPOINT_COUNTERS = ("checkpoint.hits", "checkpoint.misses", "checkpoint.saves")
_QUARANTINE_TOTAL = "ingest.rows_quarantined"
_FAULTS_TOTAL = "faults.rows_injected"


def _counter(snapshot: Optional[Dict[str, Any]], name: str) -> int:
    if not snapshot:
        return 0
    return int(snapshot.get("counters", {}).get(name, 0))


def build_run_report(
    pipeline_report,
    run_id: str = "",
    tracer: Optional[Tracer] = None,
    metrics_snapshot: Optional[Dict[str, Any]] = None,
    gates=None,
    injection=None,
    top_n: int = 10,
) -> Dict[str, Any]:
    """Assemble the JSON-ready report dict.

    Parameters
    ----------
    pipeline_report:
        A :class:`~repro.runtime.pipeline.RunReport` (duck-typed: needs
        ``key`` and ``results`` with the StageResult fields).
    gates / injection:
        The ingest :class:`GateResult` mapping and fault
        :class:`InjectionSummary` from the orchestrator, when available —
        they fill the quarantine/faults sections even with metrics off.
    """
    stages: List[Dict[str, Any]] = []
    total_attempts = 0
    total_retries = 0
    wall_s = 0.0
    by_status = {"ok": 0, "cached": 0, "failed": 0, "skipped": 0}
    for r in pipeline_report.results:
        status = r.status.value if hasattr(r.status, "value") else str(r.status)
        by_status[status] = by_status.get(status, 0) + 1
        retries = max(0, r.attempts - 1)
        total_attempts += r.attempts
        total_retries += retries
        wall_s += r.duration_s
        stages.append(
            {
                "name": r.name,
                "status": status,
                "attempts": r.attempts,
                "retries": retries,
                "duration_s": r.duration_s,
                "attempt_durations_s": list(getattr(r, "attempt_durations", [])),
                "rows_in": getattr(r, "rows_in", None),
                "rows_out": getattr(r, "rows_out", None),
                "error": r.error,
            }
        )

    quarantine: Dict[str, Any] = {
        "rows_quarantined": _counter(metrics_snapshot, _QUARANTINE_TOTAL),
        "tables": {},
    }
    if gates:
        for name in sorted(gates):
            rep = gates[name].report
            quarantine["tables"][name] = {
                "n_input": rep.n_input,
                "n_quarantined": rep.n_quarantined,
            }
        quarantine["rows_quarantined"] = sum(
            t["n_quarantined"] for t in quarantine["tables"].values()
        )

    faults: Dict[str, Any] = {
        "rows_injected": _counter(metrics_snapshot, _FAULTS_TOTAL),
        "kinds": {},
    }
    if injection is not None:
        faults["rows_injected"] = injection.total
        faults["kinds"] = {k: injection.counts[k] for k in sorted(injection.counts)}

    checkpoints = {
        name.split(".", 1)[1]: _counter(metrics_snapshot, name)
        for name in _CHECKPOINT_COUNTERS
    }
    # With metrics off, CACHED stages are still checkpoint hits.
    checkpoints["hits"] = max(checkpoints["hits"], by_status.get("cached", 0))

    top_spans: List[Dict[str, Any]] = []
    trace_health = {
        "spans": 0,
        "open": 0,
        "spans_leaked": 0,
        "leaked_names": [],
    }
    if tracer is not None:
        for rec in tracer.top_spans(top_n):
            top_spans.append(
                {
                    "name": rec.name,
                    "duration_s": rec.duration_s,
                    "start_s": rec.start_s,
                    "attrs": {k: rec.attrs[k] for k in sorted(rec.attrs)},
                }
            )
        trace_health = {
            "spans": len(tracer.spans),
            "open": len(tracer.open_spans),
            "spans_leaked": tracer.spans_leaked,
            "leaked_names": tracer.leaked_names(),
        }

    return {
        "schema_version": SCHEMA_VERSION,
        "run_id": run_id,
        "key": pipeline_report.key,
        "ok": bool(pipeline_report.ok),
        "totals": {
            "stages": len(stages),
            "ok": by_status.get("ok", 0),
            "cached": by_status.get("cached", 0),
            "failed": by_status.get("failed", 0),
            "skipped": by_status.get("skipped", 0),
            "attempts": total_attempts,
            "retries": total_retries,
            "wall_s": wall_s,
        },
        "stages": stages,
        "checkpoints": checkpoints,
        "quarantine": quarantine,
        "faults": faults,
        "top_spans": top_spans,
        "trace": trace_health,
        "metrics": metrics_snapshot if metrics_snapshot is not None else {},
    }


# -- rendering ---------------------------------------------------------------
def _fmt_rows(v: Optional[int]) -> str:
    return "-" if v is None else str(v)


def render_run_report(data: Dict[str, Any]) -> str:
    """The fixed-width text table written to ``run_report.txt``.

    Tolerates reports with sections trimmed (hand-edited, produced by
    older versions, or filtered by other tools): a missing section is
    reported as absent rather than crashing the renderer — ``repro obs
    summarize`` must be usable on exactly the malformed artifacts one is
    trying to debug.
    """
    lines: List[str] = []
    header = f"run report — run {data.get('run_id') or '-'}"
    if data.get("key"):
        header += f" (key {data['key']})"
    lines.append(header)
    stages = data.get("stages")
    if stages:
        lines.append(
            f"{'stage':<24s} {'status':<8s} {'att':>3s} {'retry':>5s} "
            f"{'wall_s':>9s} {'rows_in':>9s} {'rows_out':>9s}  error"
        )
        for s in stages:
            error = s.get("error")
            lines.append(
                f"{s.get('name', '?'):<24s} {s.get('status', '?'):<8s} "
                f"{s.get('attempts', 0):>3d} {s.get('retries', 0):>5d} "
                f"{s.get('duration_s', 0.0):>9.3f} "
                f"{_fmt_rows(s.get('rows_in')):>9s} "
                f"{_fmt_rows(s.get('rows_out')):>9s}  "
                f"{error.splitlines()[0] if error else ''}"
            )
            for i, dur in enumerate(s.get("attempt_durations_s", [])):
                if s.get("retries") or s.get("status") == "failed":
                    lines.append(f"{'':<24s}   attempt {i + 1}: {dur:.3f}s")
    else:
        lines.append("(no stages section in this report)")
    t = data.get("totals")
    if t:
        lines.append(
            f"totals: {t.get('stages', 0)} stages ({t.get('ok', 0)} ok, "
            f"{t.get('cached', 0)} cached, {t.get('failed', 0)} failed, "
            f"{t.get('skipped', 0)} skipped); "
            f"{t.get('attempts', 0)} attempts, {t.get('retries', 0)} retries; "
            f"wall {t.get('wall_s', 0.0):.3f}s"
        )
    else:
        lines.append("(no totals section in this report)")
    c = data.get("checkpoints") or {}
    q = data.get("quarantine") or {}
    f = data.get("faults") or {}
    lines.append(
        f"checkpoints: {c.get('hits', 0)} hits / {c.get('misses', 0)} misses / "
        f"{c.get('saves', 0)} saves | "
        f"quarantined rows: {q.get('rows_quarantined', 0)} | "
        f"faults injected: {f.get('rows_injected', 0)}"
    )
    top_spans = data.get("top_spans") or []
    if top_spans:
        lines.append(f"top {len(top_spans)} spans:")
        for i, rec in enumerate(top_spans, 1):
            lines.append(
                f"  {i:>2d}. {rec.get('name', '?'):<32s} "
                f"{rec.get('duration_s', 0.0):>9.4f}s"
            )
    trace = data.get("trace") or {}
    if trace.get("spans"):
        lines.append(
            f"trace: {trace.get('spans', 0)} spans, "
            f"{trace.get('open', 0)} open, "
            f"{trace.get('spans_leaked', 0)} leaked"
        )
    if trace.get("spans_leaked"):
        names = ", ".join(trace.get("leaked_names") or []) or "?"
        lines.append(
            f"WARNING: {trace['spans_leaked']} span(s) closed out of order "
            f"or never closed — leaked: {names}"
        )
    return "\n".join(lines) + "\n"


def write_run_report(data: Dict[str, Any], out_dir: str) -> Dict[str, str]:
    """Write ``run_report.json`` + ``run_report.txt``; returns their paths.

    Both files commit atomically through :mod:`repro.storage`, so a crash
    mid-report leaves the previous run's report (or nothing), never half a
    JSON document a dashboard would choke on.
    """
    json_path = os.path.join(out_dir, "run_report.json")
    txt_path = os.path.join(out_dir, "run_report.txt")
    storage.commit_text(
        json_path,
        json.dumps(data, indent=2, sort_keys=True) + "\n",
        label="report.run_report.json",
    )
    storage.commit_text(
        txt_path, render_run_report(data), label="report.run_report.txt"
    )
    return {"json": json_path, "txt": txt_path}


# -- schema validation -------------------------------------------------------
def default_schema_path() -> str:
    """``docs/run_report.schema.json`` at the repo root (dev layout)."""
    return str(
        Path(__file__).resolve().parents[3] / "docs" / "run_report.schema.json"
    )


_TYPE_MAP = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value: Any, expected: str) -> bool:
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return (
            isinstance(value, (int, float)) and not isinstance(value, bool)
        )
    return isinstance(value, _TYPE_MAP[expected])


def _validate(value: Any, schema: Dict[str, Any], path: str, errors: List[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(value, t) for t in allowed):
            errors.append(
                f"{path or '$'}: expected {'/'.join(allowed)}, "
                f"got {type(value).__name__}"
            )
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path or '$'}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            errors.append(f"{path or '$'}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                errors.append(f"{path or '$'}: missing required key {req!r}")
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in value:
                _validate(value[key], sub, f"{path}.{key}", errors)
        extra = schema.get("additionalProperties")
        if extra is False:
            for key in value:
                if key not in props:
                    errors.append(f"{path or '$'}: unexpected key {key!r}")
        elif isinstance(extra, dict):
            for key in value:
                if key not in props:
                    _validate(value[key], extra, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _validate(item, schema["items"], f"{path}[{i}]", errors)


def validate_against_schema(data: Any, schema: Dict[str, Any]) -> List[str]:
    """Check any value against a JSON schema; returns error strings.

    Implements the schema subset the checked-in files use (type,
    required, properties, items, enum, minimum, additionalProperties) so
    validation needs no third-party dependency.  Shared by the run-report
    and provenance validators.
    """
    errors: List[str] = []
    _validate(data, schema, "", errors)
    return errors


def validate_run_report(
    data: Dict[str, Any], schema: Optional[Dict[str, Any]] = None
) -> List[str]:
    """Check a report dict against ``docs/run_report.schema.json``."""
    if schema is None:
        with open(default_schema_path(), "r", encoding="utf-8") as fh:
            schema = json.load(fh)
    return validate_against_schema(data, schema)
