"""Nested, monotonic-clock spans: the tracing pillar of ``repro.obs``.

A :class:`Tracer` records :class:`SpanRecord` objects on a stack-shaped
timeline: entering a span pushes it, exiting pops it and freezes its end
time, so the records form a well-nested tree (every child interval lies
inside its parent's).  Times are seconds relative to the tracer's epoch
(its construction instant on the monotonic clock), which makes traces
from one run directly comparable and keeps wall-clock jumps out.

Use :class:`Span` through the module-level facade (``obs.span(...)`` /
``@obs.traced``) rather than instantiating it directly — the facade
returns a free no-op when tracing is disabled, which is what keeps the
table-engine hot path within noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.clock import monotonic

__all__ = ["NULL_SPAN", "Span", "SpanRecord", "Tracer"]


@dataclass
class SpanRecord:
    """One completed (or still-open) span on a tracer's timeline."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    end_s: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Elapsed seconds; 0.0 while the span is still open."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready view (attrs sorted for deterministic export)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }


class Span:
    """Context manager recording one interval on a tracer.

    Created by :meth:`Tracer.span`.  Attributes set via :meth:`set` (or
    the constructor kwargs) land in the exported record; an exception
    escaping the body is recorded as ``error`` before re-raising.
    """

    __slots__ = ("_tracer", "_record", "_metric")

    def __init__(self, tracer: "Tracer", record: SpanRecord, metric: Optional[str]):
        self._tracer = tracer
        self._record = record
        self._metric = metric

    @property
    def name(self) -> str:
        return self._record.name

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (rows in/out, retry count, ...); chainable."""
        self._record.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc is not None:
            self._record.attrs.setdefault(
                "error", f"{exc_type.__name__}: {exc}"
            )
        self._tracer._close(self._record, self._metric)
        return False


class _NullSpan:
    """The do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    name = ""

    def set(self, **_attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans for one run.

    Parameters
    ----------
    clock:
        Injectable monotonic clock (tests pass a fake).  The tracer's
        epoch is the clock value at construction; all span times are
        relative to it.
    observe:
        Optional callback ``(metric_name, duration_ms)`` invoked when a
        span created with ``metric=...`` closes — the facade wires this
        to the metrics registry so kernel spans feed histograms without
        the tracer importing metrics.
    on_leak:
        Optional callback ``(span_name)`` invoked when an outer span
        closes over a still-open inner span (the inner span is *leaked*:
        it was force-popped off the stack and its interval will never
        close unless its exit eventually runs out of order).  The facade
        wires this to the ``trace.spans_leaked`` counter.
    """

    def __init__(self, clock=monotonic, observe=None, on_leak=None):
        self._clock = clock
        self._observe = observe
        self._on_leak = on_leak
        self.epoch = clock()
        self.spans: List[SpanRecord] = []
        self._stack: List[int] = []
        self._by_id: Dict[int, SpanRecord] = {}
        self._leaked: Dict[int, str] = {}
        self._hooks: List[Any] = []
        self._next_id = 1

    # -- hooks --------------------------------------------------------------
    def add_hook(self, hook: Any) -> None:
        """Register an object with ``on_open(record)`` / ``on_close(record)``.

        Hooks are how the allocation profiler rides the span lifecycle
        without the tracer importing it; the empty-list check keeps the
        unhooked path free.
        """
        if hook not in self._hooks:
            self._hooks.append(hook)

    def remove_hook(self, hook: Any) -> None:
        if hook in self._hooks:
            self._hooks.remove(hook)

    # -- recording ----------------------------------------------------------
    def span(self, name: str, metric: Optional[str] = None, **attrs: Any) -> Span:
        """Open a span; use as a context manager to close it."""
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            start_s=self._clock() - self.epoch,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(record)
        self._by_id[record.span_id] = record
        self._stack.append(record.span_id)
        if self._hooks:
            for hook in self._hooks:
                hook.on_open(record)
        return Span(self, record, metric)

    def _close(self, record: SpanRecord, metric: Optional[str]) -> None:
        record.end_s = self._clock() - self.epoch
        # Exiting out of order (a leaked inner span) must not corrupt the
        # stack for outer spans: pop through the closing span's id,
        # recording every span popped early as leaked.  A close whose id
        # is no longer on the stack is the other half of the same story —
        # the span was force-popped earlier and its exit finally ran — so
        # it un-leaks rather than wiping the stack for everyone else.
        if record.span_id in self._stack:
            while self._stack:
                popped = self._stack.pop()
                if popped == record.span_id:
                    break
                leaked_rec = self._by_id.get(popped)
                leaked_name = leaked_rec.name if leaked_rec is not None else "?"
                self._leaked[popped] = leaked_name
                if self._on_leak is not None:
                    self._on_leak(leaked_name)
        else:
            self._leaked.pop(record.span_id, None)
        if metric is not None and self._observe is not None:
            self._observe(metric, record.duration_s * 1000.0)
        if self._hooks:
            for hook in self._hooks:
                hook.on_close(record)

    # -- inspection ---------------------------------------------------------
    @property
    def open_spans(self) -> List[SpanRecord]:
        return [s for s in self.spans if s.end_s is None]

    @property
    def spans_leaked(self) -> int:
        """Spans force-popped by an outer close that never closed themselves."""
        return len(self._leaked)

    def leaked_names(self) -> List[str]:
        """Sorted, de-duplicated names of currently-leaked spans."""
        return sorted(set(self._leaked.values()))

    def stack_names(self) -> List[str]:
        """Names of the currently-open span stack, outermost first.

        Safe to call from another thread (the sampler): it snapshots the
        stack list and tolerates ids that close mid-iteration.
        """
        names: List[str] = []
        for span_id in list(self._stack):
            record = self._by_id.get(span_id)
            if record is not None:
                names.append(record.name)
        return names

    def closed_spans(self) -> List[SpanRecord]:
        return [s for s in self.spans if s.end_s is not None]

    def find(self, name: str) -> List[SpanRecord]:
        """All spans with the given name, in start order."""
        return [s for s in self.spans if s.name == name]

    def children(self, span_id: Optional[int]) -> List[SpanRecord]:
        """Direct children of a span id (``None`` for the roots)."""
        return [s for s in self.spans if s.parent_id == span_id]

    def top_spans(self, n: int = 10) -> List[SpanRecord]:
        """The ``n`` longest closed spans, ties broken by start order."""
        closed = self.closed_spans()
        closed.sort(key=lambda s: (-s.duration_s, s.start_s, s.span_id))
        return closed[:n]

    def __repr__(self) -> str:
        return (
            f"Tracer(spans={len(self.spans)}, open={len(self.open_spans)})"
        )
