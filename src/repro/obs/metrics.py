"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry is deliberately boring: plain Python objects, no locks, no
background threads, and a :meth:`MetricsRegistry.snapshot` that is a
deterministic JSON-ready dict (names sorted, bucket labels derived from
the bounds).  Determinism is load-bearing — snapshots are diffed between
runs (``repro obs diff``) and round-tripped through JSON byte-identically
in tests, so a metric may only hold ints, floats, and strings.

Naming convention (see ``docs/OBSERVABILITY.md``): dotted lowercase
``component.measure[_unit]`` — ``ingest.rows_quarantined``,
``kernel.groupby_ms``, ``checkpoint.hits``.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "Counter",
    "DEFAULT_MS_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "diff_snapshots",
    "merge_snapshots",
    "percentile_from_snapshot",
]

Number = Union[int, float]

#: Default histogram bounds, tuned for millisecond timings: sub-ms kernel
#: calls up through multi-minute stages all land in a meaningful bucket.
DEFAULT_MS_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0, 60000.0,
)


class Counter:
    """A monotonically increasing count (rows quarantined, retries, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (n={n})")
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (rows in the current dataset, config scale)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def set(self, v: Number) -> None:
        self.value = v

    def inc(self, n: Number = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max sidecars.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything above the last bound.  Fixed buckets keep snapshots
    mergeable and diffable: two runs with the same bounds compare
    bucket-by-bucket.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "vmin", "vmax")

    def __init__(self, name: str, bounds: Optional[Iterable[float]] = None):
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(
            sorted(float(b) for b in (bounds if bounds is not None else DEFAULT_MS_BUCKETS))
        )
        if not self.bounds:
            raise ValueError(f"histogram {self.name!r} needs at least one bound")
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, v: Number) -> None:
        v = float(v)
        self.bucket_counts[bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.total += v
        if v < self.vmin:
            self.vmin = v
        if v > self.vmax:
            self.vmax = v

    @property
    def mean(self) -> float:
        """Mean of observed values; NaN (not a misleading 0.0) when empty."""
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile (0-100) from the bucket counts.

        Degenerate cases are defined, not guessed: an empty histogram
        returns NaN (there is no sample to report — previously call sites
        improvised zeros), and a one-sample histogram returns that sample
        exactly.  Otherwise the estimate interpolates linearly inside the
        bucket containing the target rank and is clamped to the observed
        [min, max], so it can never leave the data's range.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return float("nan")
        if self.count == 1:
            return self.vmin
        return _percentile_from_buckets(
            q, self.bounds, self.bucket_counts, self.count, self.vmin, self.vmax
        )

    def snapshot(self) -> Dict[str, object]:
        buckets: Dict[str, int] = {}
        for bound, n in zip(self.bounds, self.bucket_counts):
            buckets[f"le_{bound:g}"] = n
        buckets["overflow"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "buckets": buckets,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3g})"


def _percentile_from_buckets(
    q: float,
    bounds: Tuple[float, ...],
    bucket_counts: List[int],
    count: int,
    vmin: float,
    vmax: float,
) -> float:
    """Shared rank-interpolation core for live and snapshotted histograms."""
    target = q / 100.0 * count
    cumulative = 0
    for i, n in enumerate(bucket_counts):
        if n == 0:
            continue
        if cumulative + n >= target:
            # Interpolate within this bucket: its lower edge is the
            # previous bound (or the observed min for the first bucket),
            # its upper edge the bound (or the observed max for overflow).
            lo = bounds[i - 1] if i > 0 else vmin
            hi = bounds[i] if i < len(bounds) else vmax
            lo = max(lo, vmin)
            hi = min(hi, vmax)
            fraction = (target - cumulative) / n
            return min(max(lo + (hi - lo) * fraction, vmin), vmax)
        cumulative += n
    return vmax


def percentile_from_snapshot(hist_snapshot: Dict[str, object], q: float) -> float:
    """The q-th percentile of a snapshotted histogram (offline tools).

    Mirrors :meth:`Histogram.percentile` over the JSON shape written into
    ``metrics.json`` / run reports: NaN for an empty histogram, the single
    sample for n=1, a clamped bucket interpolation otherwise.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    count = int(hist_snapshot.get("count", 0) or 0)
    if count == 0:
        return float("nan")
    vmin = float(hist_snapshot["min"])
    vmax = float(hist_snapshot["max"])
    if count == 1:
        return vmin
    buckets = hist_snapshot.get("buckets", {}) or {}
    bounds: List[float] = []
    counts: List[int] = []
    for label, n in buckets.items():
        if label == "overflow":
            continue
        bounds.append(float(label[len("le_"):]))
        counts.append(int(n))
    order = sorted(range(len(bounds)), key=bounds.__getitem__)
    bounds = [bounds[i] for i in order]
    counts = [counts[i] for i in order]
    counts.append(int(buckets.get("overflow", 0)))
    return _percentile_from_buckets(q, tuple(bounds), counts, count, vmin, vmax)


class _NullMetric:
    """Accepts every metric operation and records nothing.

    Returned by the ``obs`` facade while metrics are disabled so call
    sites never branch: ``obs.counter("x").inc()`` is always valid.
    """

    __slots__ = ()

    name = ""
    value = 0

    def inc(self, _n: Number = 1) -> None:
        return None

    def set(self, _v: Number) -> None:
        return None

    def observe(self, _v: Number) -> None:
        return None

    def percentile(self, _q: float) -> float:
        return float("nan")


NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Get-or-create home of every metric in one run."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create ------------------------------------------------------
    def _check_name(self, name: str, kind: str) -> None:
        if not name:
            raise ValueError("metric name must be a non-empty string")
        for store, other in (
            (self._counters, "counter"),
            (self._gauges, "gauge"),
            (self._histograms, "histogram"),
        ):
            if other != kind and name in store:
                raise ValueError(
                    f"metric {name!r} already registered as a {other}, "
                    f"cannot reuse it as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._check_name(name, "counter")
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._check_name(name, "gauge")
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(
        self, name: str, bounds: Optional[Iterable[float]] = None
    ) -> Histogram:
        if name not in self._histograms:
            self._check_name(name, "histogram")
            self._histograms[name] = Histogram(name, bounds)
        return self._histograms[name]

    # -- snapshots ----------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A deterministic, JSON-ready view of every metric."""
        return {
            "counters": {
                n: self._counters[n].value for n in sorted(self._counters)
            },
            "gauges": {n: self._gauges[n].value for n in sorted(self._gauges)},
            "histograms": {
                n: self._histograms[n].snapshot()
                for n in sorted(self._histograms)
            },
        }

    def to_json(self) -> str:
        """Canonical JSON text of :meth:`snapshot` (byte-stable)."""
        return snapshot_to_json(self.snapshot())

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )


def snapshot_to_json(snapshot: Dict[str, object]) -> str:
    """The one canonical JSON encoding used for snapshots everywhere.

    Sorted keys + fixed separators means encode(decode(text)) == text —
    the byte-identity tests and ``repro obs diff`` both rely on it.
    """
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":")) + "\n"


def _merge_histogram_snapshots(
    name: str, left: Dict[str, object], right: Dict[str, object]
) -> Dict[str, object]:
    lb = left.get("buckets", {}) or {}
    rb = right.get("buckets", {}) or {}
    if set(lb) != set(rb):
        raise ValueError(
            f"histogram {name!r} has mismatched buckets: "
            f"{sorted(set(lb) ^ set(rb))}"
        )
    mins = [s["min"] for s in (left, right) if s.get("min") is not None]
    maxs = [s["max"] for s in (left, right) if s.get("max") is not None]
    return {
        "count": int(left["count"]) + int(right["count"]),
        "sum": float(left["sum"]) + float(right["sum"]),
        "min": min(mins) if mins else None,
        "max": max(maxs) if maxs else None,
        "buckets": {label: int(lb[label]) + int(rb[label]) for label in lb},
    }


def merge_snapshots(
    left: Dict[str, object], right: Dict[str, object]
) -> Dict[str, object]:
    """Combine two registry snapshots into one (multi-process roll-up).

    The merge rules follow each metric kind's semantics:

    * **counters** add — two processes each counting events saw the union;
    * **gauges** are last-writer-wins: ``right`` is the later snapshot, so
      its value stands (a gauge present on only one side keeps that value);
    * **histograms** add bucket-wise (same ``le_*`` labels required, else
      ``ValueError``), with count/sum summed and min/max widened.

    Counter and histogram merging is associative *and* commutative;
    gauges are associative only — the last writer is positional by
    definition.  Output keys are sorted, so merging snapshots and
    snapshotting a merged registry serialize identically.
    """
    lc = left.get("counters", {}) or {}
    rc = right.get("counters", {}) or {}
    lg = left.get("gauges", {}) or {}
    rg = right.get("gauges", {}) or {}
    lh = left.get("histograms", {}) or {}
    rh = right.get("histograms", {}) or {}
    counters = {
        name: lc.get(name, 0) + rc.get(name, 0)
        for name in sorted(set(lc) | set(rc))
    }
    gauges = {
        name: rg[name] if name in rg else lg[name]
        for name in sorted(set(lg) | set(rg))
    }
    histograms: Dict[str, object] = {}
    for name in sorted(set(lh) | set(rh)):
        if name not in lh:
            histograms[name] = rh[name]
        elif name not in rh:
            histograms[name] = lh[name]
        else:
            histograms[name] = _merge_histogram_snapshots(
                name, lh[name], rh[name]
            )
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def diff_snapshots(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, object]:
    """Per-metric deltas between two snapshots.

    Counters and gauges diff numerically; histograms diff on count/sum.
    Metrics present on only one side appear under ``added``/``removed``.
    """
    out: Dict[str, object] = {"counters": {}, "gauges": {}, "histograms": {},
                              "added": [], "removed": []}
    for kind in ("counters", "gauges"):
        b = before.get(kind, {}) or {}
        a = after.get(kind, {}) or {}
        for name in sorted(set(b) | set(a)):
            if name not in b:
                out["added"].append(f"{kind}.{name}")
            elif name not in a:
                out["removed"].append(f"{kind}.{name}")
            elif a[name] != b[name]:
                out[kind][name] = {
                    "before": b[name],
                    "after": a[name],
                    "delta": a[name] - b[name],
                }
    bh = before.get("histograms", {}) or {}
    ah = after.get("histograms", {}) or {}
    for name in sorted(set(bh) | set(ah)):
        if name not in bh:
            out["added"].append(f"histograms.{name}")
        elif name not in ah:
            out["removed"].append(f"histograms.{name}")
        else:
            d_count = ah[name]["count"] - bh[name]["count"]
            d_sum = ah[name]["sum"] - bh[name]["sum"]
            if d_count or d_sum:
                out["histograms"][name] = {
                    "count_delta": d_count,
                    "sum_delta": d_sum,
                }
    return out
