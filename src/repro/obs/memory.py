"""Memory accounting: what bytes each table actually holds.

The north star is production scale — millions of users' measurements in
one process — so "how big is this table, and where did the bytes go" must
be a first-class question.  This module answers it three ways:

* :func:`column_memory` / :func:`table_memory` break a table down into
  per-column byte counts via :attr:`repro.tables.column.Column.nbytes`
  (numpy buffers, dictionary code arrays, pool payloads, decoded caches);
* :func:`record_value_memory` publishes ``table.bytes.<name>`` /
  ``table.rows.<name>`` gauges into the metrics registry — called from
  the pipeline, ingest, and analysis hot paths behind the existing
  free-when-off gate, so a run without ``--metrics`` pays one boolean
  check;
* :func:`peak_rss_bytes` reads the process high-water mark (Linux
  ``ru_maxrss``) for the ``process.peak_rss_bytes`` gauge, putting
  columnar accounting next to what the OS actually charged.

``repro obs mem`` (see :mod:`repro.obs.cli`) renders the top-N columns by
bytes for a freshly built dataset.  Tables are duck-typed — anything with
``column_names`` / ``column`` / ``n_rows`` works — so obs keeps its
no-repro-imports layering.
"""

from __future__ import annotations

import resource
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "ColumnMemory",
    "TableMemory",
    "column_memory",
    "peak_rss_bytes",
    "record_table_memory",
    "record_value_memory",
    "render_memory_report",
    "table_memory",
]


@dataclass(frozen=True)
class ColumnMemory:
    """One column's byte accounting."""

    name: str
    dtype: str
    nbytes: int
    breakdown: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class TableMemory:
    """One table's byte accounting, column by column."""

    name: str
    n_rows: int
    nbytes: int
    columns: List[ColumnMemory] = field(default_factory=list)

    @property
    def bytes_per_row(self) -> float:
        return self.nbytes / self.n_rows if self.n_rows else 0.0


def column_memory(column: Any) -> ColumnMemory:
    """Byte accounting for one column (see :attr:`Column.nbytes`)."""
    dtype = getattr(column, "dtype", None)
    breakdown = {}
    if hasattr(column, "memory_breakdown"):
        breakdown = dict(column.memory_breakdown())
    return ColumnMemory(
        name=column.name,
        dtype=str(getattr(dtype, "value", dtype)),
        nbytes=int(column.nbytes),
        breakdown=breakdown,
    )


def table_memory(table: Any, name: str = "table") -> TableMemory:
    """Byte accounting for a whole table, in column order."""
    columns = [column_memory(table.column(n)) for n in table.column_names]
    return TableMemory(
        name=name,
        n_rows=int(table.n_rows),
        nbytes=sum(c.nbytes for c in columns),
        columns=columns,
    )


def peak_rss_bytes() -> int:
    """The process's peak resident set size in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize so
    the ``process.peak_rss_bytes`` gauge means the same thing everywhere.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return int(peak)


def record_table_memory(name: str, table: Any) -> Optional[TableMemory]:
    """Publish one table's bytes/rows as gauges; no-op when metrics are off.

    Gauge names: ``table.bytes.<name>``, ``table.rows.<name>`` plus the
    process-wide ``process.peak_rss_bytes`` high-water mark.  Returns the
    breakdown when metrics are on (callers may log it), else ``None``.
    """
    from repro import obs

    if not obs.metrics_enabled():
        return None
    mem = table_memory(table, name=name)
    obs.gauge(f"table.bytes.{name}").set(mem.nbytes)
    obs.gauge(f"table.rows.{name}").set(mem.n_rows)
    obs.gauge("process.peak_rss_bytes").set(peak_rss_bytes())
    return mem


def record_value_memory(name: str, value: Any) -> None:
    """Record memory for a stage value: a table, or a dataset's tables.

    Dataset-shaped values (``ndt`` + ``traces``) publish one gauge pair
    per table (``<name>.ndt`` / ``<name>.traces``); non-table values are
    ignored.  Free when metrics are off (one boolean check).
    """
    from repro import obs

    if not obs.metrics_enabled():
        return
    if hasattr(value, "column_names") and hasattr(value, "n_rows"):
        record_table_memory(name, value)
        return
    ndt = getattr(value, "ndt", None)
    traces = getattr(value, "traces", None)
    if ndt is not None and traces is not None and hasattr(ndt, "column_names"):
        record_table_memory(f"{name}.ndt", ndt)
        record_table_memory(f"{name}.traces", traces)


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:,.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    return f"{n:,.1f} GiB"


def render_memory_report(
    tables: List[TableMemory], top: int = 15
) -> str:
    """The ``repro obs mem`` view: totals per table, top-N columns by bytes."""
    lines: List[str] = []
    total = sum(t.nbytes for t in tables)
    lines.append(
        f"memory report — {len(tables)} table(s), {_fmt_bytes(total)} total, "
        f"peak RSS {_fmt_bytes(peak_rss_bytes())}"
    )
    for t in tables:
        lines.append(
            f"  {t.name:<16s} {t.n_rows:>10,d} rows  {_fmt_bytes(t.nbytes):>12s}"
            f"  ({t.bytes_per_row:,.1f} B/row)"
        )
    ranked: List[tuple] = []
    for t in tables:
        for c in t.columns:
            ranked.append((c.nbytes, f"{t.name}.{c.name}", c))
    ranked.sort(key=lambda item: (-item[0], item[1]))
    lines.append(f"top {min(top, len(ranked))} columns by bytes:")
    lines.append(
        f"  {'column':<34s} {'dtype':<6s} {'bytes':>12s} {'share':>7s}  detail"
    )
    for nbytes, label, c in ranked[:top]:
        share = nbytes / total if total else 0.0
        detail = ", ".join(
            f"{k.replace('_bytes', '')}={_fmt_bytes(v)}"
            for k, v in sorted(c.breakdown.items())
            if k.endswith("_bytes") and v
        )
        lines.append(
            f"  {label:<34s} {c.dtype:<6s} {_fmt_bytes(nbytes):>12s} "
            f"{share:>6.1%}  {detail}"
        )
    if len(ranked) > top:
        lines.append(f"  ... {len(ranked) - top} more columns")
    return "\n".join(lines)
