"""Build, validate, render, and write ``profile.json``.

The document is a pure function of the span tree (plus the optional
sampler/allocation sections), serialized with sorted keys — running it
twice over the same trace produces byte-identical files, which is what
lets ``make profile-smoke`` ``cmp`` two builds and lets profiles be
diffed across commits.  ``docs/profile.schema.json`` pins the shape;
validation reuses the zero-dep subset validator from
:mod:`repro.obs.report`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from repro import storage
from repro.obs.report import validate_against_schema
from repro.obs.profile.selftime import (
    SelfTimeProfile,
    render_self_time,
    self_time_profile,
)

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "build_profile_doc",
    "default_schema_path",
    "render_profile",
    "validate_profile",
    "write_profile",
]

PROFILE_SCHEMA_VERSION = 1

#: Entries kept in the per-stage breakdown (full detail stays in the
#: flat ``self_time`` list).
STAGE_TOP_N = 8


def default_schema_path() -> str:
    """``docs/profile.schema.json`` at the repo root (dev layout)."""
    return str(
        Path(__file__).resolve().parents[4] / "docs" / "profile.schema.json"
    )


def build_profile_doc(
    spans: Iterable[Any],
    run_id: str = "",
    source: str = "trace",
    spans_leaked: int = 0,
    leaked_names: Optional[List[str]] = None,
    sampler: Optional[Dict[str, Any]] = None,
    allocs: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The JSON-ready profile document for one trace."""
    profile = self_time_profile(spans)
    root = profile.root_total_s
    self_time = [
        {
            "name": e.name,
            "layer": e.layer,
            "calls": e.calls,
            "total_s": e.total_s,
            "self_s": e.self_s,
            "share": (e.self_s / root) if root > 0 else 0.0,
        }
        for e in profile.entries
    ]
    stages = [
        {
            "stage": b.stage,
            "total_s": b.total_s,
            "self_time": [
                {"name": e.name, "calls": e.calls, "self_s": e.self_s}
                for e in b.entries[:STAGE_TOP_N]
            ],
        }
        for b in profile.stages
    ]
    return {
        "schema_version": PROFILE_SCHEMA_VERSION,
        "run_id": run_id,
        "source": source,
        "trace": {
            "spans": profile.n_spans,
            "open": profile.n_open,
            "spans_leaked": spans_leaked,
            "leaked_names": sorted(leaked_names or []),
        },
        "root_total_s": root,
        "self_time": self_time,
        "stages": stages,
        "sampler": sampler
        or {"enabled": False, "samples": 0, "interval_ms": None,
            "distinct_stacks": 0},
        "allocs": allocs or {"enabled": False, "entries": []},
    }


def validate_profile(
    data: Dict[str, Any], schema: Optional[Dict[str, Any]] = None
) -> List[str]:
    """Check a profile dict against ``docs/profile.schema.json``."""
    if schema is None:
        with open(default_schema_path(), "r", encoding="utf-8") as fh:
            schema = json.load(fh)
    return validate_against_schema(data, schema)


def write_profile(data: Dict[str, Any], path: str) -> str:
    """Commit the canonical (sorted-keys) serialization atomically."""
    storage.commit_text(
        path,
        json.dumps(data, indent=2, sort_keys=True) + "\n",
        label="profile.json",
    )
    return path


def _profile_from_doc(data: Dict[str, Any]) -> SelfTimeProfile:
    """Rebuild a renderable profile object from a loaded document."""
    from repro.obs.profile.selftime import SelfTimeEntry

    entries = [
        SelfTimeEntry(
            name=row["name"],
            layer=row["layer"],
            calls=row["calls"],
            total_s=row["total_s"],
            self_s=row["self_s"],
        )
        for row in data.get("self_time", [])
    ]
    trace = data.get("trace", {})
    return SelfTimeProfile(
        entries=entries,
        stages=[],
        root_total_s=data.get("root_total_s", 0.0),
        n_spans=trace.get("spans", 0),
        n_open=trace.get("open", 0),
    )


def _human_bytes(n: int) -> str:
    sign = "-" if n < 0 else ""
    size = float(abs(n))
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024.0 or unit == "GiB":
            return f"{sign}{size:.1f}{unit}"
        size /= 1024.0
    return f"{sign}{size:.1f}GiB"


def render_profile(
    data: Dict[str, Any], top: int = 15, allocs: bool = False
) -> str:
    """Text view of a profile document: header, hotspot table, stage
    roll-up, sampler line, optionally the allocation table."""
    lines: List[str] = []
    run_id = data.get("run_id") or "-"
    lines.append(f"profile — run {run_id} (source: {data.get('source', '?')})")
    trace = data.get("trace", {})
    trace_line = (
        f"spans: {trace.get('spans', 0)}"
        f" ({trace.get('open', 0)} open, "
        f"{trace.get('spans_leaked', 0)} leaked)"
    )
    leaked = trace.get("leaked_names") or []
    if leaked:
        trace_line += f" — leaked: {', '.join(leaked)}"
    lines.append(trace_line)
    lines.append("")
    lines.append(render_self_time(_profile_from_doc(data), top=top))
    stages = data.get("stages") or []
    if stages:
        lines.append("")
        lines.append("per-stage self-time:")
        for block in stages:
            hottest = [
                e for e in block.get("self_time", [])
                if not e["name"].startswith("stage.")
            ][:3]
            detail = ", ".join(
                f"{e['name']} {e['self_s']:.3f}s" for e in hottest
            ) or "-"
            lines.append(
                f"  {block['stage']:<16} {block['total_s']:>9.3f}s  ({detail})"
            )
    sampler = data.get("sampler", {})
    if sampler.get("enabled"):
        lines.append("")
        lines.append(
            f"sampler: {sampler.get('samples', 0)} samples @ "
            f"{sampler.get('interval_ms')}ms, "
            f"{sampler.get('distinct_stacks', 0)} distinct stacks"
        )
    alloc_section = data.get("allocs", {})
    if allocs and alloc_section.get("enabled"):
        lines.append("")
        lines.append(f"{'allocation hotspots':<34} {'calls':>7} "
                     f"{'self':>10} {'total':>10}")
        for row in alloc_section.get("entries", [])[: max(top, 0)]:
            lines.append(
                f"  {row['name']:<32} {row['calls']:>7d} "
                f"{_human_bytes(row['self_bytes']):>10} "
                f"{_human_bytes(row['total_bytes']):>10}"
            )
    return "\n".join(lines) + "\n"


def build_from_trace_file(
    trace_path: str, run_id: str = ""
) -> Dict[str, Any]:
    """Profile an existing trace JSONL (the retroactive path).

    Trace files record spans, not the tracer's leak bookkeeping, so
    ``spans_leaked`` stays 0 here; never-closed spans still show in
    ``trace.open``.  ``source`` is the basename only, keeping the output
    byte-stable regardless of where the trace lives.
    """
    from repro.obs.export import read_spans_jsonl

    spans = read_spans_jsonl(trace_path)
    return build_profile_doc(
        spans, run_id=run_id, source=os.path.basename(trace_path)
    )
