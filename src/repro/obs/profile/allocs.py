"""Allocation profiling attributed to the active span.

:class:`AllocationProfiler` is a tracer *hook* (see
``Tracer.add_hook``): on every span open it snapshots the current traced
heap size, on close it charges the net growth to that span, minus what
its children already claimed — the byte-space analogue of self-time.

The reader is injectable; the default reads
``tracemalloc.get_traced_memory()[0]``, so attribution covers exactly
the allocations tracemalloc sees (Python objects; numpy buffers route
through the allocator domain tracemalloc tracks on CPython ≥3.6).  Net
growth can be negative — a span that frees more than it allocates, e.g.
a drop-columns projection — and is reported as such rather than clamped,
because "this stage releases memory" is a finding, not noise.

Starting/stopping ``tracemalloc`` itself is the
:class:`~repro.obs.profile.ProfileSession`'s job; this class never
touches global state beyond the hook registration, which keeps it
testable with a fake reader and a fake clock-free tracer.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

__all__ = ["AllocationProfiler", "tracemalloc_reader"]


def tracemalloc_reader() -> int:
    """Current size of the traced heap in bytes (0 if not tracing)."""
    import tracemalloc

    return tracemalloc.get_traced_memory()[0]


class _Frame:
    __slots__ = ("span_id", "name", "at_open", "child_bytes")

    def __init__(self, span_id: int, name: str, at_open: int):
        self.span_id = span_id
        self.name = name
        self.at_open = at_open
        self.child_bytes = 0


class AllocationProfiler:
    """Per-span-name net allocation totals, self and inclusive."""

    def __init__(self, read: Optional[Callable[[], int]] = None):
        self._read = read if read is not None else tracemalloc_reader
        self._stack: List[_Frame] = []
        self.totals: Dict[str, Dict[str, int]] = {}

    # -- tracer hook protocol -----------------------------------------------
    def on_open(self, record: Any) -> None:
        self._stack.append(
            _Frame(record.span_id, record.name, self._read())
        )

    def on_close(self, record: Any) -> None:
        # Mirror the tracer's stack discipline: an outer close pops (and
        # finalizes) any frames its leaked children left behind; a stale
        # close whose frame is already gone is ignored.
        if not any(f.span_id == record.span_id for f in self._stack):
            return
        now = self._read()
        while self._stack:
            frame = self._stack.pop()
            total = now - frame.at_open
            self._charge(frame, total)
            if frame.span_id == record.span_id:
                break

    def _charge(self, frame: _Frame, total: int) -> None:
        entry = self.totals.setdefault(
            frame.name, {"calls": 0, "self_bytes": 0, "total_bytes": 0}
        )
        entry["calls"] += 1
        entry["self_bytes"] += total - frame.child_bytes
        entry["total_bytes"] += total
        if self._stack:
            self._stack[-1].child_bytes += total

    # -- export -------------------------------------------------------------
    def entries(self) -> List[Dict[str, Any]]:
        """``allocs.entries`` rows: biggest net self-allocators first."""
        rows = [
            {
                "name": name,
                "calls": t["calls"],
                "self_bytes": t["self_bytes"],
                "total_bytes": t["total_bytes"],
            }
            for name, t in self.totals.items()
        ]
        rows.sort(key=lambda r: (-r["self_bytes"], r["name"]))
        return rows

    def summary(self) -> Dict[str, Any]:
        """The ``allocs`` section of ``profile.json``."""
        return {"enabled": True, "entries": self.entries()}
