"""Deterministic self-time attribution over a tracer's span tree.

Spans record *inclusive* durations: ``stage.experiments`` covers every
kernel that ran inside it.  For hotspot work we want *exclusive* (self)
time — the part of a span's interval not covered by its closed children:

    self(s) = duration(s) − Σ duration(c)  for closed children c of s

Summed over all closed spans the child terms telescope, so in a
well-nested trace the per-name self-times add up to the total duration
of the closed root spans — the invariant the hypothesis suite pins down
and ``profile.json`` consumers may rely on.  Out-of-order exits (leaked
spans that closed late) can push an individual self-time slightly
negative; the aggregate invariant then holds only approximately, which
is one more reason the run report flags leaks.

Everything here is pure post-processing: no clocks, no I/O.  The same
functions serve ``repro obs profile`` (fresh runs), ``repro obs
summarize --top`` (retroactive profiling of trace JSONL), and the
hotspot benchmark gates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "SelfTimeEntry",
    "SelfTimeProfile",
    "StageBreakdown",
    "render_self_time",
    "self_time_profile",
    "span_layer",
]

#: Prefix marking pipeline-stage spans; attribution rolls every span up
#: to its nearest ancestor with this prefix.
STAGE_PREFIX = "stage."


def span_layer(name: str) -> str:
    """The architectural layer a span name belongs to (``plan.filter``
    → ``plan``); names without a dot are their own layer."""
    head, _, _ = name.partition(".")
    return head


@dataclass
class SelfTimeEntry:
    """Aggregated exclusive time for one span name."""

    name: str
    layer: str
    calls: int = 0
    total_s: float = 0.0
    self_s: float = 0.0


@dataclass
class StageBreakdown:
    """Self-time within one pipeline stage, hottest first."""

    stage: str
    total_s: float = 0.0
    entries: List[SelfTimeEntry] = field(default_factory=list)


@dataclass
class SelfTimeProfile:
    """The full attribution result for one trace."""

    entries: List[SelfTimeEntry] = field(default_factory=list)
    stages: List[StageBreakdown] = field(default_factory=list)
    root_total_s: float = 0.0
    n_spans: int = 0
    n_open: int = 0

    def entry(self, name: str) -> Optional[SelfTimeEntry]:
        for e in self.entries:
            if e.name == name:
                return e
        return None

    def self_total_s(self) -> float:
        """Σ self over all names — equals :attr:`root_total_s` when the
        trace is well nested (math.fsum keeps the check stable)."""
        return math.fsum(e.self_s for e in self.entries)


def _as_dict(span: Any) -> Mapping[str, Any]:
    """Accept :class:`~repro.obs.trace.SpanRecord` or exported dicts."""
    if isinstance(span, Mapping):
        return span
    return {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start_s": span.start_s,
        "end_s": span.end_s,
    }


def self_time_profile(spans: Iterable[Any]) -> SelfTimeProfile:
    """Attribute exclusive time per span name, per stage.

    ``spans`` may be tracer records or dicts from trace JSONL.  Only
    closed spans contribute time; open spans are counted so callers can
    surface them.  Output ordering is fully deterministic: entries by
    (−self, name), stages by first start time.
    """
    rows = [_as_dict(s) for s in spans]
    closed = [r for r in rows if r.get("end_s") is not None]
    n_open = len(rows) - len(closed)

    by_id: Dict[int, Mapping[str, Any]] = {r["span_id"]: r for r in rows}
    child_sum: Dict[int, float] = {}
    for r in closed:
        parent = r.get("parent_id")
        if parent is not None:
            dur = r["end_s"] - r["start_s"]
            child_sum[parent] = child_sum.get(parent, 0.0) + dur

    def stage_of(r: Mapping[str, Any]) -> Optional[str]:
        seen = 0
        current: Optional[Mapping[str, Any]] = r
        while current is not None and seen <= len(rows):
            name = current["name"]
            if name.startswith(STAGE_PREFIX):
                return name[len(STAGE_PREFIX):]
            parent = current.get("parent_id")
            current = by_id.get(parent) if parent is not None else None
            seen += 1
        return None

    entries: Dict[str, SelfTimeEntry] = {}
    per_stage: Dict[str, Dict[str, SelfTimeEntry]] = {}
    stage_totals: Dict[str, float] = {}
    stage_first_start: Dict[str, float] = {}
    root_total = 0.0
    for r in closed:
        name = r["name"]
        dur = r["end_s"] - r["start_s"]
        self_s = dur - child_sum.get(r["span_id"], 0.0)
        entry = entries.get(name)
        if entry is None:
            entry = entries[name] = SelfTimeEntry(name=name, layer=span_layer(name))
        entry.calls += 1
        entry.total_s += dur
        entry.self_s += self_s
        if r.get("parent_id") is None:
            root_total += dur
        stage = stage_of(r)
        if stage is not None:
            bucket = per_stage.setdefault(stage, {})
            stage_entry = bucket.get(name)
            if stage_entry is None:
                stage_entry = bucket[name] = SelfTimeEntry(
                    name=name, layer=span_layer(name)
                )
            stage_entry.calls += 1
            stage_entry.total_s += dur
            stage_entry.self_s += self_s
            if name == STAGE_PREFIX + stage:
                stage_totals[stage] = stage_totals.get(stage, 0.0) + dur
                first = stage_first_start.get(stage)
                if first is None or r["start_s"] < first:
                    stage_first_start[stage] = r["start_s"]

    def entry_key(e: SelfTimeEntry) -> Tuple[float, str]:
        return (-e.self_s, e.name)

    ordered = sorted(entries.values(), key=entry_key)
    stages: List[StageBreakdown] = []
    for stage in sorted(
        stage_totals, key=lambda s: (stage_first_start.get(s, 0.0), s)
    ):
        stages.append(
            StageBreakdown(
                stage=stage,
                total_s=stage_totals[stage],
                entries=sorted(per_stage.get(stage, {}).values(), key=entry_key),
            )
        )
    return SelfTimeProfile(
        entries=ordered,
        stages=stages,
        root_total_s=root_total,
        n_spans=len(rows),
        n_open=n_open,
    )


def render_self_time(
    profile: SelfTimeProfile, top: int = 15, title: str = "self-time hotspots"
) -> str:
    """The top-N table shared by ``obs profile``, ``obs summarize``, and
    the run report — fixed-width, deterministic, diff-friendly."""
    lines = [
        f"{title} (top {top} of {len(profile.entries)} span names, "
        f"root total {profile.root_total_s:.3f}s)"
    ]
    header = (
        f"  {'span':<32} {'layer':<9} {'calls':>7} "
        f"{'total_s':>9} {'self_s':>9} {'self%':>6}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    denom = profile.root_total_s
    for entry in profile.entries[: max(top, 0)]:
        share = (entry.self_s / denom * 100.0) if denom > 0 else 0.0
        lines.append(
            f"  {entry.name:<32} {entry.layer:<9} {entry.calls:>7d} "
            f"{entry.total_s:>9.3f} {entry.self_s:>9.3f} {share:>5.1f}%"
        )
    if profile.n_open:
        lines.append(f"  ({profile.n_open} span(s) left open; excluded)")
    return "\n".join(lines)
