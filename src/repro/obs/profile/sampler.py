"""Opt-in statistical stack sampler — zero dependencies, thread-based.

A daemon thread wakes every ``interval_s`` and snapshots the main
thread's Python stack via ``sys._current_frames()``.  Each sample is
folded into a *collapsed stack* — ``frame;frame;...frame`` root-first,
the input format flamegraph tools (``flamegraph.pl``, speedscope,
inferno) consume directly — keyed by count.  When a tracer is attached,
samples are additionally prefixed with the open span stack
(``span:stage.experiments;span:plan.filter;...``) so flamegraphs carry
the same attribution labels as ``profile.json``.

Signal-based sampling (``SIGPROF``) would avoid the thread, but only
works on the main thread of Unix processes and collides with user
handlers; the thread approach is portable and, at the default 5 ms
interval, costs well under the obs stack's 3% overhead budget — and
exactly nothing when not started (see ``benchmarks/test_obs_overhead``).

Samplers are wall-clock estimators, not truth: stacks shorter than the
interval are invisible, and native/numpy interior time shows as the
calling Python frame.  The deterministic self-time layer
(:mod:`repro.obs.profile.selftime`) is the authoritative attribution;
this module answers *which code paths* inside a hot span burn the time.
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.clock import monotonic
from repro.obs.trace import SpanRecord

__all__ = [
    "StackSampler",
    "collapse",
    "collapsed_lines",
    "frame_label",
    "parse_collapsed",
    "samples_to_spans",
    "walk_stack",
]

#: Path fragments marking the repo root — labels keep only what follows.
_PATH_MARKERS = ("/src/repro/", "/repro/", "/benchmarks/", "/tests/")


def frame_label(filename: str, funcname: str) -> str:
    """A compact, machine-independent ``path:func`` frame label."""
    path = filename.replace("\\", "/")
    for marker in _PATH_MARKERS:
        idx = path.rfind(marker)
        if idx >= 0:
            path = path[idx + 1:]
            break
    else:
        path = path.rsplit("/", 1)[-1]
    return f"{path}:{funcname}"


def walk_stack(frame: Any) -> List[str]:
    """Frame labels for ``frame`` and its callers, root-first."""
    labels: List[str] = []
    while frame is not None:
        code = frame.f_code
        labels.append(frame_label(code.co_filename, code.co_name))
        frame = frame.f_back
    labels.reverse()
    return labels


def collapse(labels: Sequence[str]) -> str:
    """One collapsed-stack key: root-first labels joined with ``;``."""
    return ";".join(labels)


def collapsed_lines(counts: Mapping[str, int]) -> List[str]:
    """``stack count`` lines sorted by stack — deterministic output."""
    return [f"{stack} {counts[stack]}" for stack in sorted(counts)]


def parse_collapsed(text: str) -> Dict[str, int]:
    """Inverse of :func:`collapsed_lines` (tolerates blank lines)."""
    counts: Dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        counts[stack] = counts.get(stack, 0) + int(count)
    return counts


def samples_to_spans(
    samples: Iterable[Tuple[float, Sequence[str]]], interval_s: float
) -> List[SpanRecord]:
    """Synthesize one fixed-width span per sampled leaf frame.

    This rides the existing Chrome Trace exporter
    (:func:`repro.obs.export.write_chrome_trace`): each sample becomes a
    ``ph:"X"`` slice of one interval at the sample instant, named after
    the leaf frame with the full stack in ``attrs`` — enough for a
    chrome://tracing strip chart of where samples landed over the run.
    """
    records: List[SpanRecord] = []
    for idx, (at_s, labels) in enumerate(samples):
        leaf = labels[-1] if labels else "<idle>"
        records.append(
            SpanRecord(
                span_id=idx + 1,
                parent_id=None,
                name=f"sample:{leaf}",
                start_s=at_s,
                end_s=at_s + interval_s,
                attrs={"stack": collapse(labels)},
            )
        )
    return records


class StackSampler:
    """Samples the main thread's stack on a daemon thread.

    Parameters
    ----------
    interval_s:
        Target sampling period.  5 ms resolves spans of a few tens of
        milliseconds while staying invisible next to kernel runtimes.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` whose open-span stack
        prefixes every sample (``span:<name>`` pseudo-frames).
    max_samples:
        Hard cap on retained timestamped samples (the collapsed counts
        keep aggregating past it); bounds memory on very long runs.
    """

    def __init__(
        self,
        interval_s: float = 0.005,
        tracer: Optional[Any] = None,
        clock=monotonic,
        max_samples: int = 200_000,
    ):
        self.interval_s = interval_s
        self.counts: Dict[str, int] = {}
        self.samples: List[Tuple[float, List[str]]] = []
        self.n_samples = 0
        self.dropped_samples = 0
        self._tracer = tracer
        self._clock = clock
        self._max_samples = max_samples
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._target_ident: Optional[int] = None
        self._epoch = 0.0

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "StackSampler":
        if self._thread is not None:
            return self
        self._target_ident = threading.main_thread().ident
        self._epoch = self._clock()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-stack-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "StackSampler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None

    # -- sampling -----------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    def sample_once(self, frames: Optional[Mapping[int, Any]] = None) -> List[str]:
        """Take one sample; ``frames`` is injectable for tests.

        Returns the recorded label stack (empty if the target thread had
        no frame — interpreter shutdown or a never-started sampler).
        """
        if frames is None:
            frames = sys._current_frames()
        frame = frames.get(self._target_ident) if self._target_ident else None
        if frame is None:
            return []
        labels = walk_stack(frame)
        if self._tracer is not None:
            span_names = self._tracer.stack_names()
            labels = [f"span:{name}" for name in span_names] + labels
        key = collapse(labels)
        self.counts[key] = self.counts.get(key, 0) + 1
        self.n_samples += 1
        if len(self.samples) < self._max_samples:
            self.samples.append((self._clock() - self._epoch, labels))
        else:
            self.dropped_samples += 1
        return labels

    # -- export -------------------------------------------------------------
    def collapsed_text(self) -> str:
        """The full collapsed-stack file body (flamegraph.pl input)."""
        lines = collapsed_lines(self.counts)
        return "\n".join(lines) + ("\n" if lines else "")

    def to_spans(self) -> List[SpanRecord]:
        return samples_to_spans(self.samples, self.interval_s)

    def summary(self) -> Dict[str, Any]:
        """The ``sampler`` section of ``profile.json``."""
        return {
            "enabled": True,
            "samples": self.n_samples,
            "interval_ms": self.interval_s * 1000.0,
            "distinct_stacks": len(self.counts),
        }
