"""``repro.obs.profile`` — the hotspot profiling pillar.

Three layers, importable independently:

* :mod:`repro.obs.profile.selftime` — deterministic exclusive-time
  attribution over the span tree (pure post-processing, no clocks);
* :mod:`repro.obs.profile.sampler` — opt-in statistical stack sampler
  with collapsed-stack (flamegraph) and Chrome Trace output;
* :mod:`repro.obs.profile.allocs` — tracemalloc-backed net-allocation
  attribution to the active span, via tracer hooks;
* :mod:`repro.obs.profile.report` — the schema-validated, byte-stable
  ``profile.json`` tying them together.

:class:`ProfileSession` is the lifecycle object the CLI drives: it
starts/stops tracemalloc and the sampler thread, registers the
allocation hook on the active tracer, and hands its sections to the
report builder.  Everything stays *free when off*: constructing a
session does nothing; only :meth:`ProfileSession.start` touches global
state, and :meth:`ProfileSession.stop` undoes all of it.  The
``--profile`` flag / ``REPRO_PROFILE`` env var are the only activation
paths.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.obs.profile.allocs import AllocationProfiler
from repro.obs.profile.sampler import StackSampler
from repro.obs.profile.selftime import (
    SelfTimeEntry,
    SelfTimeProfile,
    render_self_time,
    self_time_profile,
)
from repro.obs.profile.report import (
    build_from_trace_file,
    build_profile_doc,
    render_profile,
    validate_profile,
    write_profile,
)

__all__ = [
    "AllocationProfiler",
    "ProfileSession",
    "SelfTimeEntry",
    "SelfTimeProfile",
    "StackSampler",
    "active_profile",
    "build_from_trace_file",
    "build_profile_doc",
    "env_profile_enabled",
    "render_profile",
    "render_self_time",
    "self_time_profile",
    "start_profiling",
    "stop_profiling",
    "validate_profile",
    "write_profile",
]

#: Values of ``REPRO_PROFILE`` that mean "off".
_FALSY = ("", "0", "false", "off", "no")


def env_profile_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` asks for profiling."""
    return os.environ.get("REPRO_PROFILE", "").strip().lower() not in _FALSY


class ProfileSession:
    """One profiling run: sampler thread + allocation hook + bookkeeping.

    Parameters
    ----------
    sample / allocs:
        Enable the statistical sampler and the allocation profiler.
        Self-time attribution needs neither — it is derived from the
        trace itself — so a session with both off still yields a full
        ``profile.json``.
    sample_interval_s:
        Sampler period; see :class:`StackSampler`.
    tracer:
        Tracer to attach to; defaults to the active ``obs`` tracer at
        :meth:`start` time (tracing must be enabled first).
    """

    def __init__(
        self,
        sample: bool = True,
        allocs: bool = True,
        sample_interval_s: float = 0.005,
        tracer: Optional[Any] = None,
    ):
        self._want_sample = sample
        self._want_allocs = allocs
        self._interval_s = sample_interval_s
        self._tracer = tracer
        self.sampler: Optional[StackSampler] = None
        self.allocator: Optional[AllocationProfiler] = None
        self._started_tracemalloc = False
        self._running = False

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "ProfileSession":
        if self._running:
            return self
        if self._tracer is None:
            from repro import obs

            self._tracer = obs.tracer()
        if self._tracer is None:
            from repro.util.errors import ReproError

            raise ReproError(
                "profiling needs tracing: call obs.enable(trace=True) first"
            )
        if self._want_allocs:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
            self.allocator = AllocationProfiler()
            self._tracer.add_hook(self.allocator)
        if self._want_sample:
            self.sampler = StackSampler(
                interval_s=self._interval_s, tracer=self._tracer
            )
            self.sampler.start()
        self._running = True
        return self

    def stop(self) -> "ProfileSession":
        if not self._running:
            return self
        if self.sampler is not None:
            self.sampler.stop()
        if self.allocator is not None and self._tracer is not None:
            self._tracer.remove_hook(self.allocator)
        if self._started_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._started_tracemalloc = False
        self._running = False
        return self

    @property
    def running(self) -> bool:
        return self._running

    # -- report sections ----------------------------------------------------
    def sampler_summary(self) -> Optional[Dict[str, Any]]:
        return self.sampler.summary() if self.sampler is not None else None

    def alloc_summary(self) -> Optional[Dict[str, Any]]:
        return self.allocator.summary() if self.allocator is not None else None

    def collapsed_text(self) -> str:
        return self.sampler.collapsed_text() if self.sampler is not None else ""

    def sample_spans(self) -> List[Any]:
        return self.sampler.to_spans() if self.sampler is not None else []


#: The CLI-driven module-global session (one per process, like the
#: facade's tracer).
_active: Optional[ProfileSession] = None


def start_profiling(**kwargs: Any) -> ProfileSession:
    """Start (or return) the process-global profiling session."""
    global _active
    if _active is not None and _active.running:
        return _active
    _active = ProfileSession(**kwargs).start()
    return _active


def stop_profiling() -> Optional[ProfileSession]:
    """Stop the global session; returns it (data intact) or ``None``."""
    global _active
    session = _active
    _active = None
    if session is not None:
        session.stop()
    return session


def active_profile() -> Optional[ProfileSession]:
    return _active
