"""``repro.obs.live`` — streaming observability: aggregate, detect, serve.

The batch pipeline answers *what happened* after the fact; this package
answers *what is happening* while tests stream in.  Four pieces, layered
so each is independently testable (see ``docs/OBSERVABILITY.md``):

* **mergeable aggregates** (:mod:`~repro.obs.live.window`) — per-(scope,
  metric) sliding-window state built on exact (Shewchuk-expansion)
  sums, so ``merge`` is associative and commutative *bit-for-bit* and
  any chunking of the same rows produces byte-identical snapshots;
* **online degradation detection** (:mod:`~repro.obs.live.detect`) — a
  deterministic change-point engine: sliding Welch's t against a
  prewar baseline (``repro.stats.welch`` on summary moments) plus
  volume rules for the outage signature, raising typed, stable-ID
  alerts with a raise/resolve lifecycle into a schema-validated
  ``alerts.json`` (``docs/alerts.schema.json``);
* **the ingest daemon** (:mod:`~repro.obs.live.daemon` +
  :mod:`~repro.obs.live.source`) — a simulated-clock loop replaying the
  synthetic NDT stream day by day, checkpointing its window state
  through :mod:`repro.storage` so ``repro chaos``-style kills resume
  byte-identically;
* **the health service** (:mod:`~repro.obs.live.service`) — a
  stdlib-only threaded HTTP API (``repro live serve``) with
  snapshot-isolated reads: every tick publishes immutable pre-rendered
  views, so thousands of concurrent readers never block the aggregator
  and never observe a half-updated window.

This package is the repo's one sanctioned **network** seam: the flow
lint (``unsanctioned-network``) flags socket/HTTP use anywhere else in
``src/``.
"""

from repro.obs.live.detect import (
    Alert,
    AlertEngine,
    DetectorConfig,
    MetricRule,
    VolumeRule,
    build_alerts_doc,
    validate_alerts_doc,
)
from repro.obs.live.daemon import LiveDaemon, SimulatedClock
from repro.obs.live.service import HealthService
from repro.obs.live.source import Batch, ReplaySource
from repro.obs.live.window import (
    ExactSum,
    MergeableHistogram,
    MomentState,
    ScopeKey,
    SlidingWindowAggregator,
    WindowConfig,
)

__all__ = [
    "Alert",
    "AlertEngine",
    "Batch",
    "DetectorConfig",
    "ExactSum",
    "HealthService",
    "LiveDaemon",
    "MergeableHistogram",
    "MetricRule",
    "MomentState",
    "ReplaySource",
    "ScopeKey",
    "SimulatedClock",
    "SlidingWindowAggregator",
    "VolumeRule",
    "WindowConfig",
    "build_alerts_doc",
    "validate_alerts_doc",
]
