"""Mergeable sliding-window aggregates with bit-stable merges.

The live aggregator must satisfy a contract the batch kernels never
needed: **chunking invariance**.  Rows arrive in arbitrary batches, get
folded into per-day states, and windows are assembled by merging day
states — yet the resulting snapshot must be byte-identical to a batch
group-by over the same rows, no matter how the stream was chunked.

Plain floating-point accumulation cannot deliver that: ``(a+b)+c`` and
``a+(b+c)`` differ in the low bits, so a classic Welford merge is only
associative up to rounding.  Instead every sum here is carried as a
**Shewchuk expansion** (:class:`ExactSum`) — a short list of
non-overlapping floats whose mathematical sum is *exactly* the running
total.  Adding a value or merging two expansions preserves exactness,
and rendering goes through ``math.fsum`` (correctly rounded), so the
rendered total is a function of the exact mathematical sum alone — the
order and grouping of updates cannot leak into a single bit.

Second moments come from the same machinery: :class:`MomentState` keeps
exact Σx and Σx² (each ``x*x`` is one IEEE multiplication, identical on
every path) and derives mean/variance through one shared formula,
matching :func:`repro.tables.kernels.group_moments_exact` bit-for-bit.
The hypothesis suite in ``tests/obs/live/`` pins all of this down.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.util.errors import ReproError
from repro.util.timeutil import Day

__all__ = [
    "ExactSum",
    "LOSS_BUCKETS",
    "MergeableHistogram",
    "MomentState",
    "RTT_BUCKETS",
    "ScopeKey",
    "SlidingWindowAggregator",
    "TPUT_BUCKETS",
    "WindowConfig",
    "moments_from_sums",
]

#: Histogram bounds per raw metric (inclusive upper edges, one overflow
#: bucket above the last).  Chosen to straddle the calibrated prewar /
#: wartime levels so degradation visibly shifts mass between buckets.
TPUT_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
)
RTT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)
LOSS_BUCKETS: Tuple[float, ...] = (
    0.0, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
)

#: Floor for the log transform: NDT throughput/RTT are positive but a
#: synthetic zero must not produce ``-inf`` moments.
LOG_FLOOR = 1e-6


class ExactSum:
    """An exactly-represented running sum of IEEE-754 doubles.

    The value is carried as a list of non-overlapping *partials* whose
    mathematical sum equals the true sum of everything added — Shewchuk's
    grow-expansion, the same idea behind ``math.fsum``.  Because the
    representation is exact, :meth:`add` and :meth:`merge` are associative
    and commutative in the strongest sense: any order of any grouping of
    the same values renders (:meth:`value`) to the identical double.
    """

    __slots__ = ("partials",)

    def __init__(self, partials: Optional[Iterable[float]] = None):
        self.partials: List[float] = list(partials) if partials else []

    def add(self, x: float) -> None:
        """Fold one finite double into the expansion (exact, no rounding)."""
        partials = self.partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def merge(self, other: "ExactSum") -> None:
        """Fold another expansion in; exactness is preserved."""
        for p in other.partials:
            self.add(p)

    def value(self) -> float:
        """The correctly-rounded double nearest the exact sum."""
        return math.fsum(self.partials)

    def copy(self) -> "ExactSum":
        return ExactSum(self.partials)

    def to_state(self) -> List[float]:
        """JSON-ready checkpoint form (floats round-trip via repr)."""
        return list(self.partials)

    @classmethod
    def from_state(cls, state: Sequence[float]) -> "ExactSum":
        return cls(float(p) for p in state)

    def __repr__(self) -> str:
        return f"ExactSum({self.value()!r})"


def moments_from_sums(n: int, s1: float, s2: float) -> Tuple[float, float]:
    """(mean, sample variance) from rendered Σx and Σx².

    The one shared formula both the streaming and the batch side use —
    bit-identical inputs therefore give bit-identical moments.  Variance
    is clamped at zero: with exact sums the textbook ``(S2 - S1*S1/n)``
    form can only go negative by the final rounding of the subtraction.
    """
    if n <= 0:
        return float("nan"), float("nan")
    mean = s1 / n
    if n < 2:
        return mean, float("nan")
    var = (s2 - s1 * s1 / n) / (n - 1)
    return mean, max(var, 0.0)


class MomentState:
    """Mergeable count/mean/var/min/max over the finite values of a stream.

    NaNs are skipped (matching the batch kernels' NaN-ignoring contract);
    Σx and Σx² are exact (:class:`ExactSum`), so :meth:`merge` is
    associative/commutative bit-for-bit and any chunking of the same
    rows yields an identical :meth:`snapshot`.
    """

    __slots__ = ("n", "sum", "sumsq", "vmin", "vmax")

    def __init__(self):
        self.n = 0
        self.sum = ExactSum()
        self.sumsq = ExactSum()
        self.vmin = math.inf
        self.vmax = -math.inf

    def update(self, v: float) -> None:
        v = float(v)
        if math.isnan(v):
            return
        self.n += 1
        self.sum.add(v)
        self.sumsq.add(v * v)
        if v < self.vmin:
            self.vmin = v
        if v > self.vmax:
            self.vmax = v

    def update_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.update(v)

    def merge(self, other: "MomentState") -> None:
        self.n += other.n
        self.sum.merge(other.sum)
        self.sumsq.merge(other.sumsq)
        if other.vmin < self.vmin:
            self.vmin = other.vmin
        if other.vmax > self.vmax:
            self.vmax = other.vmax

    def copy(self) -> "MomentState":
        out = MomentState()
        out.merge(self)
        return out

    @property
    def mean(self) -> float:
        return moments_from_sums(self.n, self.sum.value(), self.sumsq.value())[0]

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); NaN below two observations."""
        return moments_from_sums(self.n, self.sum.value(), self.sumsq.value())[1]

    def snapshot(self) -> Dict[str, object]:
        s1 = self.sum.value()
        s2 = self.sumsq.value()
        mean, var = moments_from_sums(self.n, s1, s2)
        return {
            "count": self.n,
            "sum": s1,
            "sumsq": s2,
            "mean": mean if self.n else None,
            "var": var if self.n >= 2 else None,
            "min": self.vmin if self.n else None,
            "max": self.vmax if self.n else None,
        }

    def to_state(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "sum": self.sum.to_state(),
            "sumsq": self.sumsq.to_state(),
            "min": None if self.n == 0 else self.vmin,
            "max": None if self.n == 0 else self.vmax,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "MomentState":
        out = cls()
        out.n = int(state["n"])
        out.sum = ExactSum.from_state(state["sum"])
        out.sumsq = ExactSum.from_state(state["sumsq"])
        out.vmin = math.inf if state["min"] is None else float(state["min"])
        out.vmax = -math.inf if state["max"] is None else float(state["max"])
        return out

    def __repr__(self) -> str:
        return f"MomentState(n={self.n}, mean={self.mean:.4g})"


class MergeableHistogram:
    """Fixed-bucket histogram whose merge is exact bucket-wise addition.

    Same bucket semantics as :class:`repro.obs.metrics.Histogram`
    (inclusive upper edges + overflow), but the sum sidecar is an
    :class:`ExactSum` so merged snapshots stay chunking-invariant.
    Merging histograms with different bounds is a hard error — silently
    rebinning would fabricate data.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "vmin", "vmax")

    def __init__(self, bounds: Iterable[float]):
        self.bounds: Tuple[float, ...] = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise ValueError("MergeableHistogram needs at least one bound")
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = ExactSum()
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, v: float) -> None:
        v = float(v)
        if math.isnan(v):
            return
        self.bucket_counts[bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.total.add(v)
        if v < self.vmin:
            self.vmin = v
        if v > self.vmax:
            self.vmax = v

    def merge(self, other: "MergeableHistogram") -> None:
        if self.bounds != other.bounds:
            raise ReproError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        self.count += other.count
        self.total.merge(other.total)
        if other.vmin < self.vmin:
            self.vmin = other.vmin
        if other.vmax > self.vmax:
            self.vmax = other.vmax

    def snapshot(self) -> Dict[str, object]:
        buckets: Dict[str, int] = {}
        for bound, n in zip(self.bounds, self.bucket_counts):
            buckets[f"le_{bound:g}"] = n
        buckets["overflow"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total.value(),
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "buckets": buckets,
        }

    def to_state(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "total": self.total.to_state(),
            "min": None if self.count == 0 else self.vmin,
            "max": None if self.count == 0 else self.vmax,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "MergeableHistogram":
        out = cls(state["bounds"])
        out.bucket_counts = [int(n) for n in state["bucket_counts"]]
        out.count = int(state["count"])
        out.total = ExactSum.from_state(state["total"])
        out.vmin = math.inf if state["min"] is None else float(state["min"])
        out.vmax = -math.inf if state["max"] is None else float(state["max"])
        return out


#: (metric column, histogram bounds); the log streams ride on the raw
#: columns and carry moments only.
RAW_METRICS: Tuple[Tuple[str, Tuple[float, ...]], ...] = (
    ("tput_mbps", TPUT_BUCKETS),
    ("min_rtt_ms", RTT_BUCKETS),
    ("loss_rate", LOSS_BUCKETS),
)
LOG_METRICS: Tuple[Tuple[str, str], ...] = (
    ("log_tput_mbps", "tput_mbps"),
    ("log_min_rtt_ms", "min_rtt_ms"),
)


def log_transform(v: float) -> float:
    """The detector's variance-stabilizing transform (NaN passes through)."""
    if math.isnan(v):
        return v
    return math.log(max(v, LOG_FLOOR))


@dataclass(frozen=True)
class ScopeKey:
    """One aggregation scope: the national view or a (kind, name) slice."""

    kind: str  # "national" | "oblast" | "asn" | "city" | "site"
    name: str  # "" for national

    def label(self) -> str:
        return self.kind if self.kind == "national" else f"{self.kind}:{self.name}"

    @classmethod
    def from_label(cls, label: str) -> "ScopeKey":
        if label == "national":
            return cls("national", "")
        kind, _, name = label.partition(":")
        return cls(kind, name)


class KeyState:
    """All per-scope state for one day: moments + histograms + row count."""

    __slots__ = ("rows", "moments", "hists")

    def __init__(self):
        self.rows = 0  # every ingested row, NaN metrics included
        self.moments: Dict[str, MomentState] = {
            name: MomentState() for name, _ in RAW_METRICS
        }
        self.moments.update(
            {name: MomentState() for name, _ in LOG_METRICS}
        )
        self.hists: Dict[str, MergeableHistogram] = {
            name: MergeableHistogram(bounds) for name, bounds in RAW_METRICS
        }

    def update(self, tput: float, rtt: float, loss: float) -> None:
        self.rows += 1
        self.moments["tput_mbps"].update(tput)
        self.moments["min_rtt_ms"].update(rtt)
        self.moments["loss_rate"].update(loss)
        self.moments["log_tput_mbps"].update(log_transform(tput))
        self.moments["log_min_rtt_ms"].update(log_transform(rtt))
        self.hists["tput_mbps"].observe(tput)
        self.hists["min_rtt_ms"].observe(rtt)
        self.hists["loss_rate"].observe(loss)

    def merge(self, other: "KeyState") -> None:
        self.rows += other.rows
        for name, m in other.moments.items():
            self.moments[name].merge(m)
        for name, h in other.hists.items():
            self.hists[name].merge(h)

    def copy(self) -> "KeyState":
        out = KeyState()
        out.merge(self)
        return out

    def snapshot(self, histograms: bool = True) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rows": self.rows,
            "metrics": {n: m.snapshot() for n, m in sorted(self.moments.items())},
        }
        if histograms:
            out["histograms"] = {
                n: h.snapshot() for n, h in sorted(self.hists.items())
            }
        return out

    def to_state(self) -> Dict[str, object]:
        return {
            "rows": self.rows,
            "moments": {n: m.to_state() for n, m in sorted(self.moments.items())},
            "hists": {n: h.to_state() for n, h in sorted(self.hists.items())},
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "KeyState":
        out = cls()
        out.rows = int(state["rows"])
        for name, mstate in state["moments"].items():
            out.moments[name] = MomentState.from_state(mstate)
        for name, hstate in state["hists"].items():
            out.hists[name] = MergeableHistogram.from_state(hstate)
        return out


@dataclass(frozen=True)
class WindowConfig:
    """Shape of the sliding aggregation.

    ``window_days`` is the service's "current health" horizon;
    ``recent_days`` the outage rules' trailing reference;
    ``baseline_start``/``baseline_end`` the prewar comparison window the
    metric rules test against (the paper's prewar period by default).
    """

    window_days: int = 3
    recent_days: int = 7
    baseline_start: str = "2022-01-01"
    baseline_end: str = "2022-02-23"

    def __post_init__(self) -> None:
        if self.window_days < 1:
            raise ValueError(f"window_days must be >= 1, got {self.window_days}")
        if self.recent_days < 1:
            raise ValueError(f"recent_days must be >= 1, got {self.recent_days}")

    @property
    def baseline_ordinals(self) -> range:
        lo = Day.of(self.baseline_start).ordinal
        hi = Day.of(self.baseline_end).ordinal
        return range(lo, hi + 1)

    def retain_days(self) -> int:
        """How many trailing day-states the aggregator must keep."""
        return max(self.window_days, self.recent_days + 1)


class SlidingWindowAggregator:
    """Per-(scope, metric) sliding-window state over a day-bucketed stream.

    Rows land in per-day :class:`KeyState` buckets; windows are assembled
    by merging day buckets, which is exact, so **any** chunking of the
    same rows produces byte-identical window snapshots.  Day buckets
    older than the retention horizon are folded into the compacted
    baseline (when inside the baseline period) or dropped — the live
    daemon's memory footprint is bounded by ``retain_days × scopes``,
    not by stream length.
    """

    def __init__(self, config: WindowConfig = WindowConfig()):
        self.config = config
        #: day ordinal → scope label → KeyState (the retained tail)
        self.days: Dict[int, Dict[str, KeyState]] = {}
        #: compacted baseline-period state (days evicted from the tail)
        self.baseline_compact: Dict[str, KeyState] = {}
        #: ordinals already folded into ``baseline_compact``
        self.baseline_days_compacted = 0
        self.rows_ingested = 0
        self.last_day: Optional[int] = None

    # -- ingest --------------------------------------------------------------
    def ingest(
        self,
        day: int,
        scopes: Sequence[ScopeKey],
        tput: Sequence[float],
        rtt: Sequence[float],
        loss: Sequence[float],
        scope_rows: Sequence[Sequence[int]],
    ) -> None:
        """Fold one batch of rows for one day into the day's buckets.

        ``scopes[k]`` owns the row indices ``scope_rows[k]`` — one row
        usually lands in several scopes (national + its oblast + its AS
        + its city + its site).  Values are plain sequences/arrays of
        floats; NaNs are skipped per metric.
        """
        day = int(day)
        bucket = self.days.setdefault(day, {})
        for key, rows in zip(scopes, scope_rows):
            state = bucket.get(key.label())
            if state is None:
                state = bucket[key.label()] = KeyState()
            for i in rows:
                state.update(float(tput[i]), float(rtt[i]), float(loss[i]))
                self.rows_ingested += 1
        if self.last_day is None or day > self.last_day:
            self.last_day = day

    def close_day(self, day: int) -> None:
        """Advance the horizon past ``day``: evict/compact stale buckets."""
        day = int(day)
        if self.last_day is None or day > self.last_day:
            self.last_day = day
        cutoff = day - self.config.retain_days() + 1
        baseline = self.config.baseline_ordinals
        for old in sorted(d for d in self.days if d < cutoff):
            bucket = self.days.pop(old)
            if old in baseline:
                for label, state in bucket.items():
                    target = self.baseline_compact.get(label)
                    if target is None:
                        target = self.baseline_compact[label] = KeyState()
                    target.merge(state)
                self.baseline_days_compacted += 1

    # -- windows -------------------------------------------------------------
    def _merge_days(self, ordinals: Iterable[int]) -> Dict[str, KeyState]:
        out: Dict[str, KeyState] = {}
        for d in sorted(ordinals):
            bucket = self.days.get(d)
            if not bucket:
                continue
            for label, state in bucket.items():
                target = out.get(label)
                if target is None:
                    out[label] = state.copy()
                else:
                    target.merge(state)
        return out

    def window_state(self, day: int, days: Optional[int] = None) -> Dict[str, KeyState]:
        """Merged per-scope state of the ``days`` (default config) ending at ``day``."""
        n = self.config.window_days if days is None else int(days)
        lo = day - n + 1
        return self._merge_days(range(lo, day + 1))

    def day_state(self, day: int) -> Dict[str, KeyState]:
        """The single-day bucket (empty dict when the day saw no rows)."""
        return self.days.get(int(day), {})

    def baseline_state(self) -> Dict[str, KeyState]:
        """Merged prewar-baseline state: compacted head + retained tail."""
        tail = [d for d in self.days if d in self.config.baseline_ordinals]
        merged = self._merge_days(tail)
        for label, state in self.baseline_compact.items():
            target = merged.get(label)
            if target is None:
                merged[label] = state.copy()
            else:
                target.merge(state)
        return merged

    def baseline_daily_counts(self) -> Dict[str, float]:
        """Mean rows/day per scope over the baseline period seen so far."""
        n_days = self.baseline_days_compacted + len(
            [d for d in self.days if d in self.config.baseline_ordinals]
        )
        if n_days == 0:
            return {}
        totals: Dict[str, int] = {}
        for label, state in self.baseline_state().items():
            totals[label] = state.rows
        return {label: rows / n_days for label, rows in totals.items()}

    def recent_state(self, day: int) -> Dict[str, KeyState]:
        """Trailing ``recent_days`` window *excluding* ``day`` itself."""
        lo = day - self.config.recent_days
        return self._merge_days(range(lo, day))

    def recent_daily_counts(self, day: int) -> Dict[str, float]:
        """Mean rows/day per scope over the trailing reference window."""
        lo = day - self.config.recent_days
        present = [d for d in range(lo, day) if d in self.days]
        if not present:
            return {}
        out: Dict[str, int] = {}
        for d in present:
            for label, state in self.days[d].items():
                out[label] = out.get(label, 0) + state.rows
        return {label: rows / len(present) for label, rows in out.items()}

    # -- snapshots / checkpoints ---------------------------------------------
    def snapshot(self, day: Optional[int] = None) -> Dict[str, object]:
        """Canonical JSON-ready view of the window ending at ``day``."""
        day = day if day is not None else self.last_day
        scopes = self.window_state(day) if day is not None else {}
        return {
            "schema_version": 1,
            "day": Day(day).iso() if day is not None else None,
            "window_days": self.config.window_days,
            "rows_ingested": self.rows_ingested,
            "scopes": {
                label: state.snapshot() for label, state in sorted(scopes.items())
            },
        }

    def to_state(self) -> Dict[str, object]:
        return {
            "config": {
                "window_days": self.config.window_days,
                "recent_days": self.config.recent_days,
                "baseline_start": self.config.baseline_start,
                "baseline_end": self.config.baseline_end,
            },
            "days": {
                str(d): {
                    label: state.to_state()
                    for label, state in sorted(bucket.items())
                }
                for d, bucket in sorted(self.days.items())
            },
            "baseline_compact": {
                label: state.to_state()
                for label, state in sorted(self.baseline_compact.items())
            },
            "baseline_days_compacted": self.baseline_days_compacted,
            "rows_ingested": self.rows_ingested,
            "last_day": self.last_day,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "SlidingWindowAggregator":
        cfg = state["config"]
        out = cls(
            WindowConfig(
                window_days=int(cfg["window_days"]),
                recent_days=int(cfg["recent_days"]),
                baseline_start=cfg["baseline_start"],
                baseline_end=cfg["baseline_end"],
            )
        )
        for d, bucket in state["days"].items():
            out.days[int(d)] = {
                label: KeyState.from_state(s) for label, s in bucket.items()
            }
        out.baseline_compact = {
            label: KeyState.from_state(s)
            for label, s in state["baseline_compact"].items()
        }
        out.baseline_days_compacted = int(state["baseline_days_compacted"])
        out.rows_ingested = int(state["rows_ingested"])
        out.last_day = state["last_day"]
        if out.last_day is not None:
            out.last_day = int(out.last_day)
        return out
