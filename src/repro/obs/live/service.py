"""The health service: a stdlib threaded HTTP API over live state.

``repro live serve`` binds :class:`HealthService` to a
:class:`~repro.obs.live.daemon.LiveDaemon`: every day close publishes a
fresh set of **immutable, pre-rendered** JSON views, swapped in with one
atomic reference assignment.  Request threads read whatever view-set
reference they grabbed — snapshot isolation without read locks — so
thousands of concurrent readers never block the ingest loop and never
observe a half-updated window.  Request latencies land in the obs
histograms (``live.request_ms``) and gate through ``BENCH_live.json``.

This module (with the rest of ``repro/obs/live/``) is the repo's one
sanctioned network seam; the flow lint's ``unsanctioned-network`` rule
flags socket/HTTP use anywhere else under ``src/``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import unquote
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.obs.live.daemon import LiveDaemon
from repro.obs.live.detect import Alert
from repro.obs.live.window import ScopeKey
from repro.obs.metrics import snapshot_to_json
from repro.util.timeutil import Day

__all__ = ["HealthService"]


def _render(doc: object) -> bytes:
    """Canonical JSON bytes (same dialect as ``obs.snapshot_to_json``)."""
    return (
        json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


class _Handler(BaseHTTPRequestHandler):
    """One GET handler; the service instance hangs off the server."""

    server_version = "repro-live/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt: str, *args: object) -> None:
        pass  # request logging goes through obs counters instead

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        service: "HealthService" = self.server.service  # type: ignore[attr-defined]
        with obs.span("live.request", metric="live.request_ms", path=self.path):
            status, body = service.respond(self.path)
        obs.counter(f"live.http.{status}").inc()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class HealthService:
    """Snapshot-isolated read API over a live daemon's state.

    Endpoints: ``/healthz``, ``/metrics`` (rendered per request from the
    current obs registry), ``/oblasts``, ``/oblast/<name>``, ``/alerts``,
    and ``/sites`` when a site registry was provided.  Everything else
    is a 404 with a JSON error body.
    """

    def __init__(
        self,
        daemon: LiveDaemon,
        host: str = "127.0.0.1",
        port: int = 0,
        sites: Optional[List[Dict[str, object]]] = None,
    ):
        self.daemon = daemon
        self.host = host
        self.port = port
        self._sites = sites
        self._views: Dict[str, bytes] = {}
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        daemon.subscribe(self._on_day_close)
        self.publish()  # serve an initial (possibly empty) view-set

    # -- view publication ----------------------------------------------------
    def _on_day_close(self, day: int, changes: List[Alert]) -> None:
        self.publish()

    def publish(self) -> None:
        """Render the full view-set and swap it in atomically."""
        daemon = self.daemon
        agg = daemon.agg
        day = agg.last_day
        views: Dict[str, bytes] = {}
        window = agg.window_state(day) if day is not None else {}
        oblasts = sorted(
            ScopeKey.from_label(label).name
            for label in window
            if label.startswith("oblast:")
        )
        views["/healthz"] = _render(
            {
                "status": "ok",
                "day": Day(day).iso() if day is not None else None,
                "days_processed": daemon.days_processed,
                "rows_ingested": agg.rows_ingested,
                "window_days": agg.config.window_days,
                "active_alerts": len(daemon.engine.active),
                "oblasts": len(oblasts),
            }
        )
        views["/alerts"] = _render(daemon.alerts_doc())
        views["/oblasts"] = _render(
            {
                "day": Day(day).iso() if day is not None else None,
                "oblasts": {
                    name: window[f"oblast:{name}"].snapshot(histograms=False)
                    for name in oblasts
                },
            }
        )
        for name in oblasts:
            views[f"/oblast/{name}"] = _render(
                {
                    "day": Day(day).iso() if day is not None else None,
                    "oblast": name,
                    "window": window[f"oblast:{name}"].snapshot(),
                }
            )
        national = window.get("national")
        views["/national"] = _render(
            {
                "day": Day(day).iso() if day is not None else None,
                "window": national.snapshot() if national is not None else None,
            }
        )
        if self._sites is not None:
            views["/sites"] = _render({"sites": self._sites})
        self._views = views  # atomic swap: readers keep their old reference

    # -- request handling ----------------------------------------------------
    def respond(self, path: str) -> Tuple[int, bytes]:
        # Percent-decode after stripping the query: oblast names carry
        # spaces and apostrophes ("Kiev City"), which clients must encode.
        path = unquote(path.split("?", 1)[0]).rstrip("/") or "/healthz"
        if path == "/metrics":
            return 200, snapshot_to_json(obs.metrics_snapshot()).encode("utf-8")
        views = self._views  # one reference grab = one consistent snapshot
        body = views.get(path)
        if body is None:
            return 404, _render({"error": "not found", "path": path})
        return 200, body

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind and serve on a daemon thread; returns (host, port)."""
        server = ThreadingHTTPServer((self.host, self.port), _Handler)
        server.daemon_threads = True
        server.service = self  # type: ignore[attr-defined]
        self._server = server
        self.port = server.server_address[1]
        self._thread = threading.Thread(
            target=server.serve_forever, name="repro-live-http", daemon=True
        )
        self._thread.start()
        return self.host, self.port

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "HealthService":
        self.start()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.stop()
