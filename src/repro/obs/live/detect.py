"""Online degradation detection: deterministic change-point alerting.

The engine runs once per simulated day close, over the exact window
aggregates (:mod:`repro.obs.live.window`).  Two rule families:

* :class:`MetricRule` — a sliding Welch's t-test
  (:func:`repro.stats.welch.welch_t_from_moments`, moments only — the
  detector never holds raw samples) comparing the detection window
  ending at the current day against the rolling prewar baseline.  The
  throughput/RTT rules test the *log* streams: NDT per-test throughput
  is heavy-tailed, and in log space the invasion-day level shift is a
  clean mean shift with a direct reading as a geometric-mean change
  (``exp(Δ) − 1``).
* :class:`VolumeRule` — the outage signatures the t-test cannot see.
  The 2022-03-10 national outage presents as a *surge* of tests (users
  probing a broken network) at collapsed throughput, judged against the
  trailing ``recent_days`` window because wartime levels are already
  depressed; a regional blackout (Mariupol) presents as the trailing
  week's volume collapsing against the prewar norm.

Alerts carry stable IDs (``rule:scope:raised-day``), a raise/resolve
lifecycle with hysteresis (``clear_days`` consecutive quiet days to
resolve), and serialize to a canonical ``alerts.json`` validated
against ``docs/alerts.schema.json``.  Because evaluation happens only
at day boundaries over exact sums, the document is byte-identical
across runs *and* across batch chunkings of the same stream.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.live.window import KeyState, ScopeKey, SlidingWindowAggregator
from repro.stats.welch import welch_t_from_moments
from repro.util.errors import ReproError
from repro.util.timeutil import Day

__all__ = [
    "Alert",
    "AlertEngine",
    "DetectorConfig",
    "MetricRule",
    "VolumeRule",
    "build_alerts_doc",
    "default_alerts_schema_path",
    "validate_alerts_doc",
]


@dataclass(frozen=True)
class MetricRule:
    """Welch's-t change rule for one moment stream.

    Fires when the detection window differs from the prewar baseline at
    ``alpha`` significance *and* the effect size clears ``min_effect``
    in ``direction`` — significance alone would page on tiny shifts once
    windows grow large.  For ``log_*`` streams the effect is the
    geometric change ``exp(mean_delta) - 1``; for raw streams it is the
    relative change against the baseline mean.
    """

    rule_id: str
    metric: str
    direction: str  # "drop" | "rise"
    severity: str = "critical"
    alpha: float = 0.05
    min_effect: float = 0.10
    min_count: int = 25
    min_baseline_count: int = 100
    #: Detection window in days.  1 = react the day a shift lands (the
    #: invasion-day timing requirement); longer windows trade latency
    #: for the sample size regional scopes need to reach significance.
    window_days: int = 1
    scope_kinds: Tuple[str, ...] = ("national", "oblast")

    def __post_init__(self) -> None:
        if self.direction not in ("drop", "rise"):
            raise ValueError(f"direction must be drop|rise, got {self.direction!r}")

    def evaluate(
        self, window: KeyState, baseline: KeyState
    ) -> Optional[Dict[str, object]]:
        """Evidence dict when firing for this scope today, else None."""
        win = window.moments.get(self.metric)
        base = baseline.moments.get(self.metric)
        if win is None or base is None:
            return None
        if win.n < self.min_count or base.n < self.min_baseline_count:
            return None
        win_mean, win_var = win.mean, win.variance
        base_mean, base_var = base.mean, base.variance
        if math.isnan(win_var) or math.isnan(base_var):
            return None
        if win_var + base_var == 0.0:
            return None
        result = welch_t_from_moments(
            base.n, base_mean, base_var, win.n, win_mean, win_var
        )
        delta = win_mean - base_mean
        if self.metric.startswith("log_"):
            effect = math.expm1(delta)
        elif base_mean != 0.0:
            effect = delta / abs(base_mean)
        else:
            return None
        fired = result.p_value < self.alpha and (
            effect <= -self.min_effect
            if self.direction == "drop"
            else effect >= self.min_effect
        )
        if not fired:
            return None
        return {
            "metric": self.metric,
            "direction": self.direction,
            "p_value": result.p_value,
            "t": result.statistic,
            "df": result.df,
            "effect": effect,
            "window_count": win.n,
            "window_mean": win_mean,
            "baseline_count": base.n,
            "baseline_mean": base_mean,
        }


@dataclass(frozen=True)
class VolumeRule:
    """Test-volume rule: outage surge or blackout collapse.

    ``kind="surge"``: today's row count is at least ``count_factor``
    times the trailing daily mean *and* today's mean throughput is at
    most ``tput_factor`` of the trailing mean — the paper's 03-10
    signature (retry storm over a broken network).  ``kind="collapse"``:
    the trailing week's volume (including today) fell to at most
    ``count_factor`` of the prewar weekly norm — a region going dark.
    """

    rule_id: str
    kind: str  # "surge" | "collapse"
    count_factor: float
    tput_factor: Optional[float] = None
    severity: str = "critical"
    min_reference_daily: float = 1.0
    min_reference_weekly: float = 5.0
    scope_kinds: Tuple[str, ...] = ("national", "oblast")

    def __post_init__(self) -> None:
        if self.kind not in ("surge", "collapse"):
            raise ValueError(f"kind must be surge|collapse, got {self.kind!r}")

    def evaluate_surge(
        self,
        day_state: Optional[KeyState],
        recent_state: Optional[KeyState],
        recent_daily_mean: Optional[float],
    ) -> Optional[Dict[str, object]]:
        if day_state is None or recent_state is None or not recent_daily_mean:
            return None
        if recent_daily_mean < self.min_reference_daily:
            return None
        count_ratio = day_state.rows / recent_daily_mean
        if count_ratio < self.count_factor:
            return None
        evidence: Dict[str, object] = {
            "day_rows": day_state.rows,
            "recent_daily_mean": recent_daily_mean,
            "count_ratio": count_ratio,
        }
        if self.tput_factor is not None:
            day_t = day_state.moments["tput_mbps"]
            rec_t = recent_state.moments["tput_mbps"]
            if day_t.n == 0 or rec_t.n == 0:
                return None
            day_mean, rec_mean = day_t.mean, rec_t.mean
            if rec_mean <= 0.0:
                return None
            tput_ratio = day_mean / rec_mean
            if tput_ratio > self.tput_factor:
                return None
            evidence.update(
                {
                    "day_tput_mean": day_mean,
                    "recent_tput_mean": rec_mean,
                    "tput_ratio": tput_ratio,
                }
            )
        return evidence

    def evaluate_collapse(
        self,
        week_rows: int,
        week_days: int,
        baseline_daily_mean: Optional[float],
    ) -> Optional[Dict[str, object]]:
        if not baseline_daily_mean:
            return None
        expected = baseline_daily_mean * week_days
        if expected < self.min_reference_weekly:
            return None
        ratio = week_rows / expected
        if ratio > self.count_factor:
            return None
        return {
            "week_rows": week_rows,
            "week_days": week_days,
            "baseline_weekly_mean": expected,
            "count_ratio": ratio,
        }


@dataclass(frozen=True)
class DetectorConfig:
    """Knobs shared by the default rule set.

    The defaults are calibrated against the synthetic timeline at the
    benchmark scale so the invasion-day throughput shift and the 03-10
    outage both fire on their own day (``docs/OBSERVABILITY.md``).
    """

    clear_days: int = 2
    alpha: float = 0.05
    tput_min_effect: float = 0.10
    tput_window_days: int = 1
    rtt_min_effect: float = 0.15
    rtt_window_days: int = 7
    loss_min_effect: float = 0.50
    loss_window_days: int = 3
    surge_count_factor: float = 1.5
    surge_tput_factor: float = 0.75
    surge_min_daily: float = 30.0
    collapse_count_factor: float = 0.35
    collapse_min_weekly: float = 5.0

    def rules(self) -> Tuple[Tuple[MetricRule, ...], Tuple[VolumeRule, ...]]:
        metric = (
            MetricRule(
                "throughput-degradation",
                "log_tput_mbps",
                "drop",
                severity="critical",
                alpha=self.alpha,
                min_effect=self.tput_min_effect,
                window_days=self.tput_window_days,
            ),
            MetricRule(
                "rtt-degradation",
                "log_min_rtt_ms",
                "rise",
                severity="warning",
                alpha=self.alpha,
                min_effect=self.rtt_min_effect,
                window_days=self.rtt_window_days,
            ),
            MetricRule(
                "loss-degradation",
                "loss_rate",
                "rise",
                severity="warning",
                alpha=self.alpha,
                min_effect=self.loss_min_effect,
                window_days=self.loss_window_days,
            ),
        )
        volume = (
            VolumeRule(
                "outage-surge",
                "surge",
                count_factor=self.surge_count_factor,
                tput_factor=self.surge_tput_factor,
                severity="critical",
                # Below ~30 rows/day a 1.5x day is Poisson noise, not an
                # outage signature; the gate keeps the rule on scopes
                # with enough volume to mean something.
                min_reference_daily=self.surge_min_daily,
                scope_kinds=("national", "oblast"),
            ),
            VolumeRule(
                "volume-collapse",
                "collapse",
                count_factor=self.collapse_count_factor,
                severity="critical",
                min_reference_weekly=self.collapse_min_weekly,
                scope_kinds=("national", "oblast", "city"),
            ),
        )
        return metric, volume


_RULE_KINDS = {
    "throughput-degradation": "degradation",
    "rtt-degradation": "degradation",
    "loss-degradation": "degradation",
    "outage-surge": "outage",
    "volume-collapse": "volume",
}


@dataclass
class Alert:
    """One raise of one rule on one scope; resolves with hysteresis."""

    id: str
    rule: str
    kind: str
    severity: str
    scope: str
    metric: Optional[str]
    raised: str  # ISO day
    resolved: Optional[str] = None
    evidence: Dict[str, object] = field(default_factory=dict)
    clear_streak: int = 0  # consecutive quiet days while active

    @property
    def status(self) -> str:
        return "resolved" if self.resolved is not None else "active"

    def to_doc(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "rule": self.rule,
            "kind": self.kind,
            "severity": self.severity,
            "scope": self.scope,
            "metric": self.metric,
            "raised": self.raised,
            "resolved": self.resolved,
            "status": self.status,
            "evidence": dict(sorted(self.evidence.items())),
        }

    def to_state(self) -> Dict[str, object]:
        state = self.to_doc()
        del state["status"]
        state["clear_streak"] = self.clear_streak
        return state

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "Alert":
        return cls(
            id=state["id"],
            rule=state["rule"],
            kind=state["kind"],
            severity=state["severity"],
            scope=state["scope"],
            metric=state["metric"],
            raised=state["raised"],
            resolved=state["resolved"],
            evidence=dict(state["evidence"]),
            clear_streak=int(state["clear_streak"]),
        )


class AlertEngine:
    """Day-close evaluation of every rule on every eligible scope.

    Detection starts the day after the baseline window ends (the
    baseline itself is never judged against itself).  Active alerts
    resolve after ``clear_days`` consecutive days without their
    condition; a later recurrence raises a *new* alert (new stable ID),
    keeping the full history replayable.
    """

    def __init__(self, config: DetectorConfig = DetectorConfig()):
        self.config = config
        self.metric_rules, self.volume_rules = config.rules()
        self.active: Dict[str, Alert] = {}  # "rule:scope" -> alert
        self.history: List[Alert] = []  # every raise, in raise order
        self.last_evaluated: Optional[int] = None

    # -- evaluation ----------------------------------------------------------
    def required_retention(self) -> int:
        """Day-states the aggregator must retain for the rules to see."""
        return max(rule.window_days for rule in self.metric_rules)

    def _scope_kind(self, label: str) -> str:
        return ScopeKey.from_label(label).kind

    def evaluate_day(self, agg: SlidingWindowAggregator, day: int) -> List[Alert]:
        """Run all rules for one just-closed day; returns state changes.

        Must be called once per day in ascending order; the returned
        list holds alerts that were raised or resolved today.
        """
        day = int(day)
        if self.last_evaluated is not None and day <= self.last_evaluated:
            raise ReproError(
                f"alert engine evaluated out of order: day {day} after "
                f"{self.last_evaluated}"
            )
        self.last_evaluated = day
        if day <= agg.config.baseline_ordinals[-1]:
            return []

        fired: Dict[str, Tuple[object, Dict[str, object]]] = {}
        windows: Dict[int, Dict[str, KeyState]] = {}
        baseline = agg.baseline_state()
        for rule in self.metric_rules:
            window = windows.get(rule.window_days)
            if window is None:
                window = windows[rule.window_days] = agg.window_state(
                    day, days=rule.window_days
                )
            for label, state in window.items():
                if self._scope_kind(label) not in rule.scope_kinds:
                    continue
                base = baseline.get(label)
                if base is None:
                    continue
                evidence = rule.evaluate(state, base)
                if evidence is not None:
                    fired[f"{rule.rule_id}:{label}"] = (rule, evidence)

        day_state = agg.day_state(day)
        recent = agg.recent_state(day)
        recent_counts = agg.recent_daily_counts(day)
        baseline_counts = agg.baseline_daily_counts()
        week = agg.window_state(day, days=agg.config.recent_days)
        for vrule in self.volume_rules:
            if vrule.kind == "surge":
                for label, state in day_state.items():
                    if self._scope_kind(label) not in vrule.scope_kinds:
                        continue
                    evidence = vrule.evaluate_surge(
                        state, recent.get(label), recent_counts.get(label)
                    )
                    if evidence is not None:
                        fired[f"{vrule.rule_id}:{label}"] = (vrule, evidence)
            else:
                # A collapsed scope may be absent from today's states
                # entirely — its absence is the signal — so iterate the
                # scopes the *baseline* knows about.
                for label, base_mean in baseline_counts.items():
                    if self._scope_kind(label) not in vrule.scope_kinds:
                        continue
                    week_state = week.get(label)
                    week_rows = week_state.rows if week_state is not None else 0
                    evidence = vrule.evaluate_collapse(
                        week_rows, agg.config.recent_days, base_mean
                    )
                    if evidence is not None:
                        fired[f"{vrule.rule_id}:{label}"] = (vrule, evidence)

        return self._apply(day, fired)

    def _apply(
        self, day: int, fired: Dict[str, Tuple[object, Dict[str, object]]]
    ) -> List[Alert]:
        iso = Day(day).iso()
        changed: List[Alert] = []
        for key in sorted(fired):
            rule, evidence = fired[key]
            alert = self.active.get(key)
            if alert is not None:
                alert.clear_streak = 0
                continue
            alert = Alert(
                id=f"{key}:{iso}",
                rule=rule.rule_id,
                kind=_RULE_KINDS.get(rule.rule_id, "degradation"),
                severity=rule.severity,
                scope=key.split(":", 1)[1],
                metric=getattr(rule, "metric", None),
                raised=iso,
                evidence=evidence,
            )
            self.active[key] = alert
            self.history.append(alert)
            changed.append(alert)
        for key in sorted(self.active):
            if key in fired:
                continue
            alert = self.active[key]
            alert.clear_streak += 1
            if alert.clear_streak >= self.config.clear_days:
                alert.resolved = iso
                del self.active[key]
                changed.append(alert)
        return changed

    # -- checkpointing -------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        return {
            "config": dataclasses.asdict(self.config),
            "history": [a.to_state() for a in self.history],
            "active": sorted(
                key for key in self.active
            ),  # alerts themselves live in history
            "last_evaluated": self.last_evaluated,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "AlertEngine":
        out = cls(DetectorConfig(**state["config"]))
        out.history = [Alert.from_state(a) for a in state["history"]]
        by_key = {f"{a.rule}:{a.scope}": a for a in out.history}
        out.active = {key: by_key[key] for key in state["active"]}
        out.last_evaluated = state["last_evaluated"]
        if out.last_evaluated is not None:
            out.last_evaluated = int(out.last_evaluated)
        return out


# -- alerts.json -------------------------------------------------------------
def default_alerts_schema_path() -> str:
    """``docs/alerts.schema.json`` at the repo root (dev layout)."""
    return str(Path(__file__).resolve().parents[4] / "docs" / "alerts.schema.json")


def build_alerts_doc(
    engine: AlertEngine, agg: Optional[SlidingWindowAggregator] = None
) -> Dict[str, object]:
    """The canonical alert document (schema: ``docs/alerts.schema.json``).

    Deterministic by construction: alerts sort by (raised, id), floats
    are the exact values the exact aggregation produced, and nothing
    wall-clock-dependent is included.
    """
    alerts = sorted(engine.history, key=lambda a: (a.raised, a.id))
    doc: Dict[str, object] = {
        "schema_version": 1,
        "evaluated_through": (
            Day(engine.last_evaluated).iso()
            if engine.last_evaluated is not None
            else None
        ),
        "counts": {
            "total": len(alerts),
            "active": sum(1 for a in alerts if a.resolved is None),
            "resolved": sum(1 for a in alerts if a.resolved is not None),
        },
        "alerts": [a.to_doc() for a in alerts],
    }
    if agg is not None:
        doc["baseline"] = {
            "start": agg.config.baseline_start,
            "end": agg.config.baseline_end,
        }
        doc["rows_ingested"] = agg.rows_ingested
    return doc


def validate_alerts_doc(
    doc: Dict[str, object], schema: Optional[Dict[str, object]] = None
) -> List[str]:
    """Check an alerts document against ``docs/alerts.schema.json``."""
    from repro.obs.report import validate_against_schema

    if schema is None:
        with open(default_alerts_schema_path(), "r", encoding="utf-8") as fh:
            schema = json.load(fh)
    return validate_against_schema(doc, schema)
