"""The replay source: a day-ordered NDT stream cut into batches.

The live daemon does not read tables; it pulls :class:`Batch` objects —
one day's rows (or a chunk of them) already grouped into aggregation
scopes — from a :class:`ReplaySource` wrapped around the synthetic NDT
table (:data:`repro.ndt.measurement.LIVE_STREAM_COLUMNS` is the
contract).  The cut points are *only* a throughput knob: the exact
aggregation downstream guarantees any ``batch_rows`` produces the same
bytes, and the determinism suite holds it to that.

Days with zero tests still tick (:meth:`ReplaySource.calendar`) — a
silent day is exactly what the volume-collapse rule needs to see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.ndt.measurement import LIVE_STREAM_COLUMNS
from repro.obs.live.window import ScopeKey
from repro.tables.column import NULL_CODE
from repro.tables.table import Table
from repro.util.errors import ReproError
from repro.util.timeutil import Day

__all__ = ["Batch", "ReplaySource", "STUDY_START", "STUDY_END"]

#: Default replay window: the paper's 2022 study timeline
#: (54 prewar + 54 wartime days = the 108-day replay).
STUDY_START = "2022-01-01"
STUDY_END = "2022-04-18"


@dataclass(frozen=True)
class Batch:
    """One chunk of one day's rows, pre-grouped into scopes.

    ``scope_rows[k]`` holds indices into the metric arrays for
    ``scopes[k]``; the national scope owns every row, the others slice
    by label (rows with missing geo land only in national/asn/site).
    """

    day: int
    tput: np.ndarray
    rtt: np.ndarray
    loss: np.ndarray
    scopes: Tuple[ScopeKey, ...]
    scope_rows: Tuple[np.ndarray, ...]

    @property
    def n_rows(self) -> int:
        return len(self.tput)


class ReplaySource:
    """Replays an NDT table's study window day by day, in batches.

    Rows keep their table order within a day, so a given
    ``(start, end, batch_rows)`` slicing is fully deterministic.
    """

    def __init__(
        self,
        table: Table,
        start: str = STUDY_START,
        end: str = STUDY_END,
        batch_rows: int = 0,
    ):
        missing = [c for c in LIVE_STREAM_COLUMNS if c not in table]
        if missing:
            raise ReproError(f"table cannot be streamed; missing columns {missing}")
        if batch_rows < 0:
            raise ReproError(f"batch_rows must be >= 0, got {batch_rows}")
        self.start = Day.of(start).ordinal
        self.end = Day.of(end).ordinal
        if self.end < self.start:
            raise ReproError(f"replay window ends before it starts: {start}..{end}")
        self.batch_rows = batch_rows

        day = np.asarray(table.column("day").values, dtype=np.int64)
        keep = (day >= self.start) & (day <= self.end)
        idx = np.nonzero(keep)[0]
        # Stable day sort preserves table order inside each day.
        idx = idx[np.argsort(day[idx], kind="stable")]
        self._day = day[idx]
        self._tput = np.asarray(table.column("tput_mbps").values, dtype=np.float64)[idx]
        self._rtt = np.asarray(table.column("min_rtt_ms").values, dtype=np.float64)[idx]
        self._loss = np.asarray(table.column("loss_rate").values, dtype=np.float64)[idx]
        self._labels: Dict[str, Tuple[np.ndarray, List[Optional[str]]]] = {}
        for kind, col_name in (("oblast", "oblast"), ("city", "city"), ("site", "site")):
            col = table.column(col_name)
            codes = np.asarray(col.codes, dtype=np.int64)[idx]
            pool = [str(v) for v in col.pool]
            self._labels[kind] = (codes, pool)
        asn = np.asarray(table.column("asn").values, dtype=np.int64)[idx]
        asn_pool_vals, asn_codes = np.unique(asn, return_inverse=True)
        self._labels["asn"] = (
            asn_codes.astype(np.int64),
            [f"AS{int(v)}" for v in asn_pool_vals],
        )
        # Day run boundaries over the sorted rows.
        self._day_slices: Dict[int, Tuple[int, int]] = {}
        if len(self._day):
            boundaries = np.nonzero(np.diff(self._day))[0] + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [len(self._day)]))
            for s, e in zip(starts, ends):
                self._day_slices[int(self._day[s])] = (int(s), int(e))

    @property
    def n_rows(self) -> int:
        return len(self._day)

    def calendar(self) -> range:
        """Every day ordinal in the replay window, silent days included."""
        return range(self.start, self.end + 1)

    def days_with_rows(self) -> List[int]:
        return sorted(self._day_slices)

    def _batch(self, lo: int, hi: int, day: int) -> Batch:
        n = hi - lo
        scopes: List[ScopeKey] = [ScopeKey("national", "")]
        scope_rows: List[np.ndarray] = [np.arange(n, dtype=np.int64)]
        for kind in sorted(self._labels):
            codes, pool = self._labels[kind]
            chunk = codes[lo:hi]
            for code in np.unique(chunk):
                if code == NULL_CODE:
                    continue
                scopes.append(ScopeKey(kind, pool[int(code)]))
                scope_rows.append(np.nonzero(chunk == code)[0].astype(np.int64))
        return Batch(
            day=day,
            tput=self._tput[lo:hi],
            rtt=self._rtt[lo:hi],
            loss=self._loss[lo:hi],
            scopes=tuple(scopes),
            scope_rows=tuple(scope_rows),
        )

    def batches_for_day(self, day: int) -> Iterator[Batch]:
        """The day's rows as one batch, or ``batch_rows``-sized chunks."""
        span = self._day_slices.get(int(day))
        if span is None:
            return
        lo, hi = span
        step = self.batch_rows if self.batch_rows else (hi - lo)
        for s in range(lo, hi, step):
            yield self._batch(s, min(s + step, hi), int(day))

    def __iter__(self) -> Iterator[Tuple[int, List[Batch]]]:
        """(day, batches) for every calendar day, silent days included."""
        for day in self.calendar():
            yield day, list(self.batches_for_day(day))
