"""The ``repro live`` subcommand: replay, serve, smoke.

``replay``  Run the clock-driven daemon over the study window (the full
            108-day timeline by default), checkpointing through
            ``repro.runtime.checkpoint`` when ``--checkpoint-dir`` is
            set, and write the canonical ``alerts.json`` plus the final
            window snapshot under ``--out``.
``serve``   Replay, then serve the health API (``/healthz``,
            ``/metrics``, ``/oblasts``, ``/oblast/<name>``, ``/alerts``,
            ``/sites``) until interrupted (or ``--serve-seconds``).
``smoke``   Short replay → serve on an ephemeral port → probe every
            endpoint → validate ``alerts.json`` against
            ``docs/alerts.schema.json``; exit 1 on any failure.  This is
            what ``make live-smoke`` runs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import List, Optional, Tuple

from repro import obs, storage
from repro.mlab.sites import SiteRegistry
from repro.obs.live.daemon import LiveDaemon
from repro.obs.live.detect import DetectorConfig, validate_alerts_doc
from repro.obs.live.service import HealthService
from repro.obs.live.source import STUDY_END, STUDY_START, ReplaySource
from repro.obs.live.window import WindowConfig
from repro.obs.metrics import snapshot_to_json
from repro.synth.generator import DatasetGenerator, GeneratorConfig
from repro.util.errors import ReproError

__all__ = ["cmd_live", "configure_parser"]


def configure_parser(sub: argparse._SubParsersAction) -> None:
    live = sub.add_parser(
        "live",
        help="live observability: replay the stream, detect, serve health",
        description=(
            "Stream the synthetic NDT timeline through the live "
            "aggregator and alert engine (repro.obs.live); serve the "
            "health API over the resulting windows.  See "
            "docs/OBSERVABILITY.md, 'Live observability'."
        ),
    )
    live_sub = live.add_subparsers(dest="live_command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--start", default=STUDY_START,
            help="first replay day (default: %(default)s)",
        )
        p.add_argument(
            "--end", default=STUDY_END,
            help="last replay day (default: %(default)s)",
        )
        p.add_argument(
            "--batch-rows", type=int, default=0, metavar="N",
            help="ingest chunk size within a day (0 = whole day at once); "
            "any value produces byte-identical aggregates and alerts",
        )
        p.add_argument(
            "--window-days", type=int, default=3,
            help="service health window (default: %(default)s)",
        )
        p.add_argument(
            "--checkpoint-every", type=int, default=7, metavar="DAYS",
            help="checkpoint cadence in closed days (default: %(default)s)",
        )
        p.add_argument(
            "--out", default="results/live",
            help="artifact directory for alerts.json + window.json "
            "(default: %(default)s)",
        )

    rep = live_sub.add_parser(
        "replay", help="replay the study window; write alerts.json"
    )
    common(rep)

    srv = live_sub.add_parser("serve", help="replay, then serve the health API")
    common(srv)
    srv.add_argument("--host", default="127.0.0.1", help="bind address")
    srv.add_argument(
        "--port", type=int, default=8618,
        help="bind port (0 = ephemeral; default: %(default)s)",
    )
    srv.add_argument(
        "--serve-seconds", type=float, default=None, metavar="S",
        help="serve for S seconds then exit (default: until interrupted)",
    )

    smoke = live_sub.add_parser(
        "smoke", help="short replay + serve + probe + schema-validate"
    )
    common(smoke)
    smoke.set_defaults(end="2022-03-12")


def _build_daemon(args) -> Tuple[LiveDaemon, SiteRegistry]:
    config = GeneratorConfig(seed=args.seed, scale=args.scale)
    dataset = DatasetGenerator(config).generate()
    source = ReplaySource(
        dataset.ndt, start=args.start, end=args.end, batch_rows=args.batch_rows
    )
    daemon = LiveDaemon(
        source,
        window_config=WindowConfig(window_days=args.window_days),
        detector_config=DetectorConfig(),
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
    )
    if args.resume and daemon.resume():
        print(
            f"live: resumed from checkpoint at day "
            f"{daemon.clock.today().iso()}",
            file=sys.stderr,
        )
    return daemon, SiteRegistry.from_topology(dataset.topology)


def _write_artifacts(daemon: LiveDaemon, out_dir: str) -> List[str]:
    doc = daemon.alerts_doc()
    errors = validate_alerts_doc(doc)
    if errors:
        raise ReproError(
            "alerts document violates docs/alerts.schema.json: "
            + "; ".join(errors[:5])
        )
    alerts_path = f"{out_dir}/alerts.json"
    storage.commit_text(
        alerts_path, snapshot_to_json(doc), label="live.alerts"
    )
    window_path = f"{out_dir}/window.json"
    storage.commit_text(
        window_path,
        snapshot_to_json(daemon.window_snapshot()),
        label="live.window",
    )
    return [alerts_path, window_path]


def _print_alert_summary(daemon: LiveDaemon) -> None:
    doc = daemon.alerts_doc()
    counts = doc["counts"]
    print(
        f"live: {daemon.days_processed} days, "
        f"{daemon.agg.rows_ingested} rows, "
        f"{counts['total']} alerts ({counts['active']} active, "
        f"{counts['resolved']} resolved)"
    )
    for alert in doc["alerts"]:
        resolved = alert["resolved"] or "-"
        print(
            f"  [{alert['severity']:8s}] {alert['rule']:24s} "
            f"{alert['scope']:24s} {alert['raised']} .. {resolved}"
        )


def _cmd_replay(args) -> int:
    daemon, _sites = _build_daemon(args)
    daemon.run()
    paths = _write_artifacts(daemon, args.out)
    _print_alert_summary(daemon)
    for path in paths:
        print(f"live: wrote {path}", file=sys.stderr)
    return 0


def _probe(base: str, paths: List[str]) -> List[str]:
    """GET every path; returns failure descriptions (empty = all good)."""
    failures = []
    for path in paths:
        try:
            with urllib.request.urlopen(base + path, timeout=10.0) as resp:
                body = resp.read()
                json.loads(body.decode("utf-8"))
        except (urllib.error.URLError, ValueError, OSError) as exc:
            failures.append(f"{path}: {exc}")
    return failures


def _cmd_serve(args) -> int:
    daemon, sites = _build_daemon(args)
    daemon.run()
    service = HealthService(
        daemon, host=args.host, port=args.port, sites=sites.describe()
    )
    host, port = service.start()
    _print_alert_summary(daemon)
    print(f"live: serving on http://{host}:{port}/ (Ctrl-C to stop)")
    try:
        if args.serve_seconds is not None:
            time.sleep(args.serve_seconds)
        else:
            while True:
                time.sleep(3600.0)
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    return 0


def _cmd_smoke(args) -> int:
    daemon, sites = _build_daemon(args)
    daemon.run()
    paths = _write_artifacts(daemon, args.out)
    service = HealthService(daemon, port=0, sites=sites.describe())
    try:
        host, port = service.start()
        base = f"http://{host}:{port}"
        endpoints = ["/healthz", "/metrics", "/oblasts", "/alerts", "/sites",
                     "/national"]
        window = daemon.agg.window_state(daemon.agg.last_day)
        oblast_labels = sorted(
            label for label in window if label.startswith("oblast:")
        )
        if oblast_labels:
            endpoints.append(f"/oblast/{oblast_labels[0].split(':', 1)[1]}")
        failures = _probe(base, endpoints)
    finally:
        service.stop()
    _print_alert_summary(daemon)
    if failures:
        for failure in failures:
            print(f"live: smoke FAILED {failure}", file=sys.stderr)
        return 1
    print(
        f"live: smoke ok ({len(endpoints)} endpoints probed, "
        f"alerts.json schema-valid)"
    )
    for path in paths:
        print(f"live: wrote {path}", file=sys.stderr)
    return 0


def cmd_live(args: argparse.Namespace) -> int:
    handlers = {
        "replay": _cmd_replay,
        "serve": _cmd_serve,
        "smoke": _cmd_smoke,
    }
    return handlers[args.live_command](args)
