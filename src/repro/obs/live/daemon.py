"""The clock-driven ingest loop: replay, aggregate, detect, checkpoint.

One :class:`LiveDaemon` owns a :class:`~repro.obs.live.source.ReplaySource`,
a :class:`~repro.obs.live.window.SlidingWindowAggregator`, and an
:class:`~repro.obs.live.detect.AlertEngine`, and advances a
:class:`SimulatedClock` one day per tick: ingest the day's batches,
close the day, evaluate the alert rules, notify subscribers (the health
service), checkpoint.  Checkpoints go through
:class:`repro.runtime.checkpoint.CheckpointStore` with the JSON codec —
atomic, checksummed, generation-kept — so a kill at *any* announced
crash point (``repro chaos`` style) resumes from the last committed day
boundary and replays forward to byte-identical aggregates and alerts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro import obs
from repro.faults.crashpoints import crash_point
from repro.obs.live.detect import (
    Alert,
    AlertEngine,
    DetectorConfig,
    build_alerts_doc,
)
from repro.obs.live.source import ReplaySource
from repro.obs.live.window import SlidingWindowAggregator, WindowConfig
from repro.runtime.checkpoint import CheckpointStore, config_key
from repro.util.errors import ReproError
from repro.util.timeutil import Day

__all__ = ["LiveDaemon", "SimulatedClock"]

#: Checkpoint stage name (crash points: ``checkpoint.live.state:*``).
STATE_STAGE = "live.state"


class SimulatedClock:
    """A day-granular simulated clock; the daemon's only notion of time."""

    def __init__(self, start_ordinal: int):
        self._ordinal = int(start_ordinal)

    @property
    def ordinal(self) -> int:
        return self._ordinal

    def today(self) -> Day:
        return Day(self._ordinal)

    def advance(self) -> int:
        """Tick to the next day; returns the new ordinal."""
        self._ordinal += 1
        return self._ordinal


class LiveDaemon:
    """Replays the study window day by day with checkpointed state.

    ``checkpoint_dir=None`` runs fully in memory (tests, smoke);
    otherwise every ``checkpoint_every`` closed days commit the full
    (clock, aggregator, engine) state, and :meth:`resume` restores it.
    Subscribers registered via :meth:`subscribe` see every day close
    with the day's alert-state changes — that is the service's feed.
    """

    def __init__(
        self,
        source: ReplaySource,
        window_config: Optional[WindowConfig] = None,
        detector_config: Optional[DetectorConfig] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 7,
        keep: int = 3,
    ):
        self.source = source
        self.agg = SlidingWindowAggregator(window_config or WindowConfig())
        self.engine = AlertEngine(detector_config or DetectorConfig())
        needed = self.engine.required_retention()
        if self.agg.config.retain_days() < needed:
            raise ReproError(
                f"window config retains {self.agg.config.retain_days()} days "
                f"but the detector's longest rule window needs {needed}"
            )
        self.clock = SimulatedClock(source.start)
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.store = (
            CheckpointStore(checkpoint_dir, keep=keep, codec="json")
            if checkpoint_dir
            else None
        )
        self.key = config_key(
            {
                "window": self.agg.config.__dict__,
                "detector": self.engine.config.__dict__,
                "replay": {
                    "start": source.start,
                    "end": source.end,
                    "batch_rows": source.batch_rows,
                    "n_rows": source.n_rows,
                },
            }
        )
        self.days_processed = 0
        self._subscribers: List[Callable[[int, List[Alert]], None]] = []

    # -- wiring --------------------------------------------------------------
    def subscribe(self, callback: Callable[[int, List[Alert]], None]) -> None:
        """Register a day-close listener ``(day_ordinal, changed_alerts)``."""
        self._subscribers.append(callback)

    # -- checkpointing -------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        return {
            "schema_version": 1,
            "next_day": self.clock.ordinal,
            "days_processed": self.days_processed,
            "aggregator": self.agg.to_state(),
            "engine": self.engine.to_state(),
        }

    def restore(self, state: Dict[str, object]) -> None:
        self.agg = SlidingWindowAggregator.from_state(state["aggregator"])
        self.engine = AlertEngine.from_state(state["engine"])
        self.clock = SimulatedClock(int(state["next_day"]))
        self.days_processed = int(state["days_processed"])

    def checkpoint(self) -> Optional[str]:
        if self.store is None:
            return None
        path = self.store.save(self.key, STATE_STAGE, self.to_state())
        obs.counter("live.checkpoints").inc()
        return path

    def resume(self) -> bool:
        """Restore the newest intact checkpoint; False when none exists."""
        if self.store is None or not self.store.has(self.key, STATE_STAGE):
            return False
        self.restore(self.store.load(self.key, STATE_STAGE))
        obs.counter("live.resumes").inc()
        return True

    # -- the loop ------------------------------------------------------------
    def run_day(self, day: int) -> List[Alert]:
        """Ingest and close one day; returns the day's alert changes."""
        with obs.span("live.day", metric="live.day_ms", day=Day(day).iso()):
            rows = 0
            for batch in self.source.batches_for_day(day):
                self.agg.ingest(
                    batch.day,
                    batch.scopes,
                    batch.tput,
                    batch.rtt,
                    batch.loss,
                    batch.scope_rows,
                )
                rows += batch.n_rows
                obs.counter("live.batches").inc()
            obs.counter("live.rows").inc(rows)
            self.agg.close_day(day)
            crash_point(f"live.day.{Day(day).iso()}:closed")
            changes = self.engine.evaluate_day(self.agg, day)
            for alert in changes:
                obs.counter(
                    "live.alerts.raised"
                    if alert.resolved is None
                    else "live.alerts.resolved"
                ).inc()
        for callback in self._subscribers:
            callback(day, changes)
        return changes

    def run(self, until: Optional[str] = None) -> int:
        """Tick from the clock's position to ``until`` (default: replay end).

        Returns the number of days processed this call.  Safe to call
        after :meth:`resume`: the clock restarts at the first day the
        last checkpoint had not yet committed.
        """
        last = self.source.end if until is None else Day.of(until).ordinal
        processed = 0
        while self.clock.ordinal <= last:
            day = self.clock.ordinal
            self.run_day(day)
            self.days_processed += 1
            processed += 1
            self.clock.advance()
            if (
                self.days_processed % self.checkpoint_every == 0
                or self.clock.ordinal > last
            ):
                self.checkpoint()
        return processed

    # -- views ---------------------------------------------------------------
    def alerts_doc(self) -> Dict[str, object]:
        return build_alerts_doc(self.engine, self.agg)

    def window_snapshot(self) -> Dict[str, object]:
        day = self.agg.last_day
        return self.agg.snapshot(day)
