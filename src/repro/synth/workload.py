"""Test arrival process: who tests, from where, on which day.

Combines three calibrated ingredients:

* a joint (city × AS) traffic matrix per period, fitted with IPF so that
  both Table 4's city counts and Table 5's AS counts hold;
* per-city day *shapes* inside each period — the siege of Mariupol zeroes
  its traffic after March 1 (Figure 4), Kharkiv drops after the March 14
  shelling, the March 10 outage produces a national test-count spike
  (Figure 2a), and a mild weekday cycle plus noise covers the rest;
* a year-level volume factor (NDT usage grew from 2021 to 2022, which is
  what raises Table 2's tests-per-connection between the baselines and
  2022).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.conflict.events import EventKind
from repro.conflict.intensity import IntensityModel
from repro.synth.calibration import Calibration
from repro.synth.ipf import iterative_proportional_fit
from repro.topology.builder import Topology
from repro.util.errors import CalibrationError
from repro.util.timeutil import Day, Period

__all__ = ["Workload"]

#: Residual daily traffic share for a city whose population fled a siege.
_SIEGE_FLOOR = 0.03
#: Daily traffic multiplier for a city after heavy shelling.
_SHELLING_FACTOR = 0.45
#: National test-count spike multiplier on an outage day (Figure 2a).
_OUTAGE_SPIKE = 1.8
#: Weekday cycle amplitude (weekend tests are slightly fewer).
_WEEKDAY_DIP = 0.12


class Workload:
    """Per-day (city, AS) test-count expectations for one simulated year."""

    def __init__(
        self,
        topology: Topology,
        calibration: Calibration,
        intensity: IntensityModel,
        first_half: Period,
        second_half: Period,
        wartime: bool,
        volume_factor: float = 1.0,
        second_half_count_drift: Optional[Dict[int, float]] = None,
    ):
        if volume_factor <= 0:
            raise ValueError(f"volume_factor must be positive, got {volume_factor}")
        self._topology = topology
        self._calibration = calibration
        self._intensity = intensity
        self._first_half = first_half
        self._second_half = second_half
        self._wartime = wartime
        self._volume = volume_factor
        self._cities = list(topology.gazetteer.city_names())
        self._eyeballs = sorted(topology.eyeball_asns())
        # Joint matrices: wartime years use (prewar, wartime) targets; the
        # 2021 baseline uses prewar targets for both halves, optionally with
        # per-AS drift (user populations shift even in peacetime).
        self._matrix_first = self._fit_matrix("prewar")
        self._matrix_second = self._fit_matrix(
            "wartime" if wartime else "prewar",
            count_drift=None if wartime else second_half_count_drift,
        )

    # -- traffic matrices -------------------------------------------------------
    def _fit_matrix(
        self, period: str, count_drift: Optional[Dict[int, float]] = None
    ) -> np.ndarray:
        cities = self._cities
        ases = self._eyeballs
        support = np.zeros((len(cities), len(ases)))
        for i, city in enumerate(cities):
            for j, asn in enumerate(ases):
                if asn in self._topology.coverage[city]:
                    support[i, j] = 1.0

        row_targets = np.array(
            [getattr(self._calibration.city(c), period).count for c in cities]
        )
        col_targets = np.zeros(len(ases))
        calibrated_total = 0.0
        for j, asn in enumerate(ases):
            cal = self._calibration.asys(asn)
            if cal is not None:
                col_targets[j] = getattr(cal, period).count
                calibrated_total += col_targets[j]
        leftover = row_targets.sum() - calibrated_total
        if leftover < 0:
            raise CalibrationError(
                f"{period}: AS count targets ({calibrated_total:.0f}) exceed "
                f"city totals ({row_targets.sum():.0f})"
            )
        # Spread the remainder over uncalibrated ASes by their served mass.
        weights = np.zeros(len(ases))
        for j, asn in enumerate(ases):
            if self._calibration.asys(asn) is None:
                weights[j] = sum(
                    getattr(self._calibration.city(c), period).count
                    for c in self._topology.cities_of(asn)
                )
        if weights.sum() > 0:
            col_targets += leftover * weights / weights.sum()
        if count_drift:
            for j, asn in enumerate(ases):
                col_targets[j] *= count_drift.get(asn, 1.0)
            col_targets *= row_targets.sum() / col_targets.sum()
        return iterative_proportional_fit(support, row_targets, col_targets)

    def matrix(self, period_half: str) -> np.ndarray:
        """The fitted (city × AS) matrix for ``"first"`` or ``"second"``."""
        if period_half == "first":
            return self._matrix_first
        if period_half == "second":
            return self._matrix_second
        raise ValueError(f"period_half must be 'first' or 'second', got {period_half!r}")

    # -- day shapes --------------------------------------------------------------
    def _city_day_shape(self, city: str, day: Day) -> float:
        """Relative within-period traffic shape for one city-day."""
        shape = 1.0
        if not self._wartime or day < self._intensity.invasion_day:
            return shape
        for event in self._intensity.timeline:
            if day < event.day or not event.applies_to_city(city):
                continue
            if event.kind is EventKind.SIEGE:
                # Population flees over about a week, then a trickle remains.
                age = day - event.day
                shape = min(shape, max(_SIEGE_FLOOR, 1.0 - age / 6.0))
            elif event.kind is EventKind.SHELLING:
                shape = min(shape, _SHELLING_FACTOR)
        return shape

    def _day_modulation(self, day: Day, rng: np.random.Generator) -> float:
        """City-independent day factor: weekday cycle, outage spike, noise."""
        factor = 1.0 - _WEEKDAY_DIP * (day.weekday() >= 5)
        if self._wartime:
            for event in self._intensity.events_on(day):
                if event.kind is EventKind.OUTAGE:
                    factor *= _OUTAGE_SPIKE
        return factor * float(rng.lognormal(0.0, 0.08))

    # -- the schedule ---------------------------------------------------------------
    def daily_counts(
        self, rng: np.random.Generator
    ) -> List[Tuple[Day, Dict[Tuple[str, int], int]]]:
        """Poisson test counts per (city, AS) for every day of the year.

        Within each half-period, a city's expected total across days matches
        its calibrated count (scaled by the volume factor) regardless of the
        shape events apply — shapes only redistribute traffic across days.
        """
        out: List[Tuple[Day, Dict[Tuple[str, int], int]]] = []
        for half, period, matrix in (
            ("first", self._first_half, self._matrix_first),
            ("second", self._second_half, self._matrix_second),
        ):
            days = period.days()
            modulation = np.array([self._day_modulation(d, rng) for d in days])
            shapes = np.zeros((len(self._cities), len(days)))
            for i, city in enumerate(self._cities):
                shapes[i] = [self._city_day_shape(city, d) for d in days]
            combined = shapes * modulation[None, :]
            norm = combined.sum(axis=1, keepdims=True)
            if (norm == 0).any():
                raise CalibrationError("a city has zero total day-shape mass")
            combined /= norm

            for d_idx, day in enumerate(days):
                counts: Dict[Tuple[str, int], int] = {}
                for i, city in enumerate(self._cities):
                    day_share = combined[i, d_idx]
                    for j, asn in enumerate(self._eyeballs):
                        expected = matrix[i, j] * day_share * self._volume
                        if expected <= 0:
                            continue
                        n = int(rng.poisson(expected))
                        if n > 0:
                            counts[(city, asn)] = n
                out.append((day, counts))
        return out
