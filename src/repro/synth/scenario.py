"""Named scenario presets, including the DESIGN.md ablations.

Each scenario is a :class:`~repro.synth.generator.GeneratorConfig` variant;
the ablation benches generate each variant and verify which paper findings
survive or disappear.
"""

from __future__ import annotations

import enum
from dataclasses import replace

from repro.synth.generator import GeneratorConfig

__all__ = ["Scenario", "scenario_config"]


class Scenario(enum.Enum):
    """Predefined what-if variants of the default simulation."""

    PAPER = "paper"  # the full reproduction
    NO_WAR = "no_war"  # the invasion never happens
    NO_REROUTING = "no_rerouting"  # war degrades metrics but routes never move
    UNIFORM_DAMAGE = "uniform_damage"  # damage spread evenly across zones
    UNIFORM_CLIENTS = "uniform_clients"  # no heavy-tailed client popularity
    PERFECT_GEO = "perfect_geo"  # geolocation without missing/mislabeled blocks


def scenario_config(
    scenario: Scenario, base: GeneratorConfig = GeneratorConfig()
) -> GeneratorConfig:
    """The generator configuration implementing a scenario."""
    if scenario is Scenario.PAPER:
        return base
    if scenario is Scenario.NO_WAR:
        return replace(base, war_enabled=False)
    if scenario is Scenario.NO_REROUTING:
        return replace(base, rerouting_enabled=False)
    if scenario is Scenario.UNIFORM_DAMAGE:
        return replace(base, regional_damage=False)
    if scenario is Scenario.UNIFORM_CLIENTS:
        # zipf exponent near zero makes client popularity near-uniform
        return replace(base, zipf_a=0.05)
    if scenario is Scenario.PERFECT_GEO:
        return replace(base, missing_rate=0.0, mislabel_rate=0.0)
    raise ValueError(f"unhandled scenario {scenario!r}")
