"""Iterative proportional fitting (Sinkhorn scaling) for traffic matrices.

The paper publishes two marginal views of the same test population: per-city
counts (Table 4) and per-AS counts (Table 5).  To generate tests whose city
AND AS marginals both match, the workload builds a joint (city × AS) count
matrix by IPF: start from the coverage support (which AS serves which city)
and alternately rescale rows and columns to the two marginals.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.errors import CalibrationError

__all__ = ["iterative_proportional_fit"]


def iterative_proportional_fit(
    support: np.ndarray,
    row_targets: np.ndarray,
    col_targets: np.ndarray,
    max_iter: int = 500,
    tol: float = 1e-9,
) -> np.ndarray:
    """Scale ``support`` so its margins match the targets.

    Parameters
    ----------
    support:
        Non-negative (n_rows, n_cols) seed matrix; zeros mark impossible
        cells (an AS that does not serve a city) and stay zero.
    row_targets / col_targets:
        Desired row and column sums.  Their totals must agree (they are the
        same test population); a relative discrepancy above 1% is an error,
        below that the column targets are rescaled to the row total.

    Returns
    -------
    The fitted matrix.  Raises :class:`CalibrationError` when a positive
    target row/column has no support, or the fit does not converge.
    """
    m = np.array(support, dtype=np.float64)
    rows = np.asarray(row_targets, dtype=np.float64)
    cols = np.asarray(col_targets, dtype=np.float64)
    if m.ndim != 2:
        raise CalibrationError("support must be a 2-D matrix")
    if m.shape != (len(rows), len(cols)):
        raise CalibrationError(
            f"shape mismatch: support {m.shape}, targets ({len(rows)}, {len(cols)})"
        )
    if (m < 0).any() or (rows < 0).any() or (cols < 0).any():
        raise CalibrationError("support and targets must be non-negative")

    row_total, col_total = rows.sum(), cols.sum()
    if row_total <= 0:
        raise CalibrationError("row targets sum to zero")
    if abs(row_total - col_total) > 0.01 * row_total:
        raise CalibrationError(
            f"marginal totals disagree: rows {row_total:.1f} vs cols {col_total:.1f}"
        )
    cols = cols * (row_total / col_total)

    for i, target in enumerate(rows):
        if target > 0 and m[i].sum() == 0:
            raise CalibrationError(f"row {i} has target {target} but no support")
    for j, target in enumerate(cols):
        if target > 0 and m[:, j].sum() == 0:
            raise CalibrationError(f"column {j} has target {target} but no support")

    for _ in range(max_iter):
        row_sums = m.sum(axis=1)
        scale = np.divide(rows, row_sums, out=np.zeros_like(rows), where=row_sums > 0)
        m = m * scale[:, None]
        col_sums = m.sum(axis=0)
        scale = np.divide(cols, col_sums, out=np.zeros_like(cols), where=col_sums > 0)
        m = m * scale[None, :]
        row_err = np.abs(m.sum(axis=1) - rows).max()
        col_err = np.abs(m.sum(axis=0) - cols).max()
        if max(row_err, col_err) <= tol * max(1.0, row_total):
            return m
    raise CalibrationError(
        f"IPF did not converge in {max_iter} iterations "
        f"(row_err={row_err:.3g}, col_err={col_err:.3g})"
    )
