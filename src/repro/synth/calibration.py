"""Paper-derived calibration targets.

City-level targets come from Table 4 (oblast metrics, mapped to each
oblast's principal city) plus Table 1's Mariupol row; AS-level targets for
the paper's top-10 ASes come from Table 5.  Throughput and RTT standard
deviations are taken from Table 5 where published and otherwise derived
from a default coefficient of variation (Table 4 publishes means only).

These numbers parameterize the *generator*.  The analysis pipeline never
reads them; it recomputes every statistic from generated test rows, so a
bench comparing its output against the paper is a genuine end-to-end run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.util.errors import CalibrationError

__all__ = [
    "AsCalibration",
    "Calibration",
    "CityCalibration",
    "MetricMoments",
    "default_calibration",
]

#: Coefficient of variation used when a table publishes only means.
_DEFAULT_TPUT_CV = 0.75
_DEFAULT_RTT_CV = 0.80


@dataclass(frozen=True)
class MetricMoments:
    """Mean/std targets for the three NDT metrics in one period."""

    tput_mean: float
    tput_std: float
    rtt_mean: float
    rtt_std: float
    loss_mean: float
    count: float  # expected tests in the 54-day period

    def __post_init__(self) -> None:
        for name in ("tput_mean", "tput_std", "rtt_mean", "rtt_std", "count"):
            if getattr(self, name) <= 0:
                raise CalibrationError(f"{name} must be positive, got {getattr(self, name)}")
        if not 0.0 <= self.loss_mean < 1.0:
            raise CalibrationError(f"loss_mean must be in [0, 1), got {self.loss_mean}")


@dataclass(frozen=True)
class CityCalibration:
    """Prewar and wartime targets for one city."""

    city: str
    prewar: MetricMoments
    wartime: MetricMoments


@dataclass(frozen=True)
class AsCalibration:
    """Prewar and wartime targets for one of the paper's top-10 ASes."""

    asn: int
    name: str
    prewar: MetricMoments
    wartime: MetricMoments


def _city_moments(tput: float, rtt: float, loss_pct: float, count: float) -> MetricMoments:
    return MetricMoments(
        tput_mean=tput,
        tput_std=tput * _DEFAULT_TPUT_CV,
        rtt_mean=rtt,
        rtt_std=rtt * _DEFAULT_RTT_CV,
        loss_mean=loss_pct / 100.0,
        count=count,
    )


# Table 4 rows, keyed by principal city:
# (pre_tput, pre_rtt, pre_loss%, pre_count, war_tput, war_rtt, war_loss%, war_count)
_TABLE4: Dict[str, tuple] = {
    "Kyiv": (61.71, 11.69, 1.30, 11216, 50.61, 25.99, 2.93, 10023),
    "Dnipro": (35.18, 13.18, 1.82, 3024, 30.14, 17.93, 2.96, 3483),
    "Lviv": (34.70, 6.53, 1.62, 1881, 37.16, 13.44, 3.27, 2964),
    "Odessa": (40.31, 9.07, 1.99, 2210, 39.43, 11.31, 2.41, 1969),
    "Kharkiv": (42.72, 21.42, 2.22, 2102, 42.51, 26.93, 3.41, 1692),
    "Donetsk": (26.87, 22.22, 2.09, 1453, 20.78, 16.50, 4.02, 1292),
    "Zaporizhzhia": (24.71, 4.16, 2.00, 1046, 19.87, 14.94, 12.09, 1552),
    "Vinnytsia": (34.56, 6.73, 1.39, 894, 32.82, 12.35, 2.42, 1293),
    "Mykolaiv": (55.30, 28.20, 1.50, 1031, 49.50, 32.84, 2.31, 1127),
    "Uzhhorod": (27.36, 18.43, 4.77, 721, 19.53, 20.96, 5.58, 1040),
    "Chernihiv": (71.33, 14.20, 2.45, 1298, 18.55, 9.90, 4.71, 366),
    "Bila Tserkva": (32.76, 4.65, 1.35, 887, 34.92, 17.40, 5.38, 728),
    "Kherson": (24.59, 5.08, 2.07, 614, 16.37, 18.94, 8.57, 986),
    "Cherkasy": (48.00, 3.94, 0.85, 570, 46.33, 12.37, 2.68, 831),
    "Rivne": (34.81, 3.30, 2.14, 612, 28.21, 11.69, 3.69, 766),
    "Poltava": (31.12, 5.04, 1.47, 537, 38.56, 17.60, 3.77, 824),
    "Ivano-Frankivsk": (22.16, 6.58, 2.19, 535, 27.34, 15.28, 3.26, 758),
    "Ternopil": (37.16, 11.50, 1.46, 531, 43.95, 8.78, 2.46, 594),
    "Kropyvnytskyi": (18.64, 3.30, 1.87, 437, 22.19, 11.22, 2.28, 642),
    "Severodonetsk": (13.87, 10.30, 2.92, 581, 14.66, 19.63, 5.88, 470),
    "Lutsk": (36.62, 4.49, 1.49, 414, 26.84, 13.80, 2.67, 631),
    "Zhytomyr": (25.65, 8.25, 2.10, 459, 28.38, 21.82, 5.31, 555),
    "Chernivtsi": (22.24, 4.71, 2.01, 462, 38.00, 12.16, 2.22, 513),
    "Khmelnytskyi": (21.67, 11.15, 2.06, 227, 28.86, 14.49, 4.94, 688),
    "Sumy": (22.61, 7.47, 1.87, 329, 20.18, 20.83, 8.52, 552),
    "Simferopol": (43.41, 65.76, 2.80, 348, 34.60, 57.15, 4.45, 338),
    "Sevastopol": (21.52, 47.53, 3.48, 92, 29.80, 31.01, 4.08, 199),
    # Mariupol from Table 1 (Donets'k oblast row reduced correspondingly).
    "Mariupol": (32.88, 17.668, 2.79, 296, 18.80, 17.103, 6.84, 26),
}

# Table 5 rows (means and stds): asn -> (name,
#   pre_tput_mean, pre_tput_std, pre_rtt_mean, pre_rtt_std, pre_loss, pre_count,
#   war_tput_mean, war_tput_std, war_rtt_mean, war_rtt_std, war_loss, war_count)
_TABLE5: Dict[int, tuple] = {
    15895: ("Kyivstar", 37.836, 30.064, 22.514, 79.346, 0.0161, 3367,
            23.980, 33.132, 24.809, 185.841, 0.0254, 3921),
    3255: ("UARNet", 61.664, 63.927, 5.257, 20.839, 0.0177, 1934,
           57.971, 67.471, 12.300, 29.250, 0.0281, 2661),
    25229: ("Kyiv Telecom", 52.699, 43.359, 7.259, 17.372, 0.0150, 1549,
            50.099, 54.275, 20.062, 35.240, 0.0330, 2032),
    35297: ("Dataline", 31.969, 72.602, 13.151, 28.112, 0.0135, 816,
            20.962, 36.731, 24.462, 48.810, 0.0379, 1403),
    21488: ("Emplot LTd.", 90.516, 35.202, 3.755, 11.063, 0.0019, 1809,
            90.792, 24.488, 24.581, 15.289, 0.0072, 240),
    21497: ("Vodafone UKr", 18.720, 20.635, 6.584, 22.321, 0.0391, 929,
            15.038, 18.778, 19.932, 43.905, 0.0383, 1076),
    6876: ("TeNeT", 45.038, 33.827, 4.187, 15.621, 0.0121, 1129,
           47.538, 33.164, 3.894, 14.032, 0.0073, 737),
    50581: ("Ukr Telecom", 31.827, 43.035, 4.670, 13.145, 0.0105, 360,
            24.695, 39.290, 10.118, 21.367, 0.0518, 1378),
    39608: ("Lanet", 84.613, 110.260, 6.086, 19.883, 0.0075, 1056,
            66.061, 77.319, 13.311, 34.283, 0.0209, 587),
    13307: ("SKIF ISP Ltd.", 115.258, 67.662, 0.591, 6.514, 0.0038, 774,
            126.493, 70.678, 0.314, 3.861, 0.0031, 672),
}


class Calibration:
    """Lookup over city-level and AS-level targets."""

    def __init__(
        self,
        cities: List[CityCalibration],
        ases: List[AsCalibration],
    ):
        self._cities: Dict[str, CityCalibration] = {}
        for c in cities:
            if c.city in self._cities:
                raise CalibrationError(f"duplicate city calibration {c.city!r}")
            self._cities[c.city] = c
        self._ases: Dict[int, AsCalibration] = {}
        for a in ases:
            if a.asn in self._ases:
                raise CalibrationError(f"duplicate AS calibration {a.asn}")
            self._ases[a.asn] = a

    def city(self, name: str) -> CityCalibration:
        try:
            return self._cities[name]
        except KeyError:
            raise CalibrationError(f"no calibration for city {name!r}") from None

    def has_city(self, name: str) -> bool:
        return name in self._cities

    def city_names(self) -> List[str]:
        return list(self._cities)

    def asys(self, asn: int) -> Optional[AsCalibration]:
        """AS-level calibration, or None for non-top-10 ASes."""
        return self._ases.get(asn)

    def calibrated_asns(self) -> List[int]:
        return list(self._ases)

    def total_city_count(self, period: str) -> float:
        if period not in ("prewar", "wartime"):
            raise CalibrationError(f"period must be 'prewar' or 'wartime', got {period!r}")
        return sum(
            getattr(c, period).count for c in self._cities.values()
        )


def default_calibration() -> Calibration:
    """Targets for every gazetteer city and the paper's top-10 ASes."""
    cities = []
    for city, row in _TABLE4.items():
        pre_tput, pre_rtt, pre_loss, pre_count, war_tput, war_rtt, war_loss, war_count = row
        cities.append(
            CityCalibration(
                city=city,
                prewar=_city_moments(pre_tput, pre_rtt, pre_loss, pre_count),
                wartime=_city_moments(war_tput, war_rtt, war_loss, war_count),
            )
        )
    ases = []
    for asn, row in _TABLE5.items():
        (name,
         pt_mean, pt_std, pr_mean, pr_std, p_loss, p_count,
         wt_mean, wt_std, wr_mean, wr_std, w_loss, w_count) = row
        ases.append(
            AsCalibration(
                asn=asn,
                name=name,
                prewar=MetricMoments(pt_mean, pt_std, pr_mean, pr_std, p_loss, p_count),
                wartime=MetricMoments(wt_mean, wt_std, wr_mean, wr_std, w_loss, w_count),
            )
        )
    return Calibration(cities, ases)
