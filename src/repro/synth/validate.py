"""Dataset self-validation: invariants every generated dataset must hold.

Run after generation (``repro validate`` or :func:`validate_dataset`) to
catch configuration mistakes — a custom topology without site coverage, a
calibration edit that breaks marginals — before analyses silently produce
nonsense.  Each check appends a :class:`CheckResult`; the report as a whole
passes only when every check does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.analysis.periods import PERIOD_NAMES
from repro.netbase.ipaddr import IPv4Address
from repro.synth.generator import Dataset
from repro.tables.expr import col

__all__ = ["CheckResult", "ValidationReport", "validate_dataset"]


@dataclass(frozen=True)
class CheckResult:
    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        mark = "ok " if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


@dataclass
class ValidationReport:
    checks: List[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def failures(self) -> List[CheckResult]:
        return [c for c in self.checks if not c.passed]

    def __str__(self) -> str:
        lines = [str(c) for c in self.checks]
        lines.append(
            f"{'PASSED' if self.passed else 'FAILED'} "
            f"({sum(c.passed for c in self.checks)}/{len(self.checks)} checks)"
        )
        return "\n".join(lines)


def validate_dataset(dataset: Dataset, sample: int = 2000) -> ValidationReport:
    """Check structural and statistical invariants of a generated dataset."""
    report = ValidationReport()
    ndt, traces = dataset.ndt, dataset.traces

    def check(name: str, passed: bool, detail: str) -> None:
        report.checks.append(CheckResult(name, bool(passed), detail))

    # -- structural ---------------------------------------------------------
    ndt_ids = set(ndt.column("test_id").to_list())
    trace_ids = set(traces.column("test_id").to_list())
    check(
        "ndt-trace pairing",
        ndt_ids == trace_ids,
        f"{len(ndt_ids)} NDT ids vs {len(trace_ids)} trace ids",
    )
    check(
        "test ids unique",
        len(ndt_ids) == ndt.n_rows,
        f"{ndt.n_rows} rows, {len(ndt_ids)} distinct ids",
    )

    periods = dataset.periods
    in_window = 0
    ordinals = set()
    for p in periods.values():
        ordinals.update(p.ordinals())
    days = ndt.column("day").values
    in_window = int(np.isin(days, np.fromiter(ordinals, dtype=np.int64)).sum())
    check(
        "days inside study windows",
        in_window == ndt.n_rows,
        f"{in_window}/{ndt.n_rows} rows in-window",
    )

    # -- metric sanity ----------------------------------------------------------
    tput = ndt.column("tput_mbps").values
    rtt = ndt.column("min_rtt_ms").values
    loss = ndt.column("loss_rate").values
    check("throughput positive", bool((tput > 0).all()), f"min={tput.min():.3f}")
    check("rtt positive", bool((rtt > 0).all()), f"min={rtt.min():.3f}")
    check(
        "loss in unit interval",
        bool(((loss >= 0) & (loss <= 1)).all()),
        f"range=[{loss.min():.4f}, {loss.max():.4f}]",
    )

    # -- geolocation -----------------------------------------------------------
    missing = ndt.filter(col("city").isnull()).n_rows / ndt.n_rows
    expected = dataset.config.missing_rate
    check(
        "geo missing fraction near configured rate",
        abs(missing - expected) < max(0.06, expected),
        f"measured {missing:.3f} vs configured {expected:.3f}",
    )

    # -- attribution consistency (sampled) ----------------------------------------
    step = max(1, ndt.n_rows // sample)
    iplayer = dataset.topology.iplayer
    mismatches = 0
    checked = 0
    client_ips = ndt.column("client_ip").values
    asns = ndt.column("asn").values
    for i in range(0, ndt.n_rows, step):
        checked += 1
        if iplayer.as_of_ip(IPv4Address.parse(client_ips[i])) != asns[i]:
            mismatches += 1
    check(
        "client IPs belong to their AS",
        mismatches == 0,
        f"{mismatches}/{checked} sampled mismatches",
    )

    # -- trace endpoints (sampled) --------------------------------------------------
    bad_traces = 0
    t_client = traces.column("client_ip").values
    t_paths = traces.column("path").values
    step = max(1, traces.n_rows // sample)
    for i in range(0, traces.n_rows, step):
        hops = t_paths[i].split("|")
        if hops[-1] != t_client[i]:
            bad_traces += 1
    check("traces end at the client", bad_traces == 0, f"{bad_traces} bad traces")

    # -- period coverage ---------------------------------------------------------
    if dataset.config.include_2021:
        empty_periods = [
            name
            for name in PERIOD_NAMES
            if not np.isin(
                days, np.fromiter(periods[name].ordinals(), dtype=np.int64)
            ).any()
        ]
        check(
            "every study period populated",
            not empty_periods,
            f"empty: {empty_periods}" if empty_periods else "all four populated",
        )

    return report
