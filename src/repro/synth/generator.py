"""End-to-end synthetic dataset generation.

One :class:`DatasetGenerator` run produces the two tables the paper's
pipeline consumes — NDT download rows (``ndt.unified_download``) and
traceroute rows (``ndt.scamper1``) — for the 2022 study window and the 2021
baseline window, from a single seed.

Per-test flow:

1. the workload decides how many tests each (city, AS) pair runs each day;
2. the client pool draws a (heavy-tailed) client address; the load balancer
   assigns its sticky M-Lab site;
3. the sticky router resolves the AS route in effect that day, given link
   outages from the damage process and link quality (war damage + the
   Figure-6 degradation schedules);
4. metric moments are interpolated between calibrated prewar and wartime
   targets by that day's damage severity, the route's own conditions are
   added, and the bulk-transfer model draws (tput, minRTT, loss);
5. the geo database (with its missing/mislabeled blocks) labels the client;
   the scamper sidecar emits the traceroute record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.conflict.damage import EdgeDamageModel, LinkDamageProcess, LinkOutageSchedule
from repro.conflict.events import EventKind
from repro.conflict.intensity import IntensityModel
from repro.geo.geodb import GeoDatabase
from repro.mlab.loadbalancer import LoadBalancer
from repro.mlab.sites import Site, SiteRegistry
from repro.ndt.clientpool import ClientPool
from repro.ndt.measurement import NDT_SCHEMA, NdtMeasurement
from repro.ndt.protocol import ProtocolModel
from repro.ndt.tcpmodel import BulkTransferModel, MetricParams, PathConditions
from repro.synth.calibration import (
    AsCalibration,
    Calibration,
    CityCalibration,
    MetricMoments,
    default_calibration,
)
from repro.synth.workload import Workload
from repro.tables.schema import Cols, DType, Field, Schema
from repro.tables.table import Table
from repro.topology.bgp import AsPath, RouteSelector, StickyRouter
from repro.topology.builder import Topology, build_default_topology
from repro.topology.quality import LinkQualityModel
from repro.traceroute.scamper import ScamperSidecar
from repro.util.errors import DataError
from repro.util.rng import RngHub
from repro.util.timeutil import Day, DayGrid, Period

__all__ = ["Dataset", "DatasetGenerator", "GeneratorConfig", "TRACE_SCHEMA"]

#: Column layout of the traceroute table (``ndt.scamper1`` analogue).
TRACE_SCHEMA = Schema(
    [
        Field(Cols.TEST_ID, DType.INT),
        Field(Cols.DAY, DType.INT),
        Field(Cols.YEAR, DType.INT),
        Field(Cols.CLIENT_IP, DType.STR),
        Field(Cols.SERVER_IP, DType.STR),
        Field(Cols.PATH, DType.STR),
        Field(Cols.AS_PATH, DType.STR),
        Field(Cols.N_HOPS, DType.INT),
    ]
)

#: Extra one-way latency a fully degraded link adds (ms).
_LINK_RTT_PENALTY_MS = 10.0
#: Loss a fully degraded link adds.
_LINK_LOSS_PENALTY = 0.02
#: Throughput multiplier on a national-outage day (Figure 2c's ~50% dip).
_OUTAGE_TPUT_FACTOR = 0.55
#: Ramp clip: day severity may exceed the wartime average by this factor.
_RAMP_CAP = 1.25


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic dataset (defaults reproduce the paper)."""

    seed: int = 20220224
    scale: float = 1.0  # global test-volume multiplier
    include_2021: bool = True
    volume_2021: float = 0.55  # NDT usage was lower in 2021
    # Natural half-to-half drift in the baseline year (lognormal sigmas).
    # The paper's Table-3 baseline row shows sizeable "peacetime"
    # fluctuations (worst RTT +110%, counts -37%): user populations and
    # routing change even without a war.  Zero sigmas give a sterile,
    # perfectly stationary baseline.
    baseline_rtt_drift: float = 0.40
    baseline_tput_drift: float = 0.12
    baseline_loss_drift: float = 0.15
    baseline_count_drift: float = 0.25
    missing_rate: float = 0.117  # tests without geo labels (paper: 11.7%)
    mislabel_rate: float = 0.05
    scamper_epoch_days_2021: int = 160  # IP-level routing churn, 2021
    scamper_epoch_days_2022: int = 85  # churnier early 2022 (cyberattacks)
    bgp_epoch_days: int = 14  # AS-route re-evaluation cadence
    client_pool_size: int = 300
    zipf_a: float = 1.2
    war_enabled: bool = True  # ablation: no war at all
    rerouting_enabled: bool = True  # ablation: no outages / no route shifts
    regional_damage: bool = True  # ablation: uniform intensity across zones

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.volume_2021 <= 0:
            raise ValueError(f"volume_2021 must be positive, got {self.volume_2021}")


@dataclass
class Dataset:
    """Generated tables plus the objects needed to interpret them."""

    ndt: Table
    traces: Table
    topology: Topology
    geodb: GeoDatabase
    config: GeneratorConfig
    calibration: Calibration
    intensity: IntensityModel
    n_unroutable: int = 0
    periods: Dict[str, Period] = field(default_factory=dict)


def study_periods() -> Dict[str, Period]:
    """The paper's four 54-day windows."""
    return {
        "baseline_janfeb": Period.of("baseline Jan-Feb, 2021", "2021-01-01", "2021-02-23"),
        "baseline_febapr": Period.of("baseline Feb-Apr, 2021", "2021-02-24", "2021-04-18"),
        "prewar": Period.of("prewar, 2022", "2022-01-01", "2022-02-23"),
        "wartime": Period.of("wartime, 2022", "2022-02-24", "2022-04-18"),
    }


class _UniformIntensity(IntensityModel):
    """Ablation: war intensity identical in every zone (no regional signal)."""

    def zone_intensity(self, zone, day) -> float:
        if Day.of(day) < self.invasion_day:
            return 0.0
        return 0.5

    def city_intensity(self, city_name, day) -> float:
        return self.zone_intensity(None, day)


class _PeaceIntensity(IntensityModel):
    """Ablation: the war never happens."""

    def zone_intensity(self, zone, day) -> float:
        return 0.0

    def city_intensity(self, city_name, day) -> float:
        return 0.0


def _uniformize_war_targets(calibration: Calibration) -> Calibration:
    """The UNIFORM_DAMAGE ablation's calibration.

    Every city's (and AS's) wartime metric targets become its *prewar*
    targets scaled by the count-weighted national wartime/prewar ratios —
    damage of the same national magnitude, spread evenly, with no regional
    structure.  Counts keep their real wartime values (population movement
    is a separate phenomenon from metric damage).
    """
    pre_total = 0.0
    pre_sums = np.zeros(3)
    war_total = 0.0
    war_sums = np.zeros(3)
    for name in calibration.city_names():
        c = calibration.city(name)
        pre_total += c.prewar.count
        pre_sums += c.prewar.count * np.array(
            [c.prewar.tput_mean, c.prewar.rtt_mean, c.prewar.loss_mean]
        )
        war_total += c.wartime.count
        war_sums += c.wartime.count * np.array(
            [c.wartime.tput_mean, c.wartime.rtt_mean, c.wartime.loss_mean]
        )
    ratios = (war_sums / war_total) / (pre_sums / pre_total)

    def scale(pre: MetricMoments, war: MetricMoments) -> MetricMoments:
        return MetricMoments(
            tput_mean=pre.tput_mean * ratios[0],
            tput_std=pre.tput_std * ratios[0],
            rtt_mean=pre.rtt_mean * ratios[1],
            rtt_std=pre.rtt_std * ratios[1],
            loss_mean=min(0.9, pre.loss_mean * ratios[2]),
            count=war.count,
        )

    cities = [
        CityCalibration(name, calibration.city(name).prewar,
                        scale(calibration.city(name).prewar,
                              calibration.city(name).wartime))
        for name in calibration.city_names()
    ]
    ases = []
    for asn in calibration.calibrated_asns():
        a = calibration.asys(asn)
        ases.append(
            AsCalibration(asn, a.name, a.prewar, scale(a.prewar, a.wartime))
        )
    return Calibration(cities, ases)


class DatasetGenerator:
    """Runs the full simulation for one configuration."""

    def __init__(
        self,
        config: GeneratorConfig = GeneratorConfig(),
        topology: Optional[Topology] = None,
        calibration: Optional[Calibration] = None,
    ):
        self.config = config
        self.topology = topology if topology is not None else build_default_topology()
        base_calibration = (
            calibration if calibration is not None else default_calibration()
        )
        if not config.regional_damage:
            base_calibration = _uniformize_war_targets(base_calibration)
        self.calibration = base_calibration
        self._hub = RngHub(config.seed)

    # -- model assembly ---------------------------------------------------------
    def _city_factors(self) -> Dict[Tuple[str, str], Tuple[float, float, float]]:
        """Per-(city, period) multipliers relative to the national average.

        Table 5 publishes per-AS moments pooled over each AS's whole
        footprint; a Kyivstar test in Kherson should still look like
        Kherson.  Scaling AS-level targets by the city's deviation from the
        (count-weighted) national mean preserves both marginals
        approximately: nationwide ASes keep their Table-5 means, cities
        keep their Table-4 profile.
        """
        factors: Dict[Tuple[str, str], Tuple[float, float, float]] = {}
        for period in ("prewar", "wartime"):
            total = 0.0
            sums = np.zeros(3)
            for city in self.calibration.city_names():
                m = getattr(self.calibration.city(city), period)
                total += m.count
                sums += m.count * np.array([m.tput_mean, m.rtt_mean, m.loss_mean])
            national = sums / total
            for city in self.calibration.city_names():
                m = getattr(self.calibration.city(city), period)
                raw = np.array([m.tput_mean, m.rtt_mean, m.loss_mean]) / national
                clipped = np.clip(raw, 0.25, 4.0)
                factors[(city, period)] = tuple(float(v) for v in clipped)
        return factors

    @staticmethod
    def _scale_moments(m: MetricMoments, factor: Tuple[float, float, float]) -> MetricMoments:
        f_tput, f_rtt, f_loss = factor
        return MetricMoments(
            tput_mean=m.tput_mean * f_tput,
            tput_std=m.tput_std * f_tput,
            rtt_mean=m.rtt_mean * f_rtt,
            rtt_std=m.rtt_std * f_rtt,
            loss_mean=min(0.9, m.loss_mean * f_loss),
            count=m.count,
        )

    def _make_intensity(self) -> IntensityModel:
        gaz = self.topology.gazetteer
        if not self.config.war_enabled:
            return _PeaceIntensity(gaz, timeline=[])
        if not self.config.regional_damage:
            return _UniformIntensity(gaz)
        return IntensityModel(gaz)

    def _mean_war_severity(
        self, edge: EdgeDamageModel, wartime: Period
    ) -> Dict[str, float]:
        out = {}
        for city in self.topology.gazetteer.city_names():
            sevs = [edge.severity(city, d) for d in wartime.days()]
            out[city] = float(np.mean(sevs))
        return out

    def _interpolate(
        self, base: MetricMoments, target: MetricMoments, ramp: float
    ) -> MetricParams:
        def mix(a: float, b: float) -> float:
            return a + (b - a) * ramp

        # Cap the coefficient of variation at 3: a few Table-5 stds are
        # dominated by extreme outliers (e.g. Kyivstar's 185 ms RTT std) and
        # a literal lognormal with that spread drowns every downstream
        # comparison in tail noise the real per-test data does not have.
        tput_mean = max(0.05, mix(base.tput_mean, target.tput_mean))
        rtt_mean = max(0.05, mix(base.rtt_mean, target.rtt_mean))
        return MetricParams(
            tput_mean_mbps=tput_mean,
            tput_std_mbps=min(max(0.05, mix(base.tput_std, target.tput_std)),
                              3.0 * tput_mean),
            rtt_mean_ms=rtt_mean,
            rtt_std_ms=min(max(0.05, mix(base.rtt_std, target.rtt_std)),
                           3.0 * rtt_mean),
            loss_mean=float(np.clip(mix(base.loss_mean, target.loss_mean), 0.0, 0.95)),
        )

    # -- the run ------------------------------------------------------------------
    def generate(self) -> Dataset:
        cfg = self.config
        topo = self.topology
        periods = study_periods()
        intensity = self._make_intensity()

        edge = EdgeDamageModel(intensity, self._hub.stream("edge-damage"))
        quality = LinkQualityModel(
            edge if (cfg.war_enabled and cfg.rerouting_enabled) else None,
            topo.degradation_schedules
            if (cfg.war_enabled and cfg.rerouting_enabled)
            else [],
        )
        selector = RouteSelector(
            topo.graph, lambda link, day: quality.quality(link, day)
        )
        router = StickyRouter(
            selector, seed=cfg.seed, epoch_days=cfg.bgp_epoch_days
        )

        war_grid = DayGrid(periods["wartime"].start, periods["wartime"].end)
        if cfg.war_enabled and cfg.rerouting_enabled:
            outages = LinkDamageProcess(intensity).simulate(
                topo.war_sensitive_links(), war_grid, self._hub.stream("outages")
            )
        else:
            outages = LinkOutageSchedule(grid=war_grid, _states={})

        geodb = GeoDatabase.build(
            [(prefix, city) for prefix, _asn, city in topo.iplayer.client_blocks()],
            topo.gazetteer,
            self._hub.stream("geodb"),
            missing_rate=cfg.missing_rate,
            mislabel_rate=cfg.mislabel_rate,
        )
        pool = ClientPool(
            topo.iplayer, pool_size=cfg.client_pool_size, zipf_a=cfg.zipf_a
        )
        sites = SiteRegistry.from_topology(topo)
        balancer = LoadBalancer(sites, topo.gazetteer)
        tcp = BulkTransferModel(self._hub.stream("tcp"))
        protocol_model = ProtocolModel()
        protocol_rng = self._hub.stream("protocol")
        mean_war_sev = self._mean_war_severity(edge, periods["wartime"])
        city_factors = self._city_factors()

        # Baseline-year natural drift: each AS/city gets a fixed factor per
        # metric applied to the second half of 2021, plus a test-volume
        # factor (the paper's non-trivial Table-3 baseline fluctuations).
        drift_rng = self._hub.stream("baseline-drift")

        def drift_factor(sigma: float) -> float:
            # Mean-one lognormal: per-entity drift without a systematic
            # national shift (Figure 2's baseline panel stays flat).
            return float(drift_rng.lognormal(-0.5 * sigma * sigma, sigma))

        metric_drift: Dict[Tuple[str, object], Tuple[float, float, float]] = {}
        count_drift: Dict[int, float] = {}
        for asn in sorted(topo.eyeball_asns()):
            metric_drift[("as", asn)] = (
                drift_factor(cfg.baseline_tput_drift),
                drift_factor(cfg.baseline_rtt_drift),
                drift_factor(cfg.baseline_loss_drift),
            )
            count_drift[asn] = drift_factor(cfg.baseline_count_drift)
        for city_name in topo.gazetteer.city_names():
            metric_drift[("city", city_name)] = (
                drift_factor(cfg.baseline_tput_drift),
                drift_factor(cfg.baseline_rtt_drift),
                drift_factor(cfg.baseline_loss_drift),
            )

        def apply_drift(params: MetricParams, key: Tuple[str, object]) -> MetricParams:
            f_tput, f_rtt, f_loss = metric_drift[key]
            return MetricParams(
                tput_mean_mbps=params.tput_mean_mbps * f_tput,
                tput_std_mbps=params.tput_std_mbps * f_tput,
                rtt_mean_ms=params.rtt_mean_ms * f_rtt,
                rtt_std_ms=params.rtt_std_ms * f_rtt,
                loss_mean=min(0.9, params.loss_mean * f_loss),
            )

        # Best healthy route RTT per (src, dst): the baseline that detours
        # are measured against.
        best_rtt_cache: Dict[Tuple[int, int], float] = {}

        def best_path_rtt(src: int, dst: int) -> float:
            key = (src, dst)
            if key not in best_rtt_cache:
                candidates = selector.candidates(src, dst, frozenset())
                best_rtt_cache[key] = (
                    sum(l.base_rtt_ms for l in candidates[0].links(topo.graph))
                    if candidates
                    else 0.0
                )
            return best_rtt_cache[key]

        outage_days = {
            e.day.ordinal
            for e in intensity.events_of_kind(EventKind.OUTAGE)
        }

        # Columnar accumulation: one list per schema column, appended in
        # lockstep, handed to Table.from_dict at the end (no row-dict pivot).
        ndt_data: Dict[str, List[object]] = {n: [] for n in NDT_SCHEMA.names}
        trace_data: Dict[str, List[object]] = {n: [] for n in TRACE_SCHEMA.names}
        ndt_stores = [(n, ndt_data[n]) for n in NDT_SCHEMA.names]
        trace_stores = [(n, trace_data[n]) for n in TRACE_SCHEMA.names]
        n_unroutable = 0
        test_id = 0

        year_specs = []
        if cfg.include_2021:
            year_specs.append(
                (periods["baseline_janfeb"], periods["baseline_febapr"], False,
                 cfg.volume_2021, cfg.scamper_epoch_days_2021)
            )
        year_specs.append(
            (periods["prewar"], periods["wartime"], cfg.war_enabled,
             1.0, cfg.scamper_epoch_days_2022)
        )

        for first_half, second_half, wartime, volume, scamper_epoch in year_specs:
            year = first_half.start.date().year
            # Natural drift belongs to the true baseline year only; a
            # war-disabled 2022 (the NO_WAR control) stays stationary.
            drifting = year == 2021
            sidecar = ScamperSidecar(topo, epoch_days=scamper_epoch)
            workload = Workload(
                topo,
                self.calibration,
                intensity,
                first_half,
                second_half,
                wartime=wartime,
                volume_factor=volume * cfg.scale,
                second_half_count_drift=count_drift if drifting else None,
            )
            wl_rng = self._hub.stream(f"workload-{year}")
            test_rng = self._hub.stream(f"tests-{year}")

            for day, counts in workload.daily_counts(wl_rng):
                in_war = wartime and intensity.is_wartime(day)
                if in_war:
                    down = frozenset(
                        key
                        for key in topo.war_sensitive_links()
                        if not outages.is_up(key, day)
                    )
                else:
                    down = frozenset()
                tput_factor = (
                    _OUTAGE_TPUT_FACTOR
                    if (in_war and day.ordinal in outage_days)
                    else 1.0
                )

                for (city, asn), n_tests in sorted(counts.items()):
                    sev = edge.severity(city, day) if in_war else 0.0
                    ramp = 0.0
                    if in_war and mean_war_sev[city] > 0:
                        ramp = min(_RAMP_CAP, sev / mean_war_sev[city])
                    as_cal = self.calibration.asys(asn)
                    if as_cal is not None:
                        params = self._interpolate(
                            self._scale_moments(
                                as_cal.prewar, city_factors[(city, "prewar")]
                            ),
                            self._scale_moments(
                                as_cal.wartime, city_factors[(city, "wartime")]
                            ),
                            ramp,
                        )
                    else:
                        city_cal = self.calibration.city(city)
                        params = self._interpolate(city_cal.prewar, city_cal.wartime, ramp)
                    if drifting and second_half.contains(day):
                        key = ("as", asn) if as_cal is not None else ("city", city)
                        params = apply_drift(params, key)

                    for _ in range(n_tests):
                        test_id += 1
                        client_ip = pool.sample(asn, city, test_rng)
                        site: Site = balancer.assign(client_ip.value, city, test_rng)
                        path: Optional[AsPath] = router.route(
                            asn, site.asn, day.ordinal, down
                        )
                        if path is None:
                            n_unroutable += 1
                            continue
                        links = path.links(topo.graph)
                        path_rtt = sum(l.base_rtt_ms for l in links)
                        extra_rtt = max(0.0, path_rtt - best_path_rtt(asn, site.asn))
                        extra_loss = 0.0
                        for link in links:
                            # City-tagged (access) links influence routing
                            # but add no metric penalty: the calibrated
                            # city/AS targets already embody edge damage.
                            # Untagged links with *performance-affecting*
                            # schedules (the AS6663 congestion) do
                            # contribute — the Figure-6 signal.  Routing-
                            # only withdrawals (Cogent) never do.
                            if link.city is not None:
                                continue
                            q = quality.performance_quality(link, day.ordinal)
                            extra_rtt += (1.0 - q) * _LINK_RTT_PENALTY_MS
                            extra_loss += (1.0 - q) * _LINK_LOSS_PENALTY
                        conditions = PathConditions(
                            extra_rtt_ms=extra_rtt,
                            extra_loss=min(1.0, extra_loss),
                            tput_factor=tput_factor,
                        )
                        tput, rtt, loss = tcp.measure(params, conditions)
                        label = geodb.lookup(client_ip)
                        version, cca = protocol_model.sample(year, protocol_rng)
                        measurement = NdtMeasurement(
                            test_id=test_id,
                            day=day,
                            city=label.city if label else None,
                            oblast=label.oblast if label else None,
                            city_true=city,
                            asn=asn,
                            client_ip=client_ip.dotted(),
                            site=site.code,
                            server_ip=site.server_ip.dotted(),
                            protocol=version.value,
                            cca=cca.value,
                            tput_mbps=tput,
                            min_rtt_ms=rtt,
                            loss_rate=loss,
                        )
                        ndt_row = measurement.to_row()
                        for name, store in ndt_stores:
                            store.append(ndt_row[name])
                        record = sidecar.trace(
                            test_id,
                            client_ip,
                            site.server_ip,
                            path.asns,
                            day.ordinal,
                            test_rng,
                        )
                        trace_row = record.to_row()
                        trace_row["day"] = day.ordinal
                        trace_row["year"] = year
                        for name, store in trace_stores:
                            store.append(trace_row[name])

        ndt_dtypes = {f.name: f.dtype for f in NDT_SCHEMA.fields}
        trace_dtypes = {f.name: f.dtype for f in TRACE_SCHEMA.fields}
        if not ndt_data["test_id"]:
            raise DataError("generator produced no routable tests")
        return Dataset(
            ndt=Table.from_dict(ndt_data, ndt_dtypes),
            traces=Table.from_dict(trace_data, trace_dtypes),
            topology=topo,
            geodb=geodb,
            config=cfg,
            calibration=self.calibration,
            intensity=intensity,
            n_unroutable=n_unroutable,
            periods=periods,
        )
