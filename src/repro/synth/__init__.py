"""Synthetic dataset generation calibrated to the paper's published tables.

``calibration`` holds the paper-derived targets (Table 1/4/5 moments and
counts); ``ipf`` reconciles city-level and AS-level test counts into a
joint traffic matrix; ``workload`` turns counts into per-day arrivals with
event-driven shapes (sieges, outage spikes); ``generator`` runs the whole
simulation and emits the NDT and traceroute tables the analyses consume;
``scenario`` packages ablation variants.

The generator *consumes* calibration targets as distribution parameters.
The analyses never see them — every reproduced table is recomputed from
generated rows.
"""

from repro.synth.calibration import (
    AsCalibration,
    Calibration,
    CityCalibration,
    MetricMoments,
    default_calibration,
)
from repro.synth.generator import Dataset, DatasetGenerator, GeneratorConfig
from repro.synth.ipf import iterative_proportional_fit
from repro.synth.scenario import Scenario, scenario_config
from repro.synth.workload import Workload

__all__ = [
    "AsCalibration",
    "Calibration",
    "CityCalibration",
    "Dataset",
    "DatasetGenerator",
    "GeneratorConfig",
    "MetricMoments",
    "Scenario",
    "Workload",
    "default_calibration",
    "iterative_proportional_fit",
    "scenario_config",
]
