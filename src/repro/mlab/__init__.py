"""The simulated M-Lab platform: sites, load balancing, sidecar services.

M-Lab runs measurement services on sites around the world; a load-balancing
service directs each client to the geographically nearest site, and sidecar
services run a scamper traceroute toward the client for every NDT test.
This package reproduces those mechanics over the synthetic topology.
"""

from repro.mlab.loadbalancer import LoadBalancer
from repro.mlab.sites import Site, SiteRegistry

__all__ = ["LoadBalancer", "Site", "SiteRegistry"]
