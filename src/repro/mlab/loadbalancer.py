"""The geo load balancer directing clients to their nearest M-Lab site.

M-Lab's locate service sends a client to the geographically nearest site;
in practice assignment is slightly spread across the few nearest sites
(capacity, anycast wobble).  The balancer therefore weights the ``k``
nearest sites by inverse distance, but an individual *client* is sticky:
its site is chosen once and reused, which is what makes (client, server)
connections long-lived enough for the paper's Table-2 path analysis.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.geo.distance import haversine_km
from repro.geo.gazetteer import Gazetteer
from repro.mlab.sites import Site, SiteRegistry

__all__ = ["LoadBalancer"]


class LoadBalancer:
    """Sticky, distance-weighted site assignment for clients."""

    def __init__(
        self,
        sites: SiteRegistry,
        gazetteer: Gazetteer,
        k_nearest: int = 3,
    ):
        if k_nearest < 1:
            raise ValueError(f"k_nearest must be >= 1, got {k_nearest}")
        self._sites = sites
        self._gazetteer = gazetteer
        self._k = min(k_nearest, len(sites))
        self._choices_by_city: Dict[str, Tuple[List[Site], np.ndarray]] = {}
        self._assignments: Dict[int, Site] = {}  # client ip value -> site

    def _city_choices(self, city_name: str) -> Tuple[List[Site], np.ndarray]:
        if city_name not in self._choices_by_city:
            city = self._gazetteer.city(city_name)
            ranked = sorted(
                self._sites.all(),
                key=lambda s: haversine_km(city.lat, city.lon, s.lat, s.lon),
            )[: self._k]
            dists = np.array(
                [haversine_km(city.lat, city.lon, s.lat, s.lon) for s in ranked]
            )
            # Steep distance decay: the nearest site takes most assignments,
            # as M-Lab's locate service does, with some spill to runners-up.
            weights = 1.0 / np.maximum(dists, 1.0) ** 4
            self._choices_by_city[city_name] = (ranked, weights / weights.sum())
        return self._choices_by_city[city_name]

    def nearest_site(self, city_name: str) -> Site:
        """The single geographically nearest site to a city."""
        return self._city_choices(city_name)[0][0]

    def assign(
        self, client_ip_value: int, city_name: str, rng: np.random.Generator
    ) -> Site:
        """The site serving this client (stable across the client's tests)."""
        site = self._assignments.get(client_ip_value)
        if site is None:
            ranked, probs = self._city_choices(city_name)
            site = ranked[int(rng.choice(len(ranked), p=probs))]
            self._assignments[client_ip_value] = site
        return site

    def n_assigned_clients(self) -> int:
        return len(self._assignments)
