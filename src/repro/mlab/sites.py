"""M-Lab measurement sites over the synthetic topology."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.netbase.ipaddr import IPv4Address
from repro.topology.builder import Topology
from repro.util.errors import TopologyError

__all__ = ["Site", "SiteRegistry"]


@dataclass(frozen=True)
class Site:
    """One M-Lab site: its AS, location, and NDT server address."""

    asn: int
    code: str  # e.g. "waw01"
    country: str
    lat: float
    lon: float
    server_ip: IPv4Address

    def __str__(self) -> str:
        return f"{self.code} (AS{self.asn}, {self.country})"


class SiteRegistry:
    """All M-Lab sites, built from a topology's MLAB ASes."""

    def __init__(self, sites: List[Site]):
        if not sites:
            raise TopologyError("SiteRegistry needs at least one site")
        self._by_asn: Dict[int, Site] = {}
        self._by_code: Dict[str, Site] = {}
        for site in sites:
            if site.asn in self._by_asn:
                raise TopologyError(f"duplicate site AS{site.asn}")
            if site.code in self._by_code:
                raise TopologyError(f"duplicate site code {site.code!r}")
            self._by_asn[site.asn] = site
            self._by_code[site.code] = site

    @classmethod
    def from_topology(cls, topology: Topology) -> "SiteRegistry":
        """One site per MLAB AS; the NDT server is the AS's first router IP."""
        sites = []
        for asn, spec in sorted(topology.mlab_sites.items()):
            server_ip = topology.iplayer.router_ip(asn, 0)
            sites.append(
                Site(
                    asn=asn,
                    code=spec.code,
                    country=spec.country,
                    lat=spec.lat,
                    lon=spec.lon,
                    server_ip=server_ip,
                )
            )
        return cls(sites)

    def all(self) -> List[Site]:
        return sorted(self._by_asn.values(), key=lambda s: s.asn)

    def describe(self) -> List[Dict[str, object]]:
        """JSON-ready site metadata (the live service's ``/sites`` view)."""
        return [
            {
                "code": s.code,
                "asn": s.asn,
                "country": s.country,
                "lat": s.lat,
                "lon": s.lon,
                "server_ip": str(s.server_ip),
            }
            for s in self.all()
        ]

    def by_asn(self, asn: int) -> Site:
        try:
            return self._by_asn[asn]
        except KeyError:
            raise TopologyError(f"no M-Lab site in AS{asn}") from None

    def by_code(self, code: str) -> Site:
        try:
            return self._by_code[code]
        except KeyError:
            raise TopologyError(f"no M-Lab site {code!r}") from None

    def __len__(self) -> int:
        return len(self._by_asn)

    def __iter__(self):
        return iter(self.all())
