"""Traceroute simulation (M-Lab's scamper sidecar) and path records.

For every NDT test, the sidecar performs a traceroute from the measurement
site toward the client.  Hops are router interface IPs drawn from each AS on
the selected route; per-AS ECMP makes consecutive traceroutes of the same
connection vary at the IP level even when the AS path is stable — the source
of the paper's *prewar* path diversity, on top of which wartime AS-level
reroutes add more.
"""

from repro.traceroute.pathrecord import TracerouteRecord, border_crossing
from repro.traceroute.scamper import ScamperSidecar

__all__ = ["ScamperSidecar", "TracerouteRecord", "border_crossing"]
