"""Traceroute result records and derived identities."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.netbase.asn import ASRegistry
from repro.netbase.ipaddr import IPv4Address

__all__ = ["TracerouteRecord", "border_crossing"]


@dataclass(frozen=True)
class TracerouteRecord:
    """One sidecar traceroute, from the M-Lab server toward the client.

    ``hop_ips``/``hop_asns`` are ordered server→client and include the
    server as the first entry and the client as the last.
    """

    test_id: int
    client_ip: IPv4Address
    server_ip: IPv4Address
    hop_ips: Tuple[IPv4Address, ...]
    hop_asns: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.hop_ips) != len(self.hop_asns):
            raise ValueError(
                f"hop_ips ({len(self.hop_ips)}) and hop_asns "
                f"({len(self.hop_asns)}) must align"
            )
        if len(self.hop_ips) < 2:
            raise ValueError("a traceroute needs at least server and client hops")
        if self.hop_ips[0] != self.server_ip:
            raise ValueError("first hop must be the server")
        if self.hop_ips[-1] != self.client_ip:
            raise ValueError("last hop must be the client")

    @property
    def connection_key(self) -> Tuple[int, int]:
        """The paper's connection identity: the (source, destination) IP pair."""
        return (self.client_ip.value, self.server_ip.value)

    @property
    def path_key(self) -> str:
        """The paper's path identity: the traceroute IP address sequence."""
        return "|".join(ip.dotted() for ip in self.hop_ips)

    @property
    def as_path(self) -> Tuple[int, ...]:
        """Deduplicated AS-level path (consecutive same-AS hops collapsed)."""
        out = []
        for asn in self.hop_asns:
            if not out or out[-1] != asn:
                out.append(asn)
        return tuple(out)

    @property
    def n_hops(self) -> int:
        return len(self.hop_ips)

    def to_row(self) -> Dict[str, object]:
        """Flatten into a table row (IPs dotted, sequences pipe-joined)."""
        return {
            "test_id": self.test_id,
            "client_ip": self.client_ip.dotted(),
            "server_ip": self.server_ip.dotted(),
            "path": self.path_key,
            "as_path": "|".join(str(a) for a in self.as_path),
            "n_hops": self.n_hops,
        }


def border_crossing(
    record: TracerouteRecord, registry: ASRegistry
) -> Optional[Tuple[int, int]]:
    """The (foreign AS, Ukrainian AS) pair where the trace enters Ukraine.

    Scans the server→client AS path for the first adjacency whose left side
    is non-Ukrainian and right side Ukrainian — the paper's "border AS" hop
    (Figure 5).  Returns None when the trace never enters Ukraine or an AS
    is unknown to the registry.
    """
    path = record.as_path
    for left, right in zip(path, path[1:]):
        left_as = registry.maybe_get(left)
        right_as = registry.maybe_get(right)
        if left_as is None or right_as is None:
            return None
        if not left_as.is_ukrainian and right_as.is_ukrainian:
            return (left, right)
    return None
