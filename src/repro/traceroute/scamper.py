"""The scamper sidecar: hop-level traceroute generation over a chosen route.

Given the AS path a test's packets took (client→server, as selected by the
route selector), the sidecar emits the server→client traceroute M-Lab would
record.

Within each AS, the router interface that appears is a deterministic
function of the adjacency and a *routing epoch*: internal routing (IGP
state, load-balancer hashing) is stable for stretches of days, then
reshuffles.  Consecutive tests of one connection therefore observe a small
family of IP paths — two to four over a 54-day window — matching Table 2's
prewar paths-per-connection, rather than the combinatorial explosion a
per-test ECMP coin-flip would produce.  Shorter epochs model churnier
periods (the paper's early-2022 baseline elevation); wartime AS-level
reroutes multiply the family further.  A small per-test jitter adds the
occasional one-off variant.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Tuple

import numpy as np

from repro.netbase.hostnames import ROUTER_CITY_BAND
from repro.netbase.ipaddr import IPv4Address
from repro.topology.builder import Topology
from repro.traceroute.pathrecord import TracerouteRecord

__all__ = ["ScamperSidecar"]

#: Router interfaces an AS exposes (indices into its infrastructure /16).
_ROUTERS_PER_AS = 512


def _stable_index(parts: Tuple[int, ...], modulus: int) -> int:
    """A process-stable hash of integers onto [0, modulus)."""
    data = ",".join(str(p) for p in parts).encode("ascii")
    digest = hashlib.blake2s(data, digest_size=4).digest()
    return int.from_bytes(digest, "little") % modulus


class ScamperSidecar:
    """Generates traceroute records for NDT tests.

    Parameters
    ----------
    epoch_days:
        How long an AS's internal routing stays stable before reshuffling.
        Smaller values produce more IP-level path churn per window.
    ecmp_slots:
        Size of each adjacency's router group (variants per epoch change).
    jitter:
        Per-test probability that a single hop shows an off-epoch router.
    """

    def __init__(
        self,
        topology: Topology,
        epoch_days: int = 90,
        ecmp_slots: int = 4,
        jitter: float = 0.01,
    ):
        if epoch_days < 1:
            raise ValueError(f"epoch_days must be >= 1, got {epoch_days}")
        if ecmp_slots < 1:
            raise ValueError(f"ecmp_slots must be >= 1, got {ecmp_slots}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self._topology = topology
        self._epoch_days = epoch_days
        self._ecmp_slots = ecmp_slots
        self._jitter = jitter

    def _epoch(self, asn: int, prev_asn: int, next_asn: int, day_ordinal: int) -> int:
        """The adjacency's routing epoch on a day.

        Offsets are per (AS, adjacency), not per AS: internal routing
        changes affect different next-hops at different times, so epoch
        flips spread out instead of every path through one AS changing on
        the same day (which would make path churn systematically uneven
        across analysis windows).
        """
        offset = _stable_index((asn, prev_asn, next_asn, 7919), self._epoch_days)
        return (day_ordinal + offset) // self._epoch_days

    def _router_for(
        self, asn: int, prev_asn: int, next_asn: int, slot: int
    ) -> IPv4Address:
        """The router interface AS ``asn`` shows for this adjacency and slot."""
        index = _stable_index((asn, prev_asn, next_asn, slot), _ROUTERS_PER_AS)
        return self._topology.iplayer.router_ip(asn, index)

    def trace(
        self,
        test_id: int,
        client_ip: IPv4Address,
        server_ip: IPv4Address,
        as_path_client_to_server: Tuple[int, ...],
        day_ordinal: int,
        rng: np.random.Generator,
    ) -> TracerouteRecord:
        """Produce the server→client traceroute for one test.

        ``as_path_client_to_server`` is the AS sequence the route selector
        picked, client AS first.  The client AS contributes two router hops
        (its core and the client's last-mile gateway); every other AS
        contributes one.
        """
        if len(as_path_client_to_server) < 2:
            raise ValueError("AS path must span at least client and server ASes")
        path = tuple(reversed(as_path_client_to_server))  # server -> client

        jitter_hop = -1
        if self._jitter > 0 and rng.random() < self._jitter:
            jitter_hop = int(rng.integers(1, len(path) + 1))

        def slot_for(asn: int, prev_asn: int, next_asn: int, hop_index: int) -> int:
            slot = (
                self._epoch(asn, prev_asn, next_asn, day_ordinal)
                % self._ecmp_slots
            )
            if hop_index == jitter_hop:
                slot = (slot + 1) % self._ecmp_slots
            return slot

        hop_ips: List[IPv4Address] = [server_ip]
        hop_asns: List[int] = [path[0]]
        for i in range(1, len(path)):
            asn = path[i]
            prev_asn = path[i - 1]
            next_asn = path[i + 1] if i + 1 < len(path) else 0
            hop_ips.append(
                self._router_for(
                    asn, prev_asn, next_asn, slot_for(asn, prev_asn, next_asn, i)
                )
            )
            hop_asns.append(asn)
        # The client AS also shows the last-mile gateway before the client.
        # Gateways are metro-local: their router index comes from the client
        # city's band, so rDNS hostname analysis can geolocate them.
        client_asn = path[-1]
        gateway_slot = slot_for(client_asn, client_asn, -1, len(path))
        client_city = self._topology.iplayer.city_of_client_ip(client_ip)
        cities = self._topology.cities_of(client_asn) if client_city else []
        if client_city in cities:
            base = cities.index(client_city) * ROUTER_CITY_BAND
            offset = _stable_index(
                (client_asn, len(cities), cities.index(client_city), gateway_slot),
                ROUTER_CITY_BAND,
            )
            gateway = self._topology.iplayer.router_ip(client_asn, base + offset)
        else:
            gateway = self._router_for(client_asn, client_asn, -1, gateway_slot)
        hop_ips.append(gateway)
        hop_asns.append(client_asn)
        hop_ips.append(client_ip)
        hop_asns.append(client_asn)
        return TracerouteRecord(
            test_id=test_id,
            client_ip=client_ip,
            server_ip=server_ip,
            hop_ips=tuple(hop_ips),
            hop_asns=tuple(hop_asns),
        )
