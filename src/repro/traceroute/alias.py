"""Router alias resolution (the paper's cited future-work direction).

The paper notes its IP-level path identity is imperfect and points to
"additional work on router alias resolution" [Keys 2008] as a way to get
more precise path counts: one physical router exposes several interface
addresses, so two IP-level paths may be the same router-level path.

This module implements an offline, Ally-style resolver adapted to what a
traceroute dataset can support:

* interfaces of one AS whose addresses fall in the same small subnet
  (default /27) are candidate aliases (routers number their interfaces
  from one block);
* candidates are only merged when they are *positionally consistent* —
  they appear at the same (previous-AS, next-AS) adjacency across traces —
  mirroring how Ally validates candidates before merging.

``resolve`` returns an :class:`AliasMap`; ``router_level_path`` rewrites a
traceroute's path identity under that map, and
``repro.analysis.paths.path_count_table`` accepts the rewritten table, so
Table 2 can be recomputed at router granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.netbase.ipaddr import IPv4Address
from repro.tables.table import Table
from repro.util.errors import AnalysisError

__all__ = ["AliasMap", "resolve_aliases", "router_level_paths"]


@dataclass
class AliasMap:
    """Interface address → canonical router identifier."""

    #: interface ip value -> router id (lowest member address value)
    _canon: Dict[int, int] = field(default_factory=dict)

    def router_of(self, addr_value: int) -> int:
        """Canonical router for an interface (itself when unmerged)."""
        return self._canon.get(addr_value, addr_value)

    def n_merged_interfaces(self) -> int:
        return sum(1 for k, v in self._canon.items() if k != v)

    def n_routers(self) -> int:
        return len(set(self._canon.values()))

    def aliases_of(self, addr_value: int) -> List[int]:
        """All interfaces sharing this interface's router."""
        router = self.router_of(addr_value)
        members = [k for k, v in self._canon.items() if v == router]
        return sorted(members) if members else [addr_value]


def _iter_hop_context(traces: Table) -> Iterable[Tuple[int, int, int]]:
    """Yield (hop ip value, prev ASN, next ASN) for middle hops of each trace."""
    paths = traces.column("path").values
    as_paths = traces.column("as_path").values
    for path_text, as_text in zip(paths, as_paths):
        hops = [IPv4Address.parse(p).value for p in path_text.split("|")]
        asns = [int(a) for a in as_text.split("|")]
        # Align a coarse AS context: first AS before, last AS after.  For
        # alias purposes the flanking ASNs of the whole path suffice as a
        # consistency key when per-hop ASNs are not materialized.
        if len(hops) < 3 or len(asns) < 2:
            continue
        for hop in hops[1:-1]:
            yield hop, asns[0], asns[-1]


def resolve_aliases(
    traces: Table,
    subnet_bits: int = 27,
    min_sightings: int = 2,
) -> AliasMap:
    """Infer alias groups from a traceroute table.

    Parameters
    ----------
    subnet_bits:
        Interfaces agreeing on their first ``subnet_bits`` bits are
        candidate aliases.
    min_sightings:
        An interface must appear at least this often to participate
        (one-off sightings carry too little positional evidence).
    """
    if not 8 <= subnet_bits <= 30:
        raise AnalysisError(f"subnet_bits must be in [8, 30], got {subnet_bits}")
    if traces.n_rows == 0:
        raise AnalysisError("empty traceroute table")

    sightings: Dict[int, int] = {}
    contexts: Dict[int, set] = {}
    for hop, src_asn, dst_asn in _iter_hop_context(traces):
        sightings[hop] = sightings.get(hop, 0) + 1
        contexts.setdefault(hop, set()).add((src_asn, dst_asn))

    mask = ((1 << subnet_bits) - 1) << (32 - subnet_bits)
    by_subnet: Dict[int, List[int]] = {}
    for hop, count in sightings.items():
        if count >= min_sightings:
            by_subnet.setdefault(hop & mask, []).append(hop)

    amap = AliasMap()
    for members in by_subnet.values():
        if len(members) < 2:
            canon = members[0]
            amap._canon[canon] = canon
            continue
        # Positional consistency: merge only members sharing a context.
        members.sort()
        groups: List[List[int]] = []
        for hop in members:
            placed = False
            for group in groups:
                if contexts[hop] & contexts[group[0]]:
                    group.append(hop)
                    placed = True
                    break
            if not placed:
                groups.append([hop])
        for group in groups:
            canon = min(group)
            for hop in group:
                amap._canon[hop] = canon
    return amap


def router_level_paths(traces: Table, amap: Optional[AliasMap] = None) -> Table:
    """Rewrite each trace's ``path`` to router-level identity.

    With ``amap=None`` aliases are resolved from ``traces`` first.  Returns
    a table identical to the input except the ``path`` column holds
    canonicalized hop sequences (consecutive same-router hops collapsed).
    """
    if amap is None:
        amap = resolve_aliases(traces)
    new_paths = []
    for text in traces.column("path").values:
        hops = [IPv4Address.parse(p).value for p in text.split("|")]
        canon: List[int] = []
        for hop in hops:
            router = amap.router_of(hop)
            if not canon or canon[-1] != router:
                canon.append(router)
        new_paths.append("|".join(IPv4Address(h).dotted() for h in canon))
    return traces.with_column("path", new_paths)
