"""A MaxMind-like IP-geolocation database with a realistic error model.

The database is *built from* the topology's ground-truth block→city
assignments, then corrupted the way a commercial geo DB is: a fraction of
blocks carry no label at all (the paper's 11.7% of tests without geospatial
data) and a fraction are mislabeled to a nearby city (MaxMind's ~68%
city-level accuracy).  Errors are assigned per *block* at build time, so
lookups are pure functions of the address — exactly how a stale GeoIP
snapshot behaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.geo.gazetteer import Gazetteer
from repro.netbase.ipaddr import IPv4Address, IPv4Prefix
from repro.netbase.trie import PrefixTrie
from repro.util.errors import DataError
from repro.util.validation import check_fraction

__all__ = ["GeoDatabase", "GeoLabel"]


@dataclass(frozen=True)
class GeoLabel:
    """The location a geo DB reports for an address."""

    city: str
    oblast: str
    lat: float
    lon: float


class GeoDatabase:
    """Block-level IP→city database with built-in label errors."""

    def __init__(self, trie: PrefixTrie, n_blocks: int, n_unlabeled: int, n_mislabeled: int):
        self._trie = trie
        self.n_blocks = n_blocks
        self.n_unlabeled = n_unlabeled
        self.n_mislabeled = n_mislabeled

    @classmethod
    def build(
        cls,
        blocks: Iterable[Tuple[IPv4Prefix, str]],
        gazetteer: Gazetteer,
        rng: np.random.Generator,
        missing_rate: float = 0.117,
        mislabel_rate: float = 0.05,
    ) -> "GeoDatabase":
        """Build a database from ground-truth ``(prefix, city)`` blocks.

        Parameters
        ----------
        missing_rate:
            Fraction of blocks left unlabeled; defaults to the paper's
            observed 11.7% of tests without geospatial data.
        mislabel_rate:
            Fraction of blocks labeled with the nearest *other* city.
        """
        check_fraction("missing_rate", missing_rate)
        check_fraction("mislabel_rate", mislabel_rate)
        if missing_rate + mislabel_rate > 1.0:
            raise ValueError("missing_rate + mislabel_rate must not exceed 1")
        block_list: List[Tuple[IPv4Prefix, str]] = list(blocks)
        if not block_list:
            raise DataError("GeoDatabase.build needs at least one block")
        trie: PrefixTrie = PrefixTrie()
        n_unlabeled = 0
        n_mislabeled = 0
        rolls = rng.random(len(block_list))
        for (prefix, city_name), roll in zip(block_list, rolls):
            if roll < missing_rate:
                n_unlabeled += 1
                continue  # block absent from the DB
            if roll < missing_rate + mislabel_rate:
                city = gazetteer.nearest_city(city_name)
                n_mislabeled += 1
            else:
                city = gazetteer.city(city_name)
            label = GeoLabel(city.name, city.oblast, city.lat, city.lon)
            trie.insert(prefix, label)
        return cls(trie, len(block_list), n_unlabeled, n_mislabeled)

    def lookup(self, addr: IPv4Address) -> Optional[GeoLabel]:
        """The label for ``addr``, or None when the block is unlabeled."""
        return self._trie.lookup(addr)

    @property
    def coverage(self) -> float:
        """Fraction of blocks that carry a label."""
        return 1.0 - self.n_unlabeled / self.n_blocks

    def __repr__(self) -> str:
        return (
            f"GeoDatabase(blocks={self.n_blocks}, unlabeled={self.n_unlabeled}, "
            f"mislabeled={self.n_mislabeled})"
        )
